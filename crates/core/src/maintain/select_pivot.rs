//! Combined update propagation rules for **SELECT over GPIVOT** (Fig. 29).
//!
//! For a view `σc(GPivot(core))` with σc null-intolerant over pivoted
//! columns, pulling the pivot above the selection would cost multiple
//! self-joins (Eq. 7). The combined rules instead keep the pair on top:
//!
//! * **Keys present in the view**: apply the Fig. 23 cell changes in place,
//!   then re-test σc — delete the row if it no longer satisfies (or became
//!   all-⊥), else update. Keys absent from the view that only receive
//!   deletes stay absent (null-intolerance: nulling more cells cannot make
//!   a failing row pass).
//! * **Insert candidates**: a key not in the view may newly satisfy σc only
//!   if some *inserted* row touches a σc-referenced cell (the σc′ prefilter
//!   of Fig. 29). Those keys' pivot rows are recomputed from the post-state
//!   core *restricted to exactly those keys* — the restriction is pushed
//!   down to the deepest subplan carrying the key columns, mirroring the
//!   paper's `GPIVOT(π_K(σc′(ΔV)) ⋈ (V ⊎ ΔV))` plan.

use crate::error::{CoreError, Result};
use crate::maintain::apply::{collect_cell_changes, ApplyStats};
use crate::maintain::delta_prop::PropagationCtx;
use gpivot_algebra::plan::{JoinKind, Plan};
use gpivot_algebra::{decode_pivot_col, Expr, PivotSpec};
use gpivot_exec::pivot::PivotLayout;
#[cfg(test)]
use gpivot_exec::Executor;
use gpivot_exec::Overlay;
use gpivot_storage::{Delta, Row, Table, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Apply the Fig. 29 combined rules.
///
/// * `mv` — the materialized `σc(GPivot(core))` (keyed by the pivot's K);
/// * `spec` / `predicate` — the top pair's parameters;
/// * `core` — the pivot input plan;
/// * `ctx` — pre-state catalog + source deltas (for the restricted
///   post-state recompute);
/// * `delta_core` — the already-propagated delta over `core`.
pub fn apply_select_pivot_update(
    mv: &mut Table,
    spec: &PivotSpec,
    predicate: &Expr,
    core: &Plan,
    ctx: &PropagationCtx<'_>,
    delta_core: &Delta,
) -> Result<ApplyStats> {
    if !predicate.is_null_intolerant() {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "select-pivot-update (Fig. 29)".into(),
            reason: format!("predicate `{predicate}` is not null-intolerant"),
        });
    }
    let core_schema = core.schema(ctx.catalog)?;
    let layout = PivotLayout::resolve(spec, &core_schema)?;
    let n_k = layout.k_idx.len();
    let n_on = layout.on_idx.len();
    let _width = n_k + spec.groups.len() * n_on;
    let bound_pred = predicate.bind(mv.schema())?;

    let changes = collect_cell_changes(delta_core, &layout);
    let mut stats = ApplyStats::default();

    // σc′ prefilter: which pivot groups does the predicate reference?
    let referenced_groups = predicate_groups(predicate, spec);

    let mut recompute_keys: Vec<Row> = Vec::new();
    for (key, mut cell_changes) in changes {
        match mv.get_by_key(&key).cloned() {
            Some(existing) => {
                // In-view key: in-place MERGE then σc re-test.
                cell_changes.sort_by_key(|(_, w, _)| *w);
                let mut cells = existing.to_vec();
                for (gi, w, measures) in &cell_changes {
                    let base = n_k + gi * n_on;
                    if *w < 0 {
                        for j in 0..n_on {
                            cells[base + j] = Value::Null;
                        }
                    } else {
                        for (j, m) in measures.iter().enumerate() {
                            cells[base + j] = m.clone();
                        }
                    }
                }
                let new_row = Row::new(cells);
                let all_null = new_row.values()[n_k..].iter().all(Value::is_null);
                if all_null || !bound_pred.holds(&new_row) {
                    mv.delete_by_key(&key);
                    stats.deleted += 1;
                } else {
                    mv.update_by_key(&key, new_row);
                    stats.updated += 1;
                }
            }
            None => {
                // Absent key: only inserts into σc-referenced cells can make
                // it newly satisfy the predicate.
                let relevant = cell_changes
                    .iter()
                    .any(|(gi, w, _)| *w > 0 && referenced_groups.contains(gi));
                if relevant {
                    recompute_keys.push(key);
                }
            }
        }
    }

    if !recompute_keys.is_empty() {
        // Recompute the candidate keys' full pivot rows from the post-state
        // core, restricted to those keys. Restricting by the *full* pivot K
        // (which, after pullup, spans every joined column) would force the
        // semijoin above all joins — a recomputation in disguise. Instead
        // restrict by the core's minimal key columns within K (they
        // functionally determine the rest, mirroring the paper's
        // `π_orderkey(σc′(ΔL)) ⋈ (L ⊎ ΔL)` plan) and post-filter the pivoted
        // rows back to the exact candidate set.
        let k_names: Vec<String> = layout
            .k_idx
            .iter()
            .map(|&i| core_schema.fields()[i].name.clone())
            .collect();
        // The core-key columns that survive into K: restricting by them is
        // a (possibly proper) superset restriction — always sound with the
        // post-filter below, and it pushes to the delta'd fact table.
        let (restrict_names, restrict_pos): (Vec<String>, Vec<usize>) = {
            let key_in_k: Vec<(String, usize)> = core_schema
                .key()
                .map(|key| {
                    key.iter()
                        .filter_map(|&i| {
                            let name = core_schema.fields()[i].name.as_str();
                            k_names
                                .iter()
                                .position(|k| k == name)
                                .map(|pos| (name.to_string(), pos))
                        })
                        .collect()
                })
                .unwrap_or_default();
            if key_in_k.is_empty() {
                (k_names.clone(), (0..k_names.len()).collect())
            } else {
                key_in_k.into_iter().unzip()
            }
        };
        let candidate_set: HashSet<Row> = recompute_keys.iter().cloned().collect();
        let mut restrict_keys: Vec<Row> = recompute_keys
            .iter()
            .map(|k| k.project(&restrict_pos))
            .collect();
        restrict_keys.sort();
        restrict_keys.dedup();

        let restricted = eval_post_restricted(core, &restrict_names, restrict_keys, ctx)?;
        let out_schema = Plan::GPivot {
            input: Box::new(core.clone()),
            spec: spec.clone(),
        }
        .schema(ctx.catalog)?;
        let pivoted = gpivot_exec::pivot::gpivot(&restricted, spec, out_schema)?;
        let k_out: Vec<usize> = (0..k_names.len()).collect();
        for row in pivoted.iter() {
            // Post-filter: only the exact candidate keys may be inserted
            // (the minimal-key restriction can bring along other rows).
            if !candidate_set.contains(&row.project(&k_out)) {
                continue;
            }
            if bound_pred.holds(row) {
                mv.insert(row.clone())?;
                stats.inserted += 1;
            }
        }
    }
    Ok(stats)
}

/// The set of pivot group indices whose cells the predicate references.
fn predicate_groups(predicate: &Expr, spec: &PivotSpec) -> HashSet<usize> {
    let mut out = HashSet::new();
    for col in predicate.columns() {
        if let Some((tags, measure)) = decode_pivot_col(&col, spec.dims()) {
            // Re-encode each group to compare against the column name.
            for (gi, g) in spec.groups.iter().enumerate() {
                let tag_strings: Vec<String> = g.iter().map(|v| v.to_string()).collect();
                if tag_strings == tags && spec.on.contains(&measure) {
                    out.insert(gi);
                }
            }
        }
    }
    out
}

/// Evaluate `core` against the post-update state, restricted to the given
/// key tuples. The restriction is realized as a hash semijoin against a
/// temporary key table, pushed down to the deepest subplan that carries all
/// key columns (typically the scan of the delta'd fact table).
pub fn eval_post_restricted(
    core: &Plan,
    k_names: &[String],
    keys: Vec<Row>,
    ctx: &PropagationCtx<'_>,
) -> Result<Table> {
    const KEYS_TABLE: &str = "__fig29_keys";
    // Key table schema: renamed key columns (avoids name clashes).
    let core_schema = core.schema(ctx.catalog)?;
    let mut fields = Vec::with_capacity(k_names.len());
    for k in k_names {
        let f = core_schema.field(k)?;
        fields.push(gpivot_storage::Field::new(
            format!("__key_{k}"),
            f.data_type,
        ));
    }
    let key_schema = Arc::new(gpivot_storage::Schema::new(fields)?);
    let key_table = Table::bag(key_schema, keys);

    // Push the semijoin to the deepest subplan containing all key columns.
    let restricted_plan = push_key_semijoin(core, k_names, ctx)?;

    // Post-state overlay + the key table.
    let mut overlay = Overlay::new(ctx.catalog);
    for table in core.base_tables() {
        if let Some(delta) = ctx.deltas.delta(&table) {
            if !delta.is_empty() {
                let pre = ctx.catalog.table(&table)?;
                overlay.put(
                    table.clone(),
                    crate::maintain::delta_prop::post_state_table(pre, delta),
                );
            }
        }
    }
    overlay.put(KEYS_TABLE, key_table);
    Ok(ctx.executor().run(&restricted_plan, &overlay)?)
}

/// Rewrite `plan` so the deepest subplan carrying all of `k_names` is
/// semijoined with the `__fig29_keys` table.
fn push_key_semijoin(plan: &Plan, k_names: &[String], ctx: &PropagationCtx<'_>) -> Result<Plan> {
    const KEYS_TABLE: &str = "__fig29_keys";

    // Can the restriction descend into a child?
    let descend_into: Option<usize> = match plan {
        Plan::Select { .. }
        | Plan::GroupBy { .. }
        | Plan::GPivot { .. }
        | Plan::GUnpivot { .. } => {
            let child = plan.children()[0];
            let cs = child.schema(ctx.catalog)?;
            if k_names.iter().all(|k| cs.index_of(k).is_ok()) {
                Some(0)
            } else {
                None
            }
        }
        Plan::Project { input, items } => {
            // Descend only if every key column is a pure pass-through.
            let ok = k_names.iter().all(|k| {
                items
                    .iter()
                    .any(|(e, n)| n == k && matches!(e, Expr::Col(c) if c == n))
            });
            if ok {
                let cs = input.schema(ctx.catalog)?;
                if k_names.iter().all(|k| cs.index_of(k).is_ok()) {
                    Some(0)
                } else {
                    None
                }
            } else {
                None
            }
        }
        Plan::Join { left, right, .. } => {
            let ls = left.schema(ctx.catalog)?;
            if k_names.iter().all(|k| ls.index_of(k).is_ok()) {
                Some(0)
            } else {
                let rs = right.schema(ctx.catalog)?;
                if k_names.iter().all(|k| rs.index_of(k).is_ok()) {
                    Some(1)
                } else {
                    None
                }
            }
        }
        _ => None,
    };

    if let Some(idx) = descend_into {
        // Rebuild with the chosen child restricted.
        let mut rebuilt = plan.clone();
        let restricted_child = push_key_semijoin(plan.children()[idx], k_names, ctx)?;
        match &mut rebuilt {
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupBy { input, .. }
            | Plan::GPivot { input, .. }
            | Plan::GUnpivot { input, .. } => **input = restricted_child,
            Plan::Join { left, right, .. } => {
                if idx == 0 {
                    **left = restricted_child;
                } else {
                    **right = restricted_child;
                }
            }
            _ => unreachable!(),
        }
        return Ok(rebuilt);
    }

    // Wrap here: plan ⋉ keys.
    let schema = plan.schema(ctx.catalog)?;
    let on: Vec<(String, String)> = k_names
        .iter()
        .map(|k| (k.clone(), format!("__key_{k}")))
        .collect();
    let joined = Plan::Join {
        left: Box::new(plan.clone()),
        right: Box::new(Plan::scan(KEYS_TABLE)),
        kind: JoinKind::Inner,
        on,
        residual: None,
    };
    Ok(joined.project(
        schema
            .column_names()
            .iter()
            .map(|c| (Expr::col(*c), c.to_string()))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::SourceDeltas;
    use gpivot_storage::{row, Catalog, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let items = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "items",
            Table::from_rows(
                items,
                vec![
                    row![1, "a", 100],
                    row![1, "b", 20],
                    row![2, "a", 5],
                    row![3, "b", 40],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn spec() -> PivotSpec {
        PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")])
    }

    /// σc: a**val > 50.
    fn pred() -> Expr {
        Expr::col("a**val").gt(Expr::lit(50))
    }

    /// Materialize σc(GPivot(items)) from scratch.
    fn materialize(c: &Catalog) -> Table {
        let plan = Plan::scan("items").gpivot(spec()).select(pred());
        let bag = Executor::new().run(&plan, c).unwrap();
        let mut t = Table::new(bag.schema().clone());
        for r in bag.iter() {
            t.insert(r.clone()).unwrap();
        }
        t
    }

    fn run(deltas: SourceDeltas) {
        // Oracle: incremental result == recompute on post state.
        let c = catalog();
        let mut mv = materialize(&c);
        let ctx = PropagationCtx::new(&c, &deltas);
        let core = Plan::scan("items");
        let delta_core = crate::maintain::delta_prop::propagate(&core, &ctx).unwrap();
        apply_select_pivot_update(&mut mv, &spec(), &pred(), &core, &ctx, &delta_core).unwrap();

        let mut post_catalog = c.clone();
        for t in deltas.tables() {
            let d = deltas.delta(t).unwrap().clone();
            post_catalog.apply_delta(t, &d).unwrap();
        }
        let expected = materialize(&post_catalog);
        assert!(
            mv.bag_eq(&expected),
            "incremental:\n{mv}\nexpected:\n{expected}"
        );
    }

    #[test]
    fn delete_makes_row_fail_condition() {
        let mut d = SourceDeltas::new();
        d.delete_rows("items", vec![row![1, "a", 100]]);
        run(d);
    }

    #[test]
    fn insert_makes_row_newly_satisfy() {
        let mut d = SourceDeltas::new();
        // id=3 had no 'a' cell; this insert makes a**val = 99 > 50.
        d.insert_rows("items", vec![row![3, "a", 99]]);
        run(d);
    }

    #[test]
    fn irrelevant_insert_does_not_create_row() {
        let mut d = SourceDeltas::new();
        // id=2 fails σc (a**val = 5); inserting a 'b' cell cannot fix that.
        d.insert_rows("items", vec![row![2, "b", 1]]);
        run(d);
    }

    #[test]
    fn update_in_place_keeps_satisfying_row() {
        let mut d = SourceDeltas::new();
        d.delete_rows("items", vec![row![1, "b", 20]]);
        d.insert_rows("items", vec![row![1, "b", 21]]);
        run(d);
    }

    #[test]
    fn brand_new_key_satisfying_condition() {
        let mut d = SourceDeltas::new();
        d.insert_rows("items", vec![row![9, "a", 500]]);
        run(d);
    }

    #[test]
    fn brand_new_key_failing_condition() {
        let mut d = SourceDeltas::new();
        d.insert_rows("items", vec![row![9, "a", 1]]);
        run(d);
    }

    #[test]
    fn mixed_batch() {
        let mut d = SourceDeltas::new();
        // Replace id=2's failing 'a' cell (5 → 400: newly satisfies σc),
        // drop id=1's satisfying cell, give id=3 a satisfying cell, and add
        // an irrelevant new key.
        d.delete_rows(
            "items",
            vec![row![1, "a", 100], row![3, "b", 40], row![2, "a", 5]],
        );
        d.insert_rows(
            "items",
            vec![row![2, "a", 400], row![3, "a", 60], row![5, "b", 2]],
        );
        run(d);
    }
}
