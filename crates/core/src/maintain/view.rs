//! Materialized views and the [`ViewManager`] — the integration point of
//! the whole paper: compile (normalize + choose strategy + materialize),
//! refresh (propagate + apply), commit, verify.

use crate::error::{CoreError, Result};
use crate::maintain::apply::apply_pivot_update;
use crate::maintain::delta_prop::{post_state_table, propagate, PropagationCtx};
use crate::maintain::group_pivot::{apply_group_pivot_update, GroupPivotInfo};
use crate::maintain::select_pivot::apply_select_pivot_update;
use crate::maintain::strategy::{MaintenanceOutcome, MaintenancePlan, Strategy};
use crate::maintain::SourceDeltas;
use crate::rewrite::{
    normalize_view, normalize_view_with_select_pushdown, NormalizedView, TopShape,
};
use gpivot_algebra::plan::{JoinKind, Plan};
use gpivot_algebra::{AggFunc, AggSpec, Expr, PivotSpec};
use gpivot_analyze::Diagnostic;
use gpivot_exec::{Executor, Overlay};
use gpivot_storage::{Catalog, Table};
use std::collections::{BTreeMap, BTreeSet};

/// A materialized view: definition, compiled maintenance form, and data.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    name: String,
    definition: Plan,
    strategy: Strategy,
    normalized: NormalizedView,
    group_info: Option<GroupPivotInfo>,
    table: Table,
    /// Warning/info diagnostics the plan lint recorded at registration
    /// (empty when created directly or registered with lint skipped).
    lint_warnings: Vec<Diagnostic>,
}

/// Options for registering a view with [`ViewManager::register_view_with`].
///
/// The default options auto-select the maintenance strategy from the view's
/// normalized shape (the paper's planner). Setting
/// [`ViewOptions::strategy`] forces a strategy; setting
/// [`ViewOptions::expected_delta_rows`] instead asks the cost model
/// ([`crate::cost`]) to pick the cheapest strategy at that per-refresh
/// delta size. A bare [`Strategy`] converts into options, so
/// `register_view_with(name, plan, Strategy::PivotUpdate)` reads naturally.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViewOptions {
    /// Force this maintenance strategy (skips both planners).
    pub strategy: Option<Strategy>,
    /// Ask the cost model to choose, sized for this many delta rows per
    /// refresh. Ignored when [`ViewOptions::strategy`] is set.
    pub expected_delta_rows: Option<f64>,
    /// Skip the static plan lint (`gpivot-analyze`). By default
    /// registration refuses plans with `Error`-severity diagnostics
    /// ([`CoreError::PlanLint`]) and records warnings on the view
    /// ([`MaterializedView::lint_warnings`]).
    pub skip_lint: bool,
}

impl ViewOptions {
    /// Options that auto-select the strategy (same as `Default`).
    pub fn new() -> Self {
        ViewOptions::default()
    }

    /// Force `strategy`.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Choose the strategy with the cost model at this expected delta size.
    pub fn expected_delta_rows(mut self, rows: f64) -> Self {
        self.expected_delta_rows = Some(rows);
        self
    }

    /// Register without running the static plan lint. The view is
    /// installed even if the analyzer would refuse it, and no lint
    /// warnings are recorded.
    pub fn skip_plan_lint(mut self) -> Self {
        self.skip_lint = true;
        self
    }
}

impl From<Strategy> for ViewOptions {
    fn from(strategy: Strategy) -> Self {
        ViewOptions::new().strategy(strategy)
    }
}

/// Does the tree contain a non-inner join (not delta-propagatable)?
fn has_outer_join(plan: &Plan) -> bool {
    if let Plan::Join { kind, .. } = plan {
        if *kind != JoinKind::Inner {
            return true;
        }
    }
    plan.children().iter().any(|c| has_outer_join(c))
}

/// Execute and key-index a plan's result. The key index is built in place
/// over the executor's row storage ([`Table::into_keyed`]) — no row copy.
fn materialize(plan: &Plan, catalog: &Catalog, exec: &Executor) -> Result<Table> {
    let bag = exec.run(plan, catalog)?;
    if bag.schema().has_key() {
        let schema = bag.schema().clone();
        Ok(bag.into_keyed(schema)?)
    } else {
        Ok(bag)
    }
}

/// Add the hidden measures Fig. 27 needs: a `count(*)` per subgroup and a
/// `count(col)` companion per `sum(col)` (cf. Fig. 28, where the paper adds
/// COUNT(*) to make the view self-maintainable). Returns the augmented plan.
fn augment_group_pivot(plan: &Plan) -> Result<Plan> {
    let Plan::GPivot { input, spec } = plan else {
        return Err(CoreError::StrategyNotApplicable {
            strategy: Strategy::GroupPivotUpdate.id().into(),
            reason: "top operator is not a GPivot".into(),
        });
    };
    let Plan::GroupBy {
        input: core,
        group_by,
        aggs,
    } = input.as_ref()
    else {
        return Err(CoreError::StrategyNotApplicable {
            strategy: Strategy::GroupPivotUpdate.id().into(),
            reason: "no GroupBy directly under the top GPivot".into(),
        });
    };

    let mut new_aggs = aggs.clone();
    let mut new_on = spec.on.clone();
    let pivoted_aggs: Vec<&AggSpec> = aggs
        .iter()
        .filter(|a| spec.on.contains(&a.output))
        .collect();
    for a in &pivoted_aggs {
        if matches!(a.func, AggFunc::Min | AggFunc::Max | AggFunc::Avg) {
            return Err(CoreError::StrategyNotApplicable {
                strategy: Strategy::GroupPivotUpdate.id().into(),
                reason: format!(
                    "aggregate {} is not maintainable by the Fig. 27 rules",
                    a.func
                ),
            });
        }
    }
    // count(*): required for subgroup liveness.
    if !pivoted_aggs.iter().any(|a| a.func == AggFunc::CountStar) {
        new_aggs.push(AggSpec::count_star("__cs"));
        new_on.push("__cs".to_string());
    }
    // count(col) companion per sum(col).
    for a in &pivoted_aggs {
        if a.func == AggFunc::Sum {
            let has_partner = new_aggs.iter().any(|b| {
                b.func == AggFunc::Count && b.input == a.input && new_on.contains(&b.output)
            });
            if !has_partner {
                let name = format!("__c_{}", a.input);
                if !new_aggs.iter().any(|b| b.output == name) {
                    new_aggs.push(AggSpec::count(&a.input, &name));
                }
                if !new_on.contains(&name) {
                    new_on.push(name);
                }
            }
        }
    }
    Ok(Plan::GPivot {
        input: Box::new(Plan::GroupBy {
            input: core.clone(),
            group_by: group_by.clone(),
            aggs: new_aggs,
        }),
        spec: PivotSpec {
            by: spec.by.clone(),
            on: new_on,
            groups: spec.groups.clone(),
        },
    })
}

impl MaterializedView {
    /// Compile and materialize a view with an explicit strategy, on a
    /// default (single-thread) executor. See
    /// [`MaterializedView::create_with`] to control execution.
    pub fn create(
        name: impl Into<String>,
        definition: Plan,
        strategy: Strategy,
        catalog: &Catalog,
    ) -> Result<Self> {
        Self::create_with(name, definition, strategy, catalog, &Executor::new())
    }

    /// Compile and materialize a view with an explicit strategy, running
    /// the initial materialization on `exec`.
    pub fn create_with(
        name: impl Into<String>,
        definition: Plan,
        strategy: Strategy,
        catalog: &Catalog,
        exec: &Executor,
    ) -> Result<Self> {
        let name = name.into();
        let _compile = tracing::span("compile.view").enter();
        let (normalized, group_info) = {
            let _s = tracing::span("compile.normalize").enter();
            Self::compile(&definition, strategy, catalog)?
        };
        let table = {
            let _s = tracing::span("compile.materialize").enter();
            materialize(&normalized.plan, catalog, exec)?
        };
        Ok(MaterializedView {
            name,
            definition,
            strategy,
            normalized,
            group_info,
            table,
            lint_warnings: Vec::new(),
        })
    }

    /// Rebuild a view from a persisted snapshot *without* recomputing it.
    ///
    /// Compiles the definition exactly like [`MaterializedView::create_with`]
    /// but installs `snapshot` as the materialized table when its schema
    /// matches the compiled plan's output schema (re-keying it in place if
    /// the schema declares a key). On any mismatch — e.g. the snapshot was
    /// written by an older build whose normalization differs — it falls back
    /// to a full materialization. Returns the view plus `true` iff the
    /// snapshot was used as-is.
    pub fn from_snapshot(
        name: impl Into<String>,
        definition: Plan,
        strategy: Strategy,
        snapshot: Table,
        catalog: &Catalog,
        exec: &Executor,
    ) -> Result<(Self, bool)> {
        let name = name.into();
        let _compile = tracing::span("compile.view").enter();
        let (normalized, group_info) = Self::compile(&definition, strategy, catalog)?;
        let expected = normalized.plan.schema(catalog)?;
        let (table, used_snapshot) = if **snapshot.schema() == *expected {
            let table = if expected.has_key() {
                snapshot.into_keyed(expected)?
            } else {
                snapshot
            };
            (table, true)
        } else {
            (materialize(&normalized.plan, catalog, exec)?, false)
        };
        Ok((
            MaterializedView {
                name,
                definition,
                strategy,
                normalized,
                group_info,
                table,
                lint_warnings: Vec::new(),
            },
            used_snapshot,
        ))
    }

    /// The normalize + shape-check half of [`MaterializedView::create`]:
    /// produce the maintenance form for `strategy`, or explain why the
    /// strategy does not apply.
    fn compile(
        definition: &Plan,
        strategy: Strategy,
        catalog: &Catalog,
    ) -> Result<(NormalizedView, Option<GroupPivotInfo>)> {
        let out = match strategy {
            Strategy::Recompute | Strategy::InsertDelete => {
                // Maintain the original tree directly.
                let schema = definition.schema(catalog)?;
                let output = schema
                    .column_names()
                    .iter()
                    .map(|c| (c.to_string(), c.to_string()))
                    .collect();
                (
                    NormalizedView {
                        plan: definition.clone(),
                        output,
                        identity_output: true,
                        log: vec![],
                        shape: if definition.pivot_count() > 0 {
                            TopShape::StuckPivot
                        } else {
                            TopShape::Relational
                        },
                    },
                    None,
                )
            }
            Strategy::PivotUpdate => {
                let nv = normalize_view(definition, catalog)?;
                match nv.shape {
                    TopShape::PivotTop { .. } => (nv, None),
                    ref s => {
                        return Err(CoreError::StrategyNotApplicable {
                            strategy: strategy.id().into(),
                            reason: format!("normalized shape is {s:?}, not PivotTop"),
                        })
                    }
                }
            }
            Strategy::SelectPushdownUpdate => {
                let nv = normalize_view_with_select_pushdown(definition, catalog)?;
                match nv.shape {
                    TopShape::PivotTop { .. } => (nv, None),
                    ref s => {
                        return Err(CoreError::StrategyNotApplicable {
                            strategy: strategy.id().into(),
                            reason: format!("shape after select pushdown is {s:?}"),
                        })
                    }
                }
            }
            Strategy::SelectPivotUpdate => {
                let nv = normalize_view(definition, catalog)?;
                match &nv.shape {
                    TopShape::SelectOverPivot { predicate, .. } => {
                        if !predicate.is_null_intolerant() {
                            return Err(CoreError::StrategyNotApplicable {
                                strategy: strategy.id().into(),
                                reason: format!("predicate `{predicate}` is not null-intolerant"),
                            });
                        }
                        (nv, None)
                    }
                    s => {
                        return Err(CoreError::StrategyNotApplicable {
                            strategy: strategy.id().into(),
                            reason: format!("normalized shape is {s:?}, not SelectOverPivot"),
                        })
                    }
                }
            }
            Strategy::GroupPivotUpdate => {
                let mut nv = normalize_view(definition, catalog)?;
                if !matches!(nv.shape, TopShape::PivotOverGroupBy { .. }) {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: strategy.id().into(),
                        reason: format!("normalized shape is {:?}", nv.shape),
                    });
                }
                let augmented = augment_group_pivot(&nv.plan)?;
                let (spec, group_by, aggs) = match &augmented {
                    Plan::GPivot { input, spec } => match input.as_ref() {
                        Plan::GroupBy { group_by, aggs, .. } => {
                            (spec.clone(), group_by.clone(), aggs.clone())
                        }
                        _ => unreachable!("augment preserves shape"),
                    },
                    _ => unreachable!("augment preserves shape"),
                };
                let info = GroupPivotInfo::derive(&group_by, &aggs, &spec)?;
                nv.plan = augmented;
                nv.shape = TopShape::PivotOverGroupBy {
                    spec,
                    group_by,
                    aggs,
                };
                (nv, Some(info))
            }
            Strategy::GroupByInsDel => {
                let nv = normalize_view(definition, catalog)?;
                if !matches!(nv.shape, TopShape::PivotOverGroupBy { .. }) {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: strategy.id().into(),
                        reason: format!("normalized shape is {:?}", nv.shape),
                    });
                }
                (nv, None)
            }
        };
        Ok(out)
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The chosen maintenance strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The original view definition.
    pub fn definition(&self) -> &Plan {
        &self.definition
    }

    /// Non-fatal diagnostics (warnings and infos) the static plan lint
    /// recorded when this view was registered through a [`ViewManager`].
    /// Empty for views created directly or registered with
    /// [`ViewOptions::skip_plan_lint`].
    pub fn lint_warnings(&self) -> &[Diagnostic] {
        &self.lint_warnings
    }

    /// The normalized form used for maintenance.
    pub fn normalized(&self) -> &NormalizedView {
        &self.normalized
    }

    /// The materialized table (normalized schema; may contain hidden
    /// maintenance columns — use [`MaterializedView::query`] for the
    /// user-facing shape).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff no rows are materialized.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The user-facing view contents: the materialized table projected
    /// through the output rename map.
    pub fn query(&self) -> Result<Table> {
        if self.normalized.identity_output
            && self.normalized.output.len() == self.table.schema().arity()
        {
            return Ok(self.table.clone());
        }
        let schema = self.table.schema();
        let idx: Vec<usize> = self
            .normalized
            .output
            .iter()
            .map(|(from, _)| schema.index_of(from))
            .collect::<gpivot_storage::Result<_>>()?;
        let fields: Vec<gpivot_storage::Field> = self
            .normalized
            .output
            .iter()
            .zip(&idx)
            .map(|((_, to), &i)| {
                gpivot_storage::Field::new(to.clone(), schema.field_at(i).data_type)
            })
            .collect();
        let out_schema = std::sync::Arc::new(gpivot_storage::Schema::new(fields)?);
        let rows = self.table.iter().map(|r| r.project(&idx)).collect();
        Ok(Table::bag(out_schema, rows))
    }

    /// The compiled maintenance plan (explainability).
    pub fn maintenance_plan(&self) -> MaintenancePlan {
        MaintenancePlan {
            strategy: self.strategy,
            rewrite_log: self.normalized.log.clone(),
            normalized_explain: self.normalized.plan.explain(),
        }
    }

    /// Refresh the view against pending source deltas (the catalog still
    /// holds the pre-update state), on a default (single-thread) executor.
    /// See [`MaterializedView::maintain_with`] to control execution.
    pub fn maintain(
        &mut self,
        catalog: &Catalog,
        deltas: &SourceDeltas,
    ) -> Result<MaintenanceOutcome> {
        self.maintain_with(catalog, deltas, &Executor::new())
    }

    /// Refresh the view against pending source deltas, running every
    /// propagate/recompute subplan on `exec`.
    pub fn maintain_with(
        &mut self,
        catalog: &Catalog,
        deltas: &SourceDeltas,
        exec: &Executor,
    ) -> Result<MaintenanceOutcome> {
        use gpivot_storage::FaultSite;
        // Chaos-testing hooks: the Propagate site fires before any delta
        // work, the Apply site after propagation but before the view table
        // is touched. Context = the view name, so schedules can target one
        // view. Both are free no-ops with the default (disabled) injector.
        catalog
            .fault_injector()
            .check(FaultSite::Propagate, &self.name)?;
        let check_apply = |catalog: &Catalog| -> gpivot_storage::Result<()> {
            catalog.fault_injector().check(FaultSite::Apply, &self.name)
        };
        let ctx = PropagationCtx::with_exec(catalog, deltas, exec.clone());
        let mut outcome = MaintenanceOutcome::default();
        match self.strategy {
            Strategy::Recompute => {
                let mut overlay = Overlay::new(catalog);
                for t in self.normalized.plan.base_tables() {
                    if let Some(d) = deltas.delta(&t) {
                        if !d.is_empty() {
                            let pre = catalog.table(&t)?;
                            overlay.put(t.clone(), post_state_table(pre, d));
                        }
                    }
                }
                let (bag, trace) = {
                    let _s = tracing::span("maintain.propagate").enter();
                    exec.run_traced(&self.normalized.plan, &overlay)?
                };
                outcome.rows_propagated = trace.total_rows();
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                self.table = if bag.schema().has_key() {
                    let schema = bag.schema().clone();
                    bag.into_keyed(schema)?
                } else {
                    bag
                };
                outcome.stats.inserted = self.table.len();
            }
            Strategy::InsertDelete => {
                let d = {
                    let _s = tracing::span("maintain.propagate").enter();
                    propagate(&self.normalized.plan, &ctx)?
                };
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                outcome.delta_rows = d.distinct_len();
                for (_, &w) in d.iter() {
                    if w > 0 {
                        outcome.stats.inserted += w as usize;
                    } else {
                        outcome.stats.deleted += (-w) as usize;
                    }
                }
                self.table.apply_delta(&d)?;
            }
            Strategy::PivotUpdate | Strategy::SelectPushdownUpdate => {
                let Plan::GPivot { input: core, spec } = &self.normalized.plan else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its top pivot".into(),
                    });
                };
                let dcore = {
                    let _s = tracing::span("maintain.propagate").enter();
                    propagate(core, &ctx)?
                };
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                outcome.delta_rows = dcore.distinct_len();
                let core_schema = core.schema(catalog)?;
                outcome.stats = apply_pivot_update(&mut self.table, spec, &core_schema, &dcore)?;
            }
            Strategy::SelectPivotUpdate => {
                let Plan::Select { input, predicate } = &self.normalized.plan else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its top select".into(),
                    });
                };
                let Plan::GPivot { input: core, spec } = input.as_ref() else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its pivot".into(),
                    });
                };
                let dcore = {
                    let _s = tracing::span("maintain.propagate").enter();
                    propagate(core, &ctx)?
                };
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                outcome.delta_rows = dcore.distinct_len();
                outcome.stats = apply_select_pivot_update(
                    &mut self.table,
                    spec,
                    predicate,
                    core,
                    &ctx,
                    &dcore,
                )?;
            }
            Strategy::GroupPivotUpdate => {
                let Plan::GPivot { input, spec } = &self.normalized.plan else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its top pivot".into(),
                    });
                };
                let Plan::GroupBy { input: core, .. } = input.as_ref() else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its group-by".into(),
                    });
                };
                let dcore = {
                    let _s = tracing::span("maintain.propagate").enter();
                    propagate(core, &ctx)?
                };
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                outcome.delta_rows = dcore.distinct_len();
                let core_schema = core.schema(catalog)?;
                let info =
                    self.group_info
                        .as_ref()
                        .ok_or_else(|| CoreError::StrategyNotApplicable {
                            strategy: self.strategy.id().into(),
                            reason: "group-pivot info missing (not set at creation)".into(),
                        })?;
                outcome.stats =
                    apply_group_pivot_update(&mut self.table, spec, info, &core_schema, &dcore)?;
            }
            Strategy::GroupByInsDel => {
                let Plan::GPivot { input: gb, spec } = &self.normalized.plan else {
                    return Err(CoreError::StrategyNotApplicable {
                        strategy: self.strategy.id().into(),
                        reason: "normalized plan lost its top pivot".into(),
                    });
                };
                // Insert/delete propagation through the GROUPBY (affected
                // group recomputation), then Fig. 23 MERGE at the pivot.
                let dgb = {
                    let _s = tracing::span("maintain.propagate").enter();
                    propagate(gb, &ctx)?
                };
                check_apply(catalog)?;
                let _a = tracing::span("maintain.apply").enter();
                outcome.delta_rows = dgb.distinct_len();
                let gb_schema = gb.schema(catalog)?;
                outcome.stats = apply_pivot_update(&mut self.table, spec, &gb_schema, &dgb)?;
            }
        }
        outcome.rows_propagated += ctx.rows_evaluated();
        Ok(outcome)
    }

    /// The base tables this view reads — the service layer's dependency
    /// edges for dirty-table scheduling.
    pub fn dependencies(&self) -> BTreeSet<String> {
        let mut deps = self.normalized.plan.base_tables();
        deps.extend(self.definition.base_tables());
        deps
    }
}

/// Owns a catalog plus a set of materialized views, and runs the paper's
/// compile + refresh cycle over them.
#[derive(Debug, Clone, Default)]
pub struct ViewManager {
    catalog: Catalog,
    views: BTreeMap<String, MaterializedView>,
    exec: Executor,
}

impl ViewManager {
    /// Wrap a catalog.
    pub fn new(catalog: Catalog) -> Self {
        ViewManager {
            catalog,
            views: BTreeMap::new(),
            exec: Executor::new(),
        }
    }

    /// Replace the executor every materialization, propagation, and
    /// verification in this manager runs on (thread count, morsel size,
    /// partitioning — see [`gpivot_exec::ExecOptions`]).
    pub fn with_exec(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The executor this manager runs plans on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The base-table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (loading data, etc.).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Pick the best strategy for a view definition (the paper's planner:
    /// normalize, then match the top shape).
    pub fn choose_strategy(&self, definition: &Plan) -> Strategy {
        if has_outer_join(definition) {
            return Strategy::Recompute;
        }
        let Ok(nv) = normalize_view(definition, &self.catalog) else {
            return Strategy::Recompute;
        };
        match nv.shape {
            TopShape::PivotTop { .. } => Strategy::PivotUpdate,
            TopShape::SelectOverPivot { ref predicate, .. } => {
                if predicate.is_null_intolerant() {
                    Strategy::SelectPivotUpdate
                } else {
                    Strategy::InsertDelete
                }
            }
            TopShape::PivotOverGroupBy { .. } => {
                // Prefer the Fig. 27 combined rules; fall back when the
                // aggregates are not self-maintainable.
                if augment_group_pivot(&nv.plan).is_ok() {
                    Strategy::GroupPivotUpdate
                } else {
                    Strategy::GroupByInsDel
                }
            }
            TopShape::Relational | TopShape::StuckPivot => Strategy::InsertDelete,
        }
    }

    /// Register a view, auto-selecting the maintenance strategy (the
    /// paper's shape-based planner). Shorthand for
    /// [`ViewManager::register_view_with`] with default [`ViewOptions`].
    pub fn register_view(&mut self, name: impl Into<String>, definition: Plan) -> Result<Strategy> {
        self.register_view_with(name, definition, ViewOptions::new())
    }

    /// Register a view with explicit [`ViewOptions`]. Accepts a bare
    /// [`Strategy`] too (`register_view_with("v", plan, Strategy::Recompute)`).
    ///
    /// Registration first runs the static plan lint (`gpivot-analyze`):
    /// `Error`-severity diagnostics reject the view with
    /// [`CoreError::PlanLint`] (opt out with
    /// [`ViewOptions::skip_plan_lint`]); warnings are kept on the view
    /// ([`MaterializedView::lint_warnings`]).
    ///
    /// Strategy resolution: a forced [`ViewOptions::strategy`] wins; else
    /// [`ViewOptions::expected_delta_rows`] asks the cost model
    /// ([`crate::cost`], the paper's §3 "cost-based optimizer" hook) — a
    /// cost-picked strategy that then fails shape validation is reported as
    /// [`CoreError::StrategyNotApplicable`] rather than silently swapped;
    /// else the shape-based planner ([`ViewManager::choose_strategy`])
    /// decides. Returns the strategy the view was compiled with.
    pub fn register_view_with(
        &mut self,
        name: impl Into<String>,
        definition: Plan,
        options: impl Into<ViewOptions>,
    ) -> Result<Strategy> {
        let name = name.into();
        let options = options.into();
        // Static plan lint (§4/§5 safety conditions checked up front):
        // refuse hard violations before any compilation work, keep the
        // soft findings to attach to the installed view.
        let lint_warnings = if options.skip_lint {
            Vec::new()
        } else {
            let report = gpivot_analyze::analyze(&definition, &self.catalog);
            if report.has_errors() {
                return Err(CoreError::PlanLint {
                    view: name,
                    diagnostics: report.diagnostics,
                });
            }
            report.diagnostics
        };
        if let Some(strategy) = options.strategy {
            self.install_new_view(name, definition, strategy, lint_warnings)?;
            return Ok(strategy);
        }
        if let Some(expected_delta_rows) = options.expected_delta_rows {
            let stats = crate::cost::CatalogStats::from_catalog(&self.catalog);
            let costed = crate::cost::cheapest_strategy(
                &definition,
                &stats,
                &self.catalog,
                expected_delta_rows,
            )
            .map(|(s, _)| s);
            let Some(strategy) = costed else {
                // No strategy costs out; fall back to the shape planner.
                let strategy = self.choose_strategy(&definition);
                self.install_new_view(name, definition, strategy, lint_warnings)?;
                return Ok(strategy);
            };
            // Cost-picked strategies can still fail shape validation at
            // create time (e.g. a non-null-intolerant predicate); surface
            // that instead of silently installing something else.
            return match self.install_new_view(name, definition, strategy, lint_warnings) {
                Ok(()) => Ok(strategy),
                Err(CoreError::DuplicateView(v)) => Err(CoreError::DuplicateView(v)),
                Err(_) => Err(CoreError::StrategyNotApplicable {
                    strategy: strategy.id().into(),
                    reason: "cost-selected strategy failed to compile; \
                             use register_view for the shape-based choice"
                        .into(),
                }),
            };
        }
        let strategy = self.choose_strategy(&definition);
        self.install_new_view(name, definition, strategy, lint_warnings)?;
        Ok(strategy)
    }

    /// Compile, materialize, and insert a view under `name`.
    fn install_new_view(
        &mut self,
        name: String,
        definition: Plan,
        strategy: Strategy,
        lint_warnings: Vec<Diagnostic>,
    ) -> Result<()> {
        if self.views.contains_key(&name) {
            return Err(CoreError::DuplicateView(name));
        }
        let mut view = MaterializedView::create_with(
            name.clone(),
            definition,
            strategy,
            &self.catalog,
            &self.exec,
        )?;
        view.lint_warnings = lint_warnings;
        self.views.insert(name, view);
        Ok(())
    }

    /// Create a view, auto-selecting the maintenance strategy.
    #[deprecated(since = "0.4.0", note = "use `register_view`")]
    pub fn create_view(&mut self, name: impl Into<String>, definition: Plan) -> Result<Strategy> {
        self.register_view(name, definition)
    }

    /// Create a view choosing the strategy with the cost model at an
    /// expected per-refresh delta size.
    #[deprecated(
        since = "0.4.0",
        note = "use `register_view_with` with `ViewOptions::new().expected_delta_rows(...)`"
    )]
    pub fn create_view_costed(
        &mut self,
        name: impl Into<String>,
        definition: Plan,
        expected_delta_rows: f64,
    ) -> Result<Strategy> {
        self.register_view_with(
            name,
            definition,
            ViewOptions::new().expected_delta_rows(expected_delta_rows),
        )
    }

    /// Create a view with an explicit strategy.
    #[deprecated(
        since = "0.4.0",
        note = "use `register_view_with` (accepts a bare `Strategy`)"
    )]
    pub fn create_view_with(
        &mut self,
        name: impl Into<String>,
        definition: Plan,
        strategy: Strategy,
    ) -> Result<()> {
        self.register_view_with(name, definition, strategy)
            .map(|_| ())
    }

    /// Drop a view.
    pub fn drop_view(&mut self, name: &str) -> Result<MaterializedView> {
        self.views
            .remove(name)
            .ok_or_else(|| CoreError::UnknownView(name.to_string()))
    }

    /// Borrow a view.
    pub fn view(&self, name: &str) -> Result<&MaterializedView> {
        self.views
            .get(name)
            .ok_or_else(|| CoreError::UnknownView(name.to_string()))
    }

    /// The user-facing contents of a view.
    pub fn query_view(&self, name: &str) -> Result<Table> {
        self.view(name)?.query()
    }

    /// Names of all views.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Iterate all views in name order.
    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.values()
    }

    /// Install (or overwrite) an already-materialized view under its own
    /// name. The service layer refreshes cloned views off-thread and
    /// installs the results in one critical section; this is the install
    /// half of that protocol.
    pub fn install_view(&mut self, view: MaterializedView) {
        self.views.insert(view.name().to_string(), view);
    }

    /// Refresh a single view against pending deltas (no commit).
    pub fn maintain_view(
        &mut self,
        name: &str,
        deltas: &SourceDeltas,
    ) -> Result<MaintenanceOutcome> {
        let catalog = &self.catalog;
        // Split borrow: temporarily remove the view.
        let mut view = self
            .views
            .remove(name)
            .ok_or_else(|| CoreError::UnknownView(name.to_string()))?;
        let result = view.maintain_with(catalog, deltas, &self.exec);
        self.views.insert(name.to_string(), view);
        result
    }

    /// Commit pending deltas to the base tables.
    ///
    /// Note this applies table-by-table: a failure partway (key violation,
    /// injected commit fault) leaves earlier tables committed. Callers that
    /// need all-or-nothing semantics should use the two-phase
    /// [`ViewManager::stage_commit`] / [`ViewManager::apply_staged`] pair
    /// instead.
    pub fn commit(&mut self, deltas: &SourceDeltas) -> Result<()> {
        let _s = tracing::span("maintain.commit").enter();
        for t in deltas.tables() {
            let d = deltas.delta(t).expect("listed table has a delta");
            self.catalog.apply_delta(t, d)?;
        }
        Ok(())
    }

    /// The fallible half of an atomic commit: compute every post-delta base
    /// table without mutating anything. All key violations and injected
    /// commit faults surface here, while the catalog is still untouched.
    pub fn stage_commit(&self, deltas: &SourceDeltas) -> Result<Vec<(String, Table)>> {
        let _s = tracing::span("maintain.stage").enter();
        let mut staged = Vec::new();
        for t in deltas.tables() {
            let d = deltas.delta(t).expect("listed table has a delta");
            staged.push((t.to_string(), self.catalog.stage_delta(t, d)?));
        }
        Ok(staged)
    }

    /// The infallible half of an atomic commit: swap in base tables staged
    /// by [`ViewManager::stage_commit`]. Nothing here can fail, so a caller
    /// holding a write lock commits all tables or (by never reaching this
    /// call) none.
    pub fn apply_staged(&mut self, staged: Vec<(String, Table)>) {
        let _s = tracing::span("maintain.commit").enter();
        for (name, table) in staged {
            self.catalog.replace(name, table);
        }
    }

    /// Full refresh cycle: maintain every view, then commit the deltas.
    pub fn refresh(
        &mut self,
        deltas: &SourceDeltas,
    ) -> Result<BTreeMap<String, MaintenanceOutcome>> {
        let names: Vec<String> = self.views.keys().cloned().collect();
        let mut outcomes = BTreeMap::new();
        for n in names {
            let o = self.maintain_view(&n, deltas)?;
            outcomes.insert(n, o);
        }
        self.commit(deltas)?;
        Ok(outcomes)
    }

    /// Verify a view's materialization against recomputation (testing aid).
    pub fn verify_view(&self, name: &str) -> Result<bool> {
        let view = self.view(name)?;
        let fresh = self.exec.run(&view.normalized.plan, &self.catalog)?;
        Ok(view.table.bag_eq(&fresh))
    }

    /// The compiled maintenance plan of a view.
    pub fn maintenance_plan(&self, name: &str) -> Result<MaintenancePlan> {
        Ok(self.view(name)?.maintenance_plan())
    }
}

// `Expr` is used by doc examples and the select-pivot strategy match.
#[allow(unused_imports)]
use Expr as _ExprForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType, Schema, Value};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let items = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "items",
            Table::from_rows(
                items,
                vec![
                    row![1, "a", 10],
                    row![1, "b", 20],
                    row![2, "a", 30],
                    row![3, "b", 40],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn pivot_plan() -> Plan {
        Plan::scan("items").gpivot(PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ))
    }

    #[test]
    fn auto_strategy_for_pivot_top() {
        let vm = ViewManager::new(catalog());
        assert_eq!(vm.choose_strategy(&pivot_plan()), Strategy::PivotUpdate);
    }

    #[test]
    fn auto_strategy_for_select_over_pivot() {
        let vm = ViewManager::new(catalog());
        let plan = pivot_plan().select(Expr::col("a**val").gt(Expr::lit(5)));
        assert_eq!(vm.choose_strategy(&plan), Strategy::SelectPivotUpdate);
    }

    #[test]
    fn auto_strategy_for_group_pivot() {
        let vm = ViewManager::new(catalog());
        let plan = Plan::scan("items")
            .group_by(&["attr"], vec![AggSpec::sum("val", "s")])
            .gpivot(PivotSpec::new(
                vec!["attr"],
                vec!["s"],
                vec![vec![Value::str("a")], vec![Value::str("b")]],
            ));
        assert_eq!(vm.choose_strategy(&plan), Strategy::GroupPivotUpdate);
    }

    #[test]
    fn create_maintain_verify_cycle() {
        let mut vm = ViewManager::new(catalog());
        vm.register_view("v", pivot_plan()).unwrap();
        assert!(vm.verify_view("v").unwrap());

        let mut deltas = SourceDeltas::new();
        deltas.insert_rows("items", vec![row![2, "b", 99], row![4, "a", 7]]);
        deltas.delete_rows("items", vec![row![1, "a", 10]]);
        vm.refresh(&deltas).unwrap();
        assert!(
            vm.verify_view("v").unwrap(),
            "view out of sync after refresh"
        );
    }

    #[test]
    fn every_applicable_strategy_agrees() {
        // Maintain the same view with every applicable strategy and check
        // they all converge to the recomputed state.
        let plan = pivot_plan();
        let mut deltas = SourceDeltas::new();
        deltas.delete_rows("items", vec![row![1, "b", 20], row![3, "b", 40]]);
        deltas.insert_rows("items", vec![row![3, "a", 1], row![5, "b", 5]]);

        for strategy in [
            Strategy::Recompute,
            Strategy::InsertDelete,
            Strategy::PivotUpdate,
        ] {
            let mut vm = ViewManager::new(catalog());
            vm.register_view_with("v", plan.clone(), strategy).unwrap();
            vm.refresh(&deltas).unwrap();
            assert!(vm.verify_view("v").unwrap(), "strategy {strategy} diverged");
        }
    }

    #[test]
    fn group_pivot_view_hides_helper_columns() {
        let mut vm = ViewManager::new(catalog());
        let plan = Plan::scan("items")
            .group_by(&["attr"], vec![AggSpec::sum("val", "s")])
            .gpivot(PivotSpec::new(
                vec!["attr"],
                vec!["s"],
                vec![vec![Value::str("a")], vec![Value::str("b")]],
            ));
        vm.register_view("v", plan).unwrap();
        let user = vm.query_view("v").unwrap();
        // Hidden __cs / __c_val cells must not leak into the user view.
        assert!(user
            .schema()
            .column_names()
            .iter()
            .all(|c| !c.contains("__cs") && !c.contains("__c_")));
        // But the materialized table does carry them.
        assert!(vm
            .view("v")
            .unwrap()
            .table()
            .schema()
            .column_names()
            .iter()
            .any(|c| c.contains("__cs")));
    }

    #[test]
    fn costed_creation_picks_update_rules_for_small_deltas() {
        let mut vm = ViewManager::new(catalog());
        let s = vm
            .register_view_with(
                "v",
                pivot_plan(),
                ViewOptions::new().expected_delta_rows(2.0),
            )
            .unwrap();
        assert_eq!(s, Strategy::PivotUpdate);
        // Huge expected deltas flip the choice to recomputation.
        let mut vm = ViewManager::new(catalog());
        let s = vm
            .register_view_with(
                "v",
                pivot_plan(),
                ViewOptions::new().expected_delta_rows(1_000_000.0),
            )
            .unwrap();
        assert_eq!(s, Strategy::Recompute);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_create_view_shims_still_work() {
        let mut vm = ViewManager::new(catalog());
        let s = vm.create_view("a", pivot_plan()).unwrap();
        assert_eq!(s, Strategy::PivotUpdate);
        vm.create_view_with("b", pivot_plan(), Strategy::Recompute)
            .unwrap();
        assert_eq!(vm.view("b").unwrap().strategy(), Strategy::Recompute);
        let s = vm.create_view_costed("c", pivot_plan(), 2.0).unwrap();
        assert_eq!(s, Strategy::PivotUpdate);
    }

    #[test]
    fn register_view_on_a_parallel_executor_matches_sequential() {
        // Same partitioning config, different thread counts: the view
        // contents must be row-for-row identical.
        let exec_at = |threads| {
            Executor::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
        };
        let mut one = ViewManager::new(catalog()).with_exec(exec_at(1));
        one.register_view("v", pivot_plan()).unwrap();
        let mut four = ViewManager::new(catalog()).with_exec(exec_at(4));
        four.register_view("v", pivot_plan()).unwrap();
        assert_eq!(
            one.query_view("v").unwrap().rows(),
            four.query_view("v").unwrap().rows()
        );

        let mut deltas = SourceDeltas::new();
        deltas.insert_rows("items", vec![row![2, "b", 99], row![4, "a", 7]]);
        one.refresh(&deltas).unwrap();
        four.refresh(&deltas).unwrap();
        assert!(four.verify_view("v").unwrap());
        assert_eq!(
            one.query_view("v").unwrap().rows(),
            four.query_view("v").unwrap().rows()
        );

        // And against the default executor the result is still the same bag.
        let mut seq = ViewManager::new(catalog());
        seq.register_view("v", pivot_plan()).unwrap();
        seq.refresh(&deltas).unwrap();
        assert!(seq
            .query_view("v")
            .unwrap()
            .bag_eq(&four.query_view("v").unwrap()));
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut vm = ViewManager::new(catalog());
        vm.register_view("v", pivot_plan()).unwrap();
        assert!(matches!(
            vm.register_view("v", pivot_plan()),
            Err(CoreError::DuplicateView(_))
        ));
    }

    #[test]
    fn unknown_view_errors() {
        let vm = ViewManager::new(catalog());
        assert!(matches!(vm.view("missing"), Err(CoreError::UnknownView(_))));
    }
}
