//! Incremental view maintenance (§3, §6 of the paper).
//!
//! The framework is the paper's two-phase compile/refresh pipeline:
//!
//! 1. **Compile** (once per view): normalize the view tree with the rewrite
//!    driver (pivots pulled to the top and combined), choose a maintenance
//!    [`Strategy`] from the resulting [`crate::rewrite::TopShape`], and
//!    materialize the view.
//! 2. **Refresh** (per batch of source deltas): the *propagate phase* pushes
//!    deltas through the relational core ([`delta_prop`]); the *apply phase*
//!    folds the final delta into the materialized table with the strategy's
//!    update rules ([`apply`] = Fig. 23, [`group_pivot`] = Fig. 27,
//!    [`select_pivot`] = Fig. 29), or with plain insert/delete application
//!    for the fallback strategies.

pub mod apply;
pub mod delta_prop;
pub mod group_pivot;
pub mod select_pivot;
pub mod strategy;
pub mod view;

pub use apply::ApplyStats;
pub use delta_prop::{post_state_table, propagate, PropagationCtx};
pub use strategy::{MaintenanceOutcome, MaintenancePlan, Strategy};
pub use view::{MaterializedView, ViewManager, ViewOptions};

use gpivot_storage::{Delta, Row};
use std::collections::HashMap;

/// A batch of pending changes to base tables, by table name.
#[derive(Debug, Clone, Default)]
pub struct SourceDeltas {
    map: HashMap<String, Delta>,
}

impl SourceDeltas {
    /// An empty batch.
    pub fn new() -> Self {
        SourceDeltas::default()
    }

    /// Record inserted rows for a table.
    pub fn insert_rows(&mut self, table: impl Into<String>, rows: Vec<Row>) {
        let d = self.map.entry(table.into()).or_default();
        for r in rows {
            d.add(r, 1);
        }
    }

    /// Record deleted rows for a table.
    pub fn delete_rows(&mut self, table: impl Into<String>, rows: Vec<Row>) {
        let d = self.map.entry(table.into()).or_default();
        for r in rows {
            d.add(r, -1);
        }
    }

    /// Record an in-place row update.
    ///
    /// The paper (§9) lists "maintenance of source updates in order to avoid
    /// always to decompose them into inserts and deletes" as future work; in
    /// the signed-multiset model the decomposition is lossless (a delete and
    /// an insert of the same key cancel per-cell during the apply phase's
    /// MERGE), so updates are sugar here.
    pub fn update_row(&mut self, table: impl Into<String>, old: Row, new: Row) {
        let d = self.map.entry(table.into()).or_default();
        d.add(old, -1);
        d.add(new, 1);
    }

    /// Merge a signed delta for a table.
    pub fn add_delta(&mut self, table: impl Into<String>, delta: Delta) {
        self.map.entry(table.into()).or_default().merge(&delta);
    }

    /// Move a signed delta into the batch without cloning its rows.
    pub fn absorb_delta(&mut self, table: impl Into<String>, delta: Delta) {
        self.map.entry(table.into()).or_default().absorb(delta);
    }

    /// The pending delta for a table, if any.
    pub fn delta(&self, table: &str) -> Option<&Delta> {
        self.map.get(table)
    }

    /// Names of tables with pending changes.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// True iff no change is pending.
    pub fn is_empty(&self) -> bool {
        self.map.values().all(Delta::is_empty)
    }

    /// Total number of row changes across all tables.
    pub fn total_changes(&self) -> u64 {
        self.map.values().map(Delta::total_multiplicity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::row;

    #[test]
    fn update_row_is_delete_plus_insert() {
        let mut d = SourceDeltas::new();
        d.update_row("t", row![1, "old"], row![1, "new"]);
        let delta = d.delta("t").unwrap();
        assert_eq!(delta.multiplicity(&row![1, "old"]), -1);
        assert_eq!(delta.multiplicity(&row![1, "new"]), 1);
        // Updating back cancels entirely.
        d.update_row("t", row![1, "new"], row![1, "old"]);
        assert!(d.is_empty());
    }

    #[test]
    fn source_deltas_accumulate() {
        let mut d = SourceDeltas::new();
        d.insert_rows("t", vec![row![1], row![2]]);
        d.delete_rows("t", vec![row![1]]);
        assert_eq!(d.delta("t").unwrap().multiplicity(&row![1]), 0);
        assert_eq!(d.delta("t").unwrap().multiplicity(&row![2]), 1);
        assert_eq!(d.total_changes(), 1);
        assert!(!d.is_empty());
        assert!(SourceDeltas::new().is_empty());
    }
}
