//! Combined update propagation rules for **GPIVOT over GROUPBY** (Fig. 27).
//!
//! For an aggregate crosstab view `GPivot(GroupBy(core))`, the naive route
//! propagates through the GROUPBY with insert/delete rules (recomputing
//! affected groups) and then merges. The combined rules instead aggregate
//! the *core delta* directly and fold the per-subgroup aggregate deltas
//! into the view cells:
//!
//! * subgroup absent + positive count delta → the cell is born;
//! * subgroup present → `SUM` cells add, `COUNT` cells add;
//! * a subgroup whose `count(*)` reaches 0 ⊥-s out all its cells;
//! * a row whose cells are all ⊥ is deleted.
//!
//! Correctness requires a `count(*)` measure per subgroup and, for exact
//! NULL behaviour of `SUM(col)`, a companion `count(col)`; the view
//! manager auto-adds both as hidden measures (the paper does the same in
//! Fig. 28: "we also need to add COUNT(*) into the view definition").

use crate::error::{CoreError, Result};
use crate::maintain::apply::ApplyStats;
use gpivot_algebra::{AggFunc, AggSpec, PivotSpec};
use gpivot_storage::{Delta, Row, Schema, Table, Value};
use std::collections::HashMap;

/// How each pivot measure of a group-pivot view is maintained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureRole {
    /// `count(*)` — the subgroup liveness counter.
    CountStar,
    /// `count(col)`.
    Count,
    /// `sum(col)`; `count_partner` is the measure index of its
    /// `count(col)` companion (for exact NULL handling).
    Sum { count_partner: usize },
}

/// Compile-time description of a `GPivot(GroupBy(core))` view for the
/// Fig. 27 rules.
#[derive(Debug, Clone)]
pub struct GroupPivotInfo {
    /// GROUPBY grouping columns (`K' ∪ by`), in GROUPBY order.
    pub group_by: Vec<String>,
    /// Inner aggregates, aligned 1:1 with `spec.on`.
    pub aggs: Vec<AggSpec>,
    /// Role of each measure, aligned 1:1 with `spec.on`.
    pub roles: Vec<MeasureRole>,
    /// Index (into `spec.on`) of the `count(*)` measure.
    pub count_star_idx: usize,
}

impl GroupPivotInfo {
    /// Derive the info from a view's GROUPBY parameters and pivot spec.
    /// Fails unless every pivoted measure is SUM / COUNT / COUNT(*), a
    /// `count(*)` is among them, and every SUM has a `count(col)` partner.
    pub fn derive(group_by: &[String], aggs: &[AggSpec], spec: &PivotSpec) -> Result<Self> {
        let not_applicable = |reason: String| CoreError::StrategyNotApplicable {
            strategy: "group-pivot-update (Fig. 27)".into(),
            reason,
        };
        // Align aggregates with spec.on.
        let mut aligned = Vec::with_capacity(spec.on.len());
        for on in &spec.on {
            let agg = aggs.iter().find(|a| &a.output == on).ok_or_else(|| {
                not_applicable(format!("pivot measure `{on}` is not an aggregate output"))
            })?;
            aligned.push(agg.clone());
        }
        let mut roles = Vec::with_capacity(aligned.len());
        let mut count_star_idx = None;
        for (i, a) in aligned.iter().enumerate() {
            match a.func {
                AggFunc::CountStar => {
                    roles.push(MeasureRole::CountStar);
                    if count_star_idx.is_none() {
                        count_star_idx = Some(i);
                    }
                }
                AggFunc::Count => roles.push(MeasureRole::Count),
                AggFunc::Sum => {
                    let partner = aligned
                        .iter()
                        .position(|b| b.func == AggFunc::Count && b.input == a.input)
                        .ok_or_else(|| {
                            not_applicable(format!(
                                "sum(`{}`) has no count(`{}`) companion measure",
                                a.input, a.input
                            ))
                        })?;
                    roles.push(MeasureRole::Sum {
                        count_partner: partner,
                    });
                }
                other => {
                    return Err(not_applicable(format!(
                        "aggregate {other} is not self-maintainable under Fig. 27 \
                         (paper restricts to SUM and COUNT)"
                    )))
                }
            }
        }
        let count_star_idx = count_star_idx
            .ok_or_else(|| not_applicable("no count(*) measure in the view".into()))?;
        Ok(GroupPivotInfo {
            group_by: group_by.to_vec(),
            aggs: aligned,
            roles,
            count_star_idx,
        })
    }
}

/// Aggregate a core delta into per-(K'∪by)-group signed aggregate deltas.
///
/// Returns, per group key, one value per measure: SUM → the signed sum of
/// non-NULL contributions (NULL when none), COUNT → the signed count of
/// non-NULL contributions, COUNT(*) → the signed row count.
pub fn aggregate_delta(
    delta_core: &Delta,
    core_schema: &Schema,
    info: &GroupPivotInfo,
) -> Result<HashMap<Row, Vec<Value>>> {
    let group_idx: Vec<usize> = info
        .group_by
        .iter()
        .map(|g| core_schema.index_of(g))
        .collect::<gpivot_storage::Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = info
        .aggs
        .iter()
        .map(|a| {
            if a.func == AggFunc::CountStar {
                Ok(None)
            } else {
                core_schema.index_of(&a.input).map(Some)
            }
        })
        .collect::<gpivot_storage::Result<_>>()?;

    #[derive(Clone)]
    enum Acc {
        Sum { acc: Value },
        Count { n: i64 },
    }
    let mut groups: HashMap<Row, Vec<Acc>> = HashMap::new();
    for (row, &w) in delta_core.iter() {
        let key = row.project(&group_idx);
        let states = groups.entry(key).or_insert_with(|| {
            info.aggs
                .iter()
                .map(|a| match a.func {
                    AggFunc::Sum => Acc::Sum { acc: Value::Null },
                    _ => Acc::Count { n: 0 },
                })
                .collect()
        });
        for ((state, idx), agg) in states.iter_mut().zip(&agg_idx).zip(&info.aggs) {
            match state {
                Acc::Sum { acc } => {
                    let v = &row[idx.expect("sum has input")];
                    if !v.is_null() {
                        let contribution = scale(v, w);
                        *acc = if acc.is_null() {
                            contribution
                        } else {
                            acc.numeric_add(&contribution)
                        };
                    }
                }
                Acc::Count { n } => match agg.func {
                    AggFunc::CountStar => *n += w,
                    _ => {
                        if !row[idx.expect("count has input")].is_null() {
                            *n += w;
                        }
                    }
                },
            }
        }
    }
    Ok(groups
        .into_iter()
        .map(|(k, states)| {
            let vals = states
                .into_iter()
                .map(|s| match s {
                    Acc::Sum { acc } => acc,
                    Acc::Count { n } => Value::Int(n),
                })
                .collect();
            (k, vals)
        })
        .collect())
}

/// Multiply a numeric value by a signed weight.
fn scale(v: &Value, w: i64) -> Value {
    match v {
        Value::Int(i) => Value::Int(i * w),
        Value::Float(f) => Value::Float(f * w as f64),
        _ => Value::Null,
    }
}

/// Apply the Fig. 27 combined update rules: fold `delta_core` (a delta over
/// the GROUPBY *input*) into the crosstab materialized view.
pub fn apply_group_pivot_update(
    mv: &mut Table,
    spec: &PivotSpec,
    info: &GroupPivotInfo,
    core_schema: &Schema,
    delta_core: &Delta,
) -> Result<ApplyStats> {
    let n_on = spec.on.len();
    // K' = grouping columns that are not pivot dimensions, in GROUPBY
    // order — these are the view key columns.
    let kp_positions: Vec<usize> = info
        .group_by
        .iter()
        .enumerate()
        .filter(|(_, g)| !spec.by.contains(g))
        .map(|(i, _)| i)
        .collect();
    let by_positions: Vec<usize> = spec
        .by
        .iter()
        .map(|b| {
            info.group_by
                .iter()
                .position(|g| g == b)
                .expect("pivot dimension is a grouping column")
        })
        .collect();
    let n_k = kp_positions.len();
    let width = n_k + spec.groups.len() * n_on;
    if mv.schema().arity() != width {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "group-pivot-update (Fig. 27)".into(),
            reason: format!(
                "materialized view arity {} does not match layout width {width}",
                mv.schema().arity()
            ),
        });
    }

    let agg_deltas = aggregate_delta(delta_core, core_schema, info)?;

    // Regroup by view key.
    let mut by_view_key: HashMap<Row, Vec<(usize, Vec<Value>)>> = HashMap::new();
    for (group_key, vals) in agg_deltas {
        let tags: Vec<Value> = by_positions.iter().map(|&i| group_key[i].clone()).collect();
        let Some(gi) = spec.group_index(&tags) else {
            continue; // subgroup outside the pivot's output parameters
        };
        let view_key = group_key.project(&kp_positions);
        by_view_key.entry(view_key).or_default().push((gi, vals));
    }

    let mut stats = ApplyStats::default();
    for (key, subgroups) in by_view_key {
        let existing = mv.get_by_key(&key).cloned();
        let mut cells: Vec<Value> = match &existing {
            Some(row) => row.to_vec(),
            None => {
                let mut v = Vec::with_capacity(width);
                v.extend(key.iter().cloned());
                v.extend(std::iter::repeat_n(Value::Null, width - n_k));
                v
            }
        };
        for (gi, deltas) in subgroups {
            let base = n_k + gi * n_on;
            let old_cs = &cells[base + info.count_star_idx];
            let delta_cs = deltas[info.count_star_idx]
                .as_i64()
                .expect("count(*) delta is an integer");
            if old_cs.is_null() {
                // Subgroup absent: born iff the delta inserts rows.
                if delta_cs > 0 {
                    for (j, role) in info.roles.iter().enumerate() {
                        cells[base + j] = match role {
                            MeasureRole::CountStar | MeasureRole::Count => deltas[j].clone(),
                            MeasureRole::Sum { count_partner } => {
                                if deltas[*count_partner].as_i64() == Some(0) {
                                    Value::Null
                                } else {
                                    deltas[j].clone()
                                }
                            }
                        };
                    }
                }
                // delta_cs <= 0 against an absent subgroup: inconsistent
                // input; ignore.
                continue;
            }
            let new_cs = old_cs.as_i64().expect("count(*) cell is an integer") + delta_cs;
            if new_cs == 0 {
                // Subgroup dies: ⊥ out every cell with this prefix.
                for j in 0..n_on {
                    cells[base + j] = Value::Null;
                }
                continue;
            }
            // Subgroup lives: merge each measure.
            // Counts first so SUM can consult its partner's *new* value.
            let mut new_cells = cells[base..base + n_on].to_vec();
            for (j, role) in info.roles.iter().enumerate() {
                match role {
                    MeasureRole::CountStar => new_cells[j] = Value::Int(new_cs),
                    MeasureRole::Count => {
                        let old = cells[base + j].as_i64().unwrap_or(0);
                        let d = deltas[j].as_i64().unwrap_or(0);
                        new_cells[j] = Value::Int(old + d);
                    }
                    MeasureRole::Sum { .. } => {}
                }
            }
            for (j, role) in info.roles.iter().enumerate() {
                if let MeasureRole::Sum { count_partner } = role {
                    let n_nonnull = new_cells[*count_partner]
                        .as_i64()
                        .expect("count cell is an integer");
                    new_cells[j] = if n_nonnull == 0 {
                        Value::Null
                    } else {
                        match (&cells[base + j], &deltas[j]) {
                            (Value::Null, d) => d.clone(),
                            (old, Value::Null) => old.clone(),
                            (old, d) => old.numeric_add(d),
                        }
                    };
                }
            }
            cells[base..base + n_on].clone_from_slice(&new_cells);
        }

        let all_null = cells[n_k..].iter().all(Value::is_null);
        match (existing.is_some(), all_null) {
            (true, true) => {
                mv.delete_by_key(&key);
                stats.deleted += 1;
            }
            (true, false) => {
                mv.update_by_key(&key, Row::new(cells));
                stats.updated += 1;
            }
            (false, true) => {}
            (false, false) => {
                mv.insert(Row::new(cells))?;
                stats.inserted += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType};
    use std::sync::Arc;

    /// Core: (cust, year, price); GroupBy(cust, year; sum, cnt_price, cnt*).
    fn core_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Str),
            ("year", DataType::Int),
            ("price", DataType::Int),
        ])
        .unwrap()
    }

    fn spec() -> PivotSpec {
        PivotSpec::new(
            vec!["year"],
            vec!["s", "c", "n"],
            vec![vec![Value::Int(1995)], vec![Value::Int(1996)]],
        )
    }

    fn info() -> GroupPivotInfo {
        GroupPivotInfo::derive(
            &["cust".into(), "year".into()],
            &[
                AggSpec::sum("price", "s"),
                AggSpec::count("price", "c"),
                AggSpec::count_star("n"),
            ],
            &spec(),
        )
        .unwrap()
    }

    /// MV layout: cust, 1995**{s,c,n}, 1996**{s,c,n}.
    fn mv() -> Table {
        let mut s = Schema::from_pairs(&[
            ("cust", DataType::Str),
            ("1995**s", DataType::Int),
            ("1995**c", DataType::Int),
            ("1995**n", DataType::Int),
            ("1996**s", DataType::Int),
            ("1996**c", DataType::Int),
            ("1996**n", DataType::Int),
        ])
        .unwrap();
        s.set_key(vec![0]);
        Table::from_rows(
            Arc::new(s),
            vec![
                row!["alice", 100, 2, 2, 50, 1, 1],
                Row::new(vec![
                    Value::str("bob"),
                    Value::Int(30),
                    Value::Int(1),
                    Value::Int(1),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn derive_requires_count_star() {
        let r = GroupPivotInfo::derive(
            &["cust".into(), "year".into()],
            &[AggSpec::sum("price", "s"), AggSpec::count("price", "c")],
            &PivotSpec::new(vec!["year"], vec!["s", "c"], vec![vec![Value::Int(1995)]]),
        );
        assert!(r.is_err());
    }

    #[test]
    fn derive_requires_sum_partner() {
        let r = GroupPivotInfo::derive(
            &["cust".into(), "year".into()],
            &[AggSpec::sum("price", "s"), AggSpec::count_star("n")],
            &PivotSpec::new(vec!["year"], vec!["s", "n"], vec![vec![Value::Int(1995)]]),
        );
        assert!(r.is_err());
    }

    #[test]
    fn insert_adds_to_existing_cell() {
        let mut t = mv();
        let d = Delta::from_inserts(vec![row!["alice", 1995, 25]]);
        let stats = apply_group_pivot_update(&mut t, &spec(), &info(), &core_schema(), &d).unwrap();
        assert_eq!(stats.updated, 1);
        let r = t.get_by_key(&row!["alice"]).unwrap();
        assert_eq!(r[1], Value::Int(125));
        assert_eq!(r[2], Value::Int(3));
        assert_eq!(r[3], Value::Int(3));
    }

    #[test]
    fn insert_births_subgroup_and_row() {
        let mut t = mv();
        let d = Delta::from_inserts(vec![row!["carol", 1996, 5], row!["bob", 1996, 7]]);
        let stats = apply_group_pivot_update(&mut t, &spec(), &info(), &core_schema(), &d).unwrap();
        assert_eq!(stats.inserted, 1); // carol
        assert_eq!(stats.updated, 1); // bob's 1996 subgroup born
        let bob = t.get_by_key(&row!["bob"]).unwrap();
        assert_eq!(bob[4], Value::Int(7));
        assert_eq!(bob[6], Value::Int(1));
    }

    #[test]
    fn delete_kills_subgroup_then_row() {
        let mut t = mv();
        // Remove bob's only 1995 row: subgroup dies -> row all-⊥ -> deleted.
        let d = Delta::from_deletes(vec![row!["bob", 1995, 30]]);
        let stats = apply_group_pivot_update(&mut t, &spec(), &info(), &core_schema(), &d).unwrap();
        assert_eq!(stats.deleted, 1);
        assert!(t.get_by_key(&row!["bob"]).is_none());
    }

    #[test]
    fn sum_goes_null_when_all_values_null_but_rows_remain() {
        let mut t = mv();
        // alice 1996: one row with price 50. Delete it but insert a row
        // with NULL price: count(*)=1, count(price)=0, sum must be ⊥.
        let mut d = Delta::new();
        d.add(row!["alice", 1996, 50], -1);
        d.add(
            Row::new(vec![Value::str("alice"), Value::Int(1996), Value::Null]),
            1,
        );
        apply_group_pivot_update(&mut t, &spec(), &info(), &core_schema(), &d).unwrap();
        let r = t.get_by_key(&row!["alice"]).unwrap();
        assert!(r[4].is_null(), "sum must be ⊥ when count(price)=0");
        assert_eq!(r[5], Value::Int(0));
        assert_eq!(r[6], Value::Int(1));
    }

    #[test]
    fn mixed_insert_delete_same_subgroup() {
        let mut t = mv();
        let mut d = Delta::new();
        d.add(row!["alice", 1995, 40], 1);
        d.add(row!["alice", 1995, 60], -1);
        // One of alice's two 1995 rows is (implicitly) valued 60 in the
        // base; the apply only sees the aggregate delta: sum -20, counts 0.
        apply_group_pivot_update(&mut t, &spec(), &info(), &core_schema(), &d).unwrap();
        let r = t.get_by_key(&row!["alice"]).unwrap();
        assert_eq!(r[1], Value::Int(80));
        assert_eq!(r[3], Value::Int(2));
    }
}
