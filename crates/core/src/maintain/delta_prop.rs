//! The **propagate phase**: push source deltas up a plan tree as signed
//! multisets, one rule per operator (§6.2; relational rules after [11, 18],
//! GPIVOT/GUNPIVOT rules after Fig. 22).
//!
//! Conventions:
//!
//! * The catalog holds the **pre-update** state; source deltas are the
//!   pending changes. `propagate(plan)` returns `Δ(plan) = plan(post) −
//!   plan(pre)` as a signed multiset.
//! * Join propagation uses the exact bag identity
//!   `Δ(A ⋈ B) = ΔA ⋈ B_pre ⊎ A_post ⋈ ΔB` — only the sides whose deltas
//!   are non-empty are ever materialized.
//! * `GROUPBY` inside the tree uses the insert/delete rules of \[18\]:
//!   identify affected groups, recompute them from pre and post states, and
//!   emit delete+insert pairs — exactly the "costly identification and then
//!   recomputation of affected groups" the paper measures (§7.3).
//! * An intermediate `GPIVOT` uses the Fig. 22 insert/delete rules: the
//!   affected keys' old output rows are re-derived from the pre state
//!   (delete side) and new rows from the post state (insert side). This is
//!   the expensive path the GPIVOT pullup exists to avoid.
//! * `GUNPIVOT` is linear (Fig. 22's union-distribution): the delta is
//!   unpivoted row-wise.

use crate::error::{CoreError, Result};
use crate::maintain::SourceDeltas;
use gpivot_algebra::plan::{JoinKind, Plan};
use gpivot_algebra::AggFunc;
use gpivot_exec::pivot::{PivotLayout, UnpivotLayout};
use gpivot_exec::{Executor, Overlay};
use gpivot_storage::{Catalog, Delta, Row, Table, Value};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};

/// Propagation context: pre-state catalog plus pending source deltas,
/// and the [`Executor`] every pre/post subplan evaluation runs on (so the
/// propagate phase inherits the caller's thread/partition configuration).
pub struct PropagationCtx<'a> {
    pub catalog: &'a Catalog,
    pub deltas: &'a SourceDeltas,
    exec: Executor,
    /// Rows flowing through plan operators across every pre/post subplan
    /// evaluation in this propagation (observability; see
    /// [`PropagationCtx::rows_evaluated`]).
    rows_evaluated: Cell<usize>,
}

impl<'a> PropagationCtx<'a> {
    pub fn new(catalog: &'a Catalog, deltas: &'a SourceDeltas) -> Self {
        PropagationCtx::with_exec(catalog, deltas, Executor::new())
    }

    /// A context whose subplan evaluations run on `exec`.
    pub fn with_exec(catalog: &'a Catalog, deltas: &'a SourceDeltas, exec: Executor) -> Self {
        PropagationCtx {
            catalog,
            deltas,
            exec,
            rows_evaluated: Cell::new(0),
        }
    }

    /// The executor pre/post evaluations run on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Total operator-output rows evaluated so far (the sum of
    /// `ExecTrace::total_rows` over every [`PropagationCtx::eval_pre`] /
    /// [`PropagationCtx::eval_post`] call) — the propagate phase's work
    /// proxy surfaced in `MaintenanceOutcome::rows_propagated`.
    pub fn rows_evaluated(&self) -> usize {
        self.rows_evaluated.get()
    }

    /// Does any base table under `plan` have a pending delta?
    pub fn touches(&self, plan: &Plan) -> bool {
        plan.base_tables()
            .iter()
            .any(|t| self.deltas.delta(t).is_some_and(|d| !d.is_empty()))
    }

    /// Evaluate a subplan against the pre-update state.
    pub fn eval_pre(&self, plan: &Plan) -> Result<Table> {
        let (table, trace) = self.exec.run_traced(plan, self.catalog)?;
        self.rows_evaluated
            .set(self.rows_evaluated.get() + trace.total_rows());
        Ok(table)
    }

    /// Evaluate a subplan against the post-update state (pre ⊕ deltas).
    pub fn eval_post(&self, plan: &Plan) -> Result<Table> {
        let mut overlay = Overlay::new(self.catalog);
        for table in plan.base_tables() {
            if let Some(delta) = self.deltas.delta(&table) {
                if !delta.is_empty() {
                    let pre = self.catalog.table(&table)?;
                    overlay.put(table.clone(), post_state_table(pre, delta));
                }
            }
        }
        let (table, trace) = self.exec.run_traced(plan, &overlay)?;
        self.rows_evaluated
            .set(self.rows_evaluated.get() + trace.total_rows());
        Ok(table)
    }
}

/// Build the post-update state of one table as a bag (pre ⊕ delta).
pub fn post_state_table(pre: &Table, delta: &Delta) -> Table {
    let mut deleted: HashMap<&Row, i64> = HashMap::new();
    for (row, &w) in delta.iter() {
        if w < 0 {
            deleted.insert(row, -w);
        }
    }
    let mut rows = Vec::with_capacity(pre.len());
    for row in pre.iter() {
        match deleted.get_mut(row) {
            Some(c) if *c > 0 => *c -= 1,
            _ => rows.push(row.clone()),
        }
    }
    for (row, &w) in delta.iter() {
        for _ in 0..w.max(0) {
            rows.push(row.clone());
        }
    }
    Table::bag(pre.schema().clone(), rows)
}

/// Propagate source deltas through `plan`, returning the output delta.
pub fn propagate(plan: &Plan, ctx: &PropagationCtx<'_>) -> Result<Delta> {
    // Untouched subtrees contribute no delta.
    if !ctx.touches(plan) {
        return Ok(Delta::new());
    }
    match plan {
        Plan::Scan { table } => Ok(ctx.deltas.delta(table).cloned().unwrap_or_default()),

        Plan::Select { input, predicate } => {
            let din = propagate(input, ctx)?;
            if din.is_empty() {
                return Ok(din);
            }
            let schema = input.schema(ctx.catalog)?;
            let bound = predicate.bind(&schema)?;
            Ok(din.filter_rows(|r| bound.holds(r)))
        }

        Plan::Project { input, items } => {
            let din = propagate(input, ctx)?;
            if din.is_empty() {
                return Ok(din);
            }
            let schema = input.schema(ctx.catalog)?;
            let bound: Vec<_> = items
                .iter()
                .map(|(e, _)| e.bind(&schema))
                .collect::<gpivot_algebra::Result<_>>()?;
            Ok(din.map_rows(|r| Row::new(bound.iter().map(|b| b.eval(r)).collect())))
        }

        Plan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            if *kind != JoinKind::Inner {
                return Err(CoreError::NotMaintainable(format!(
                    "delta propagation through {kind} joins is not supported; \
                     use full recomputation"
                )));
            }
            let dl = propagate(left, ctx)?;
            let dr = propagate(right, ctx)?;
            let ls = left.schema(ctx.catalog)?;
            let rs = right.schema(ctx.catalog)?;
            let left_on: Vec<usize> = on
                .iter()
                .map(|(l, _)| ls.index_of(l))
                .collect::<gpivot_storage::Result<_>>()?;
            let right_on: Vec<usize> = on
                .iter()
                .map(|(_, r)| rs.index_of(r))
                .collect::<gpivot_storage::Result<_>>()?;
            let out_schema = plan.schema(ctx.catalog)?;
            let bound_res = residual.as_ref().map(|e| e.bind(&out_schema)).transpose()?;

            let mut out = Delta::new();
            // ΔA ⋈ B_pre
            if !dl.is_empty() {
                let b_pre = ctx.eval_pre(right)?;
                delta_join_into(
                    &dl,
                    &left_on,
                    &b_pre,
                    &right_on,
                    /*delta_left=*/ true,
                    bound_res.as_ref(),
                    &mut out,
                );
            }
            // A_post ⋈ ΔB
            if !dr.is_empty() {
                let a_post = ctx.eval_post(left)?;
                delta_join_into(
                    &dr,
                    &right_on,
                    &a_post,
                    &left_on,
                    /*delta_left=*/ false,
                    bound_res.as_ref(),
                    &mut out,
                );
            }
            Ok(out)
        }

        Plan::GroupBy {
            input,
            group_by,
            aggs,
        } => {
            let din = propagate(input, ctx)?;
            if din.is_empty() {
                return Ok(din);
            }
            // Insert/delete rules of [18]: recompute affected groups.
            let in_schema = input.schema(ctx.catalog)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| in_schema.index_of(g))
                .collect::<gpivot_storage::Result<_>>()?;
            let affected: HashSet<Row> = din.distinct_values_at(&group_idx).into_iter().collect();

            let pre_in = ctx.eval_pre(input)?;
            let post_in = apply_delta_to_bag(&pre_in, &din);
            let restrict = |t: &Table| -> Table {
                Table::bag(
                    t.schema().clone(),
                    t.iter()
                        .filter(|r| affected.contains(&r.project(&group_idx)))
                        .cloned()
                        .collect(),
                )
            };
            let out_schema = plan.schema(ctx.catalog)?;
            let agg_inputs: Vec<usize> = aggs
                .iter()
                .map(|a| {
                    if a.func == AggFunc::CountStar {
                        Ok(usize::MAX)
                    } else {
                        in_schema.index_of(&a.input)
                    }
                })
                .collect::<gpivot_storage::Result<_>>()?;
            let old_groups = gpivot_exec::group::hash_group_by(
                &restrict(&pre_in),
                &group_idx,
                aggs,
                &agg_inputs,
                out_schema.clone(),
            )?;
            let new_groups = gpivot_exec::group::hash_group_by(
                &restrict(&post_in),
                &group_idx,
                aggs,
                &agg_inputs,
                out_schema,
            )?;
            let mut out = Delta::from_deletes(old_groups.rows().iter().cloned());
            out.merge(&Delta::from_inserts(new_groups.rows().iter().cloned()));
            Ok(out)
        }

        Plan::Union { left, right } => {
            let mut d = propagate(left, ctx)?;
            d.merge(&propagate(right, ctx)?);
            Ok(d)
        }

        Plan::Diff { .. } => {
            // Bag difference is not delta-linear; recompute both states.
            let pre = ctx.eval_pre(plan)?;
            let post = ctx.eval_post(plan)?;
            let mut d = Delta::from_deletes(pre.rows().iter().cloned());
            d.merge(&Delta::from_inserts(post.rows().iter().cloned()));
            Ok(d)
        }

        Plan::GPivot { input, spec } => {
            // Fig. 22 insert/delete rules: re-derive the affected keys'
            // pivot rows from the pre state (deletes) and the post state
            // (inserts). Accessing "the original pivoted result" is exactly
            // the cost the paper attributes to intermediate pivots (§2.3).
            let din = propagate(input, ctx)?;
            if din.is_empty() {
                return Ok(din);
            }
            let in_schema = input.schema(ctx.catalog)?;
            let layout = PivotLayout::resolve(spec, &in_schema)?;
            // Only delta rows whose dimension tuple is an output parameter
            // (and with a non-⊥ measure) affect the output.
            let relevant = din.filter_rows(|r| {
                layout.group_lookup.contains_key(&r.project(&layout.by_idx))
                    && !layout.on_idx.iter().all(|&oi| r[oi].is_null())
            });
            if relevant.is_empty() {
                return Ok(Delta::new());
            }
            let affected: HashSet<Row> = relevant
                .distinct_values_at(&layout.k_idx)
                .into_iter()
                .collect();

            let pre_in = ctx.eval_pre(input)?;
            let post_in = apply_delta_to_bag(&pre_in, &din);
            let restrict = |t: &Table| -> Table {
                Table::bag(
                    t.schema().clone(),
                    t.iter()
                        .filter(|r| affected.contains(&r.project(&layout.k_idx)))
                        .cloned()
                        .collect(),
                )
            };
            let out_schema = plan.schema(ctx.catalog)?;
            let old_rows =
                gpivot_exec::pivot::gpivot(&restrict(&pre_in), spec, out_schema.clone())?;
            let new_rows = gpivot_exec::pivot::gpivot(&restrict(&post_in), spec, out_schema)?;
            let mut out = Delta::from_deletes(old_rows.rows().iter().cloned());
            out.merge(&Delta::from_inserts(new_rows.rows().iter().cloned()));
            Ok(out)
        }

        Plan::GUnpivot { input, spec } => {
            // Fig. 22: GUNPIVOT distributes over bag union/difference.
            let din = propagate(input, ctx)?;
            if din.is_empty() {
                return Ok(din);
            }
            let in_schema = input.schema(ctx.catalog)?;
            let layout = UnpivotLayout::resolve(spec, &in_schema)?;
            let mut out = Delta::new();
            for (row, &w) in din.iter() {
                for (g, cols) in spec.groups.iter().zip(&layout.group_cols) {
                    if cols.iter().all(|&c| row[c].is_null()) {
                        continue;
                    }
                    let mut v = Vec::with_capacity(layout.k_idx.len() + g.tags.len() + cols.len());
                    v.extend(layout.k_idx.iter().map(|&i| row[i].clone()));
                    v.extend(g.tags.iter().cloned());
                    v.extend(cols.iter().map(|&c| row[c].clone()));
                    out.add(Row::new(v), w);
                }
            }
            Ok(out)
        }
    }
}

/// Apply a signed delta to an evaluated bag.
pub fn apply_delta_to_bag(pre: &Table, delta: &Delta) -> Table {
    post_state_table(pre, delta)
}

/// `delta ⋈ table`, accumulating signed joined rows into `out`.
///
/// `delta_left` selects the output column order: `true` → delta columns
/// first (delta is the plan's left side), `false` → table columns first.
fn delta_join_into(
    delta: &Delta,
    delta_on: &[usize],
    table: &Table,
    table_on: &[usize],
    delta_left: bool,
    residual: Option<&gpivot_algebra::BoundExpr>,
    out: &mut Delta,
) {
    // Build on the delta (small side).
    let mut build: HashMap<Row, Vec<(&Row, i64)>> = HashMap::new();
    for (row, &w) in delta.iter() {
        let key = row.project(delta_on);
        if key.iter().any(Value::is_null) {
            continue;
        }
        build.entry(key).or_default().push((row, w));
    }
    for trow in table.iter() {
        let key = trow.project(table_on);
        if key.iter().any(Value::is_null) {
            continue;
        }
        let Some(matches) = build.get(&key) else {
            continue;
        };
        for (drow, w) in matches {
            let joined = if delta_left {
                drow.concat(trow)
            } else {
                trow.concat(drow)
            };
            if residual.map(|p| p.holds(&joined)).unwrap_or(true) {
                out.add(joined, *w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, DataType, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let items = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "items",
            Table::from_rows(
                items,
                vec![
                    row![1, "a", 10],
                    row![1, "b", 20],
                    row![2, "a", 30],
                    row![3, "b", 40],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let names = Arc::new(
            Schema::from_pairs_keyed(&[("nid", DataType::Int), ("name", DataType::Str)], &["nid"])
                .unwrap(),
        );
        c.register(
            "names",
            Table::from_rows(
                names,
                vec![row![1, "one"], row![2, "two"], row![3, "three"]],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    /// Incremental-vs-recompute oracle: Δ(plan) must equal
    /// plan(post) − plan(pre).
    fn assert_delta_correct(plan: &Plan, catalog: &Catalog, deltas: &SourceDeltas) {
        let ctx = PropagationCtx::new(catalog, deltas);
        let got = propagate(plan, &ctx).unwrap();
        let pre = ctx.eval_pre(plan).unwrap();
        let post = ctx.eval_post(plan).unwrap();
        let mut expected = Delta::from_deletes(pre.rows().iter().cloned());
        expected.merge(&Delta::from_inserts(post.rows().iter().cloned()));
        assert_eq!(got, expected, "delta mismatch for plan:\n{plan}");
    }

    fn mixed_deltas() -> SourceDeltas {
        let mut d = SourceDeltas::new();
        d.delete_rows("items", vec![row![1, "b", 20]]);
        d.insert_rows("items", vec![row![1, "b", 99], row![4, "a", 7]]);
        d
    }

    #[test]
    fn select_propagation() {
        let plan = PlanBuilder::scan("items")
            .select(Expr::col("val").gt(Expr::lit(15)))
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn project_propagation() {
        let plan = PlanBuilder::scan("items")
            .project_cols(&["id", "val"])
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn join_propagation_left_delta() {
        let plan = PlanBuilder::scan("items")
            .join(PlanBuilder::scan("names"), vec![("id", "nid")])
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn join_propagation_both_sides() {
        let plan = PlanBuilder::scan("items")
            .join(PlanBuilder::scan("names"), vec![("id", "nid")])
            .build();
        let mut d = mixed_deltas();
        d.delete_rows("names", vec![row![2, "two"]]);
        d.insert_rows("names", vec![row![4, "four"]]);
        assert_delta_correct(&plan, &catalog(), &d);
    }

    #[test]
    fn group_by_propagation() {
        let plan = PlanBuilder::scan("items")
            .group_by(
                &["attr"],
                vec![AggSpec::sum("val", "total"), AggSpec::count_star("cnt")],
            )
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn group_by_group_death_and_birth() {
        let plan = PlanBuilder::scan("items")
            .group_by(&["attr"], vec![AggSpec::count_star("cnt")])
            .build();
        let mut d = SourceDeltas::new();
        // Kill group "b" entirely, create group "z".
        d.delete_rows("items", vec![row![1, "b", 20], row![3, "b", 40]]);
        d.insert_rows("items", vec![row![5, "z", 1]]);
        assert_delta_correct(&plan, &catalog(), &d);
    }

    #[test]
    fn intermediate_pivot_propagation() {
        let plan = PlanBuilder::scan("items")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .join(PlanBuilder::scan("names"), vec![("id", "nid")])
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn pivot_key_disappearance() {
        let plan = PlanBuilder::scan("items")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .build();
        let mut d = SourceDeltas::new();
        // Remove every row of id=1: the pivot row must disappear.
        d.delete_rows("items", vec![row![1, "a", 10], row![1, "b", 20]]);
        assert_delta_correct(&plan, &catalog(), &d);
    }

    #[test]
    fn unpivot_propagation_is_linear() {
        let pivot = PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")]);
        let unspec = gpivot_algebra::plan::UnpivotSpec::reversing(&pivot);
        let plan = PlanBuilder::scan("items")
            .gpivot(pivot)
            .gunpivot(unspec)
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn union_propagation() {
        let plan = PlanBuilder::scan("items")
            .union(PlanBuilder::scan("items"))
            .build();
        assert_delta_correct(&plan, &catalog(), &mixed_deltas());
    }

    #[test]
    fn untouched_tree_yields_empty_delta() {
        let plan = PlanBuilder::scan("names").build();
        let deltas = mixed_deltas(); // only touches `items`
        let cat = catalog();
        let ctx = PropagationCtx::new(&cat, &deltas);
        assert!(propagate(&plan, &ctx).unwrap().is_empty());
    }

    #[test]
    fn post_state_table_applies_signed_delta() {
        let c = catalog();
        let pre = c.table("items").unwrap();
        let mut d = Delta::new();
        d.add(row![1, "a", 10], -1);
        d.add(row![9, "z", 9], 1);
        let post = post_state_table(pre, &d);
        assert_eq!(post.len(), 4);
        assert!(post.rows().contains(&row![9, "z", 9]));
        assert!(!post.rows().contains(&row![1, "a", 10]));
    }
}
