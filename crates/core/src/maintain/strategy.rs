//! Maintenance strategies: which propagation/apply rules refresh a view.
//!
//! These are exactly the methods compared in the paper's evaluation (§7):
//! full recomputation, the insert/delete rules (Fig. 22 / \[18\]), the GPIVOT
//! update rules after pullup (Fig. 23), the SELECT-pushdown variant
//! (Eq. 7 + Fig. 23), and the two combined update rules (Fig. 27, Fig. 29).

use crate::maintain::apply::ApplyStats;
use std::fmt;

/// A maintenance strategy for one materialized view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Re-execute the view query over the post-update state (§7's baseline).
    Recompute,
    /// Propagate insert/delete deltas through the *original* tree —
    /// intermediate pivots use Fig. 22, GROUPBYs recompute affected groups
    /// — and apply the final delta as deletes + re-inserts.
    InsertDelete,
    /// Pull the pivot to the top (Fig. 4), propagate relational deltas
    /// through the core, and MERGE with the Fig. 23 update rules.
    PivotUpdate,
    /// For `σ(GPivot(...))` views: push the SELECT below the pivot with the
    /// Eq. 7 self-joins, then maintain like [`Strategy::PivotUpdate`]
    /// (the "select pushdown" comparison method of §7.2.2).
    SelectPushdownUpdate,
    /// For `σ(GPivot(...))` views: keep the pair on top and use the
    /// combined SELECT/GPIVOT update rules of Fig. 29.
    SelectPivotUpdate,
    /// For `GPivot(GroupBy(...))` views: update rules for the pivot but
    /// insert/delete rules (affected-group recomputation, \[18\]) for the
    /// GROUPBY — the middle method of §7.3.
    GroupByInsDel,
    /// For `GPivot(GroupBy(...))` views: the combined GPIVOT/GROUPBY update
    /// rules of Fig. 27.
    GroupPivotUpdate,
}

impl Strategy {
    /// All strategies, for exhaustive iteration in tests/benches.
    pub const ALL: [Strategy; 7] = [
        Strategy::Recompute,
        Strategy::InsertDelete,
        Strategy::PivotUpdate,
        Strategy::SelectPushdownUpdate,
        Strategy::SelectPivotUpdate,
        Strategy::GroupByInsDel,
        Strategy::GroupPivotUpdate,
    ];

    /// Short stable identifier (bench labels, reports).
    pub fn id(&self) -> &'static str {
        match self {
            Strategy::Recompute => "recompute",
            Strategy::InsertDelete => "insert-delete",
            Strategy::PivotUpdate => "pivot-update",
            Strategy::SelectPushdownUpdate => "select-pushdown-update",
            Strategy::SelectPivotUpdate => "select-pivot-update",
            Strategy::GroupByInsDel => "groupby-insdel",
            Strategy::GroupPivotUpdate => "group-pivot-update",
        }
    }

    /// Inverse of [`Strategy::id`]. The durability layer persists strategies
    /// by id in WAL records and checkpoints; recovery parses them back.
    pub fn from_id(id: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// The compiled maintenance plan for a view (the output of the paper's
/// compile phase, Fig. 4): strategy + the rewriting trail that justified it.
#[derive(Debug, Clone)]
pub struct MaintenancePlan {
    pub strategy: Strategy,
    /// Rewrite rules applied during normalization, in order.
    pub rewrite_log: Vec<String>,
    /// Human-readable explanation of the normalized tree.
    pub normalized_explain: String,
}

impl fmt::Display for MaintenancePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "strategy: {}", self.strategy)?;
        if !self.rewrite_log.is_empty() {
            writeln!(f, "rewrites applied:")?;
            for r in &self.rewrite_log {
                writeln!(f, "  - {r}")?;
            }
        }
        writeln!(f, "normalized plan:")?;
        for line in self.normalized_explain.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of one maintenance cycle on one view.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceOutcome {
    /// Row-level effects on the materialized table.
    pub stats: ApplyStats,
    /// Number of distinct delta rows that reached the apply phase.
    pub delta_rows: usize,
    /// Operator-output rows evaluated during the propagate phase (the sum
    /// of `ExecTrace::total_rows` over every pre/post subplan evaluation) —
    /// the work proxy the service layer's metrics report.
    pub rows_propagated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let ids: std::collections::HashSet<_> = Strategy::ALL.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), Strategy::ALL.len());
    }

    #[test]
    fn plan_display_lists_rewrites() {
        let p = MaintenancePlan {
            strategy: Strategy::PivotUpdate,
            rewrite_log: vec!["pullup-join (§5.1.3)".into()],
            normalized_explain: "GPIVOT\n  Scan t".into(),
        };
        let s = p.to_string();
        assert!(s.contains("pivot-update"));
        assert!(s.contains("pullup-join"));
    }
}
