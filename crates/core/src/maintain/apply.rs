//! The **apply phase** for a top-level GPIVOT: the update propagation rules
//! of Fig. 23, realized as a MERGE against the materialized view.
//!
//! Given the final delta over the pivot *input* (the relational core), each
//! affected key's view row is updated in place: deleted source rows `⊥`-out
//! their cells, inserted source rows overwrite theirs; a row whose cells
//! all become `⊥` is deleted from the view, and a fresh key with any
//! non-`⊥` cell is inserted. This is exactly the paper's left-outer-join
//! MERGE (§7.1) without ever touching unaffected rows.

use crate::error::{CoreError, Result};
use gpivot_algebra::PivotSpec;
use gpivot_exec::pivot::PivotLayout;
use gpivot_storage::{Delta, Row, Schema, Table, Value};
use std::collections::HashMap;

/// Row-level effect counters from an apply phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    pub inserted: usize,
    pub updated: usize,
    pub deleted: usize,
}

impl ApplyStats {
    /// Total rows touched.
    pub fn total(&self) -> usize {
        self.inserted + self.updated + self.deleted
    }
}

/// One key's pending cell changes: `(group index, signed weight, measures)`.
type CellChanges = Vec<(usize, i64, Vec<Value>)>;

/// Collect the per-key cell changes carried by a pivot-input delta.
///
/// Rows whose dimension tuple is not an output parameter, or whose measures
/// are all `⊥`, are irrelevant to the pivot output and skipped.
pub fn collect_cell_changes(delta_core: &Delta, layout: &PivotLayout) -> HashMap<Row, CellChanges> {
    let mut by_key: HashMap<Row, CellChanges> = HashMap::new();
    for (row, &w) in delta_core.iter() {
        let tags = row.project(&layout.by_idx);
        let Some(&gi) = layout.group_lookup.get(&tags) else {
            continue;
        };
        if layout.on_idx.iter().all(|&oi| row[oi].is_null()) {
            continue;
        }
        let measures: Vec<Value> = layout.on_idx.iter().map(|&oi| row[oi].clone()).collect();
        by_key
            .entry(row.project(&layout.k_idx))
            .or_default()
            .push((gi, w, measures));
    }
    by_key
}

/// Apply Fig. 23's update rules: MERGE `delta_core` (a delta over the pivot
/// input with schema `core_schema`) into the pivoted materialized view.
pub fn apply_pivot_update(
    mv: &mut Table,
    spec: &PivotSpec,
    core_schema: &Schema,
    delta_core: &Delta,
) -> Result<ApplyStats> {
    let layout = PivotLayout::resolve(spec, core_schema)?;
    let n_k = layout.k_idx.len();
    let n_on = layout.on_idx.len();
    let width = n_k + spec.groups.len() * n_on;
    if mv.schema().arity() != width {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "pivot-update (Fig. 23)".into(),
            reason: format!(
                "materialized view arity {} does not match pivot layout width {width}",
                mv.schema().arity()
            ),
        });
    }

    let changes = collect_cell_changes(delta_core, &layout);
    let mut stats = ApplyStats::default();

    for (key, mut cell_changes) in changes {
        // Deletes before inserts: a batch may replace a cell's source row.
        cell_changes.sort_by_key(|(_, w, _)| *w);

        let existing = mv.get_by_key(&key).cloned();
        let mut cells: Vec<Value> = match &existing {
            Some(row) => row.to_vec(),
            None => {
                let mut v = Vec::with_capacity(width);
                v.extend(key.iter().cloned());
                v.extend(std::iter::repeat_n(Value::Null, width - n_k));
                v
            }
        };
        for (gi, w, measures) in &cell_changes {
            let base = n_k + gi * n_on;
            if *w < 0 {
                for j in 0..n_on {
                    cells[base + j] = Value::Null;
                }
            } else {
                for (j, m) in measures.iter().enumerate() {
                    cells[base + j] = m.clone();
                }
            }
        }

        let all_null = cells[n_k..].iter().all(Value::is_null);
        match (existing.is_some(), all_null) {
            (true, true) => {
                mv.delete_by_key(&key);
                stats.deleted += 1;
            }
            (true, false) => {
                mv.update_by_key(&key, Row::new(cells));
                stats.updated += 1;
            }
            (false, true) => {} // no-op: deletes for an absent key
            (false, false) => {
                mv.insert(Row::new(cells))?;
                stats.inserted += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType};
    use std::sync::Arc;

    /// Core schema: (id, attr, val) with key (id, attr).
    fn core_schema() -> Schema {
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Int),
            ],
            &["id", "attr"],
        )
        .unwrap()
    }

    fn spec() -> PivotSpec {
        PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")])
    }

    fn mv() -> Table {
        let mut s = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("a**val", DataType::Int),
            ("b**val", DataType::Int),
        ])
        .unwrap();
        s.set_key(vec![0]);
        Table::from_rows(
            Arc::new(s),
            vec![
                Row::new(vec![Value::Int(1), Value::Int(10), Value::Int(20)]),
                Row::new(vec![Value::Int(2), Value::Int(30), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_new_key() {
        let mut t = mv();
        let d = Delta::from_inserts(vec![row![3, "a", 99]]);
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(
            stats,
            ApplyStats {
                inserted: 1,
                updated: 0,
                deleted: 0
            }
        );
        assert_eq!(
            t.get_by_key(&row![3]),
            Some(&Row::new(vec![Value::Int(3), Value::Int(99), Value::Null]))
        );
    }

    #[test]
    fn update_existing_cell_in_place() {
        let mut t = mv();
        // Replace (2, a, 30) with (2, a, 77): delete + insert in one batch.
        let mut d = Delta::new();
        d.add(row![2, "a", 30], -1);
        d.add(row![2, "a", 77], 1);
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(
            stats,
            ApplyStats {
                inserted: 0,
                updated: 1,
                deleted: 0
            }
        );
        assert_eq!(t.get_by_key(&row![2]).unwrap()[1], Value::Int(77));
    }

    #[test]
    fn delete_cell_keeps_row_with_other_cells() {
        let mut t = mv();
        let d = Delta::from_deletes(vec![row![1, "a", 10]]);
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(stats.updated, 1);
        let r = t.get_by_key(&row![1]).unwrap();
        assert!(r[1].is_null());
        assert_eq!(r[2], Value::Int(20));
    }

    #[test]
    fn delete_last_cell_removes_row() {
        let mut t = mv();
        let d = Delta::from_deletes(vec![row![2, "a", 30]]);
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(stats.deleted, 1);
        assert!(t.get_by_key(&row![2]).is_none());
    }

    #[test]
    fn fill_empty_cell_of_existing_row() {
        let mut t = mv();
        let d = Delta::from_inserts(vec![row![2, "b", 55]]);
        apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        let r = t.get_by_key(&row![2]).unwrap();
        assert_eq!(r[2], Value::Int(55));
        assert_eq!(r[1], Value::Int(30));
    }

    #[test]
    fn unlisted_groups_and_null_measures_ignored() {
        let mut t = mv();
        let mut d = Delta::new();
        d.add(row![1, "zzz", 1], 1); // unlisted dimension value
        d.add(
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Null]),
            1,
        ); // all-⊥ measures
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn deletes_for_absent_key_are_noops() {
        let mut t = mv();
        let d = Delta::from_deletes(vec![row![9, "a", 1]]);
        let stats = apply_pivot_update(&mut t, &spec(), &core_schema(), &d).unwrap();
        assert_eq!(stats.total(), 0);
        assert_eq!(t.len(), 2);
    }
}
