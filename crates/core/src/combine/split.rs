//! Split rules for GPIVOT (§4.3): the combination rules read right-to-left,
//! plus the local/global split for parallel pivot processing.
//!
//! Splitting is the *query-optimization* face of the combination rules: a
//! cost-based optimizer may prefer executing a wide GPIVOT as two narrower
//! ones (e.g. to pipeline with different join orders), or to partition the
//! input, pivot each partition locally, and merge the partial pivot results
//! — the paper notes the merge step is exactly the insert-case propagation
//! rule of Fig. 22 (here realized by [`merge_partial_pivots`]).

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::PivotSpec;
use gpivot_analyze::DiagCode;
use gpivot_storage::{Row, Table, Value};
use std::collections::HashMap;

const RULE: &str = "split-gpivot (§4.3)";

/// A pivot split into two specs whose recombination (multicolumn or
/// composition) yields the original.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPivot {
    pub first: PivotSpec,
    pub second: PivotSpec,
}

/// Split a GPIVOT by measures (reverse of Eq. 5): the first spec pivots
/// `on[..at]`, the second `on[at..]`, both with the original dimensions and
/// groups.
pub fn split_multicolumn(spec: &PivotSpec, at: usize) -> Result<PartitionedPivot> {
    if at == 0 || at >= spec.on.len() {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp020RuleShapeMismatch,
            reason: format!(
                "measure split point {at} must be inside 1..{}",
                spec.on.len()
            ),
        });
    }
    Ok(PartitionedPivot {
        first: PivotSpec {
            by: spec.by.clone(),
            on: spec.on[..at].to_vec(),
            groups: spec.groups.clone(),
        },
        second: PivotSpec {
            by: spec.by.clone(),
            on: spec.on[at..].to_vec(),
            groups: spec.groups.clone(),
        },
    })
}

/// Split a GPIVOT by dimensions (reverse of Eq. 6): the inner spec pivots by
/// `by[at..]`, the outer by `by[..at]` over the inner's output columns. The
/// original groups must form a full cross product of per-dimension value
/// sets for the split to be lossless; the distinct outer/inner tag tuples
/// are extracted from the groups, and the rule refuses if the cross product
/// of those does not reproduce the original group list.
pub fn split_composition(spec: &PivotSpec, at: usize) -> Result<PartitionedPivot> {
    if at == 0 || at >= spec.by.len() {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp020RuleShapeMismatch,
            reason: format!(
                "dimension split point {at} must be inside 1..{}",
                spec.by.len()
            ),
        });
    }
    let mut outer_tags: Vec<Vec<Value>> = Vec::new();
    let mut inner_tags: Vec<Vec<Value>> = Vec::new();
    for g in &spec.groups {
        let o = g[..at].to_vec();
        let i = g[at..].to_vec();
        if !outer_tags.contains(&o) {
            outer_tags.push(o);
        }
        if !inner_tags.contains(&i) {
            inner_tags.push(i);
        }
    }
    // Losslessness check: groups must be exactly the cross product.
    let mut cross = Vec::with_capacity(outer_tags.len() * inner_tags.len());
    for o in &outer_tags {
        for i in &inner_tags {
            let mut g = o.clone();
            g.extend(i.iter().cloned());
            cross.push(g);
        }
    }
    if cross != spec.groups {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp017PivotsNotCombinable,
            reason: "output groups are not a cross product in group-major order; \
                     a dimension split would change the output"
                .to_string(),
        });
    }

    let inner = PivotSpec {
        by: spec.by[at..].to_vec(),
        on: spec.on.clone(),
        groups: inner_tags,
    };
    // Outer pivots the inner's output columns by the leading dimensions.
    let outer = PivotSpec {
        by: spec.by[..at].to_vec(),
        on: inner.output_col_names(),
        groups: outer_tags,
    };
    Ok(PartitionedPivot {
        first: inner,
        second: outer,
    })
}

/// Merge partial GPIVOT results computed on disjoint partitions of the
/// input (the "local/global" parallel split of §4.3). Rows with the same
/// key are merged cell-wise; overlapping non-`⊥` cells are an error (they
/// would mean the partitioning broke the `(K, A1..Am)` key).
pub fn merge_partial_pivots(parts: &[Table]) -> Result<Table> {
    let Some(first) = parts.first() else {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp020RuleShapeMismatch,
            reason: "no partial results to merge".to_string(),
        });
    };
    let schema = first.schema().clone();
    let key_idx: Vec<usize> =
        schema
            .key()
            .map(|k| k.to_vec())
            .ok_or_else(|| CoreError::RuleNotApplicable {
                rule: RULE,
                code: DiagCode::Gp001PivotInputNoKey,
                reason: "partial pivot results carry no key".to_string(),
            })?;
    let arity = schema.arity();
    let mut acc: HashMap<Row, Vec<Value>> = HashMap::new();
    for part in parts {
        for row in part.iter() {
            let key = row.project(&key_idx);
            match acc.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(row.to_vec());
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let merged = o.get_mut();
                    for i in 0..arity {
                        if key_idx.contains(&i) {
                            continue;
                        }
                        let incoming = &row[i];
                        if incoming.is_null() {
                            continue;
                        }
                        if !merged[i].is_null() && merged[i] != *incoming {
                            return Err(CoreError::Exec(
                                gpivot_exec::ExecError::DuplicatePivotCell {
                                    key: format!("{:?}", row.project(&key_idx)),
                                    group: schema.fields()[i].name.clone(),
                                },
                            ));
                        }
                        merged[i] = incoming.clone();
                    }
                }
            }
        }
    }
    Ok(Table::bag(
        schema,
        acc.into_values().map(Row::new).collect(),
    ))
}

/// Execute a GPIVOT with the §4.3 local/global parallel split: partition
/// the input rows round-robin across `threads` workers, pivot each
/// partition locally on its own OS thread, then merge the partial results
/// with [`merge_partial_pivots`].
///
/// Any partitioning works because a pivot cell is written by exactly one
/// source row (the `(K, A1..Am)` key); the paper notes the merge is the
/// insert-case propagation rule of Fig. 22.
pub fn parallel_gpivot(
    input: &Table,
    spec: &gpivot_algebra::PivotSpec,
    out_schema: gpivot_storage::SchemaRef,
    threads: usize,
) -> Result<Table> {
    let threads = threads.max(1);
    if threads == 1 || input.len() < 2 {
        return Ok(gpivot_exec::pivot::gpivot(input, spec, out_schema)?);
    }
    // Round-robin partitions (cheap Arc-clones of rows).
    let mut partitions: Vec<Vec<Row>> =
        vec![Vec::with_capacity(input.len() / threads + 1); threads];
    for (i, row) in input.iter().enumerate() {
        partitions[i % threads].push(row.clone());
    }
    let schema = input.schema().clone();
    let parts: Vec<Table> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|rows| {
                let schema = schema.clone();
                let out_schema = out_schema.clone();
                scope.spawn(move || {
                    gpivot_exec::pivot::gpivot(&Table::bag(schema, rows), spec, out_schema)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pivot worker panicked"))
            .collect::<std::result::Result<Vec<_>, _>>()
    })?;
    merge_partial_pivots(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{combine_multicolumn_specs, compose_specs};
    use gpivot_exec::pivot::gpivot;
    use gpivot_storage::{row, DataType, Schema};
    use std::sync::Arc;

    fn wide_spec() -> PivotSpec {
        PivotSpec::cross(
            vec!["Manu", "Type"],
            vec!["Price", "Qty"],
            vec![
                vec![Value::str("Sony"), Value::str("Panasonic")],
                vec![Value::str("TV"), Value::str("VCR")],
            ],
        )
    }

    #[test]
    fn multicolumn_split_roundtrips() {
        let spec = wide_spec();
        let parts = split_multicolumn(&spec, 1).unwrap();
        assert_eq!(parts.first.on, vec!["Price"]);
        assert_eq!(parts.second.on, vec!["Qty"]);
        let back = combine_multicolumn_specs(&parts.first, &parts.second).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn composition_split_roundtrips() {
        let spec = wide_spec();
        let parts = split_composition(&spec, 1).unwrap();
        assert_eq!(parts.first.by, vec!["Type"]);
        assert_eq!(parts.second.by, vec!["Manu"]);
        let back = compose_specs(&parts.first, &parts.second).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn composition_split_rejects_non_cross_product() {
        let spec = PivotSpec::new(
            vec!["Manu", "Type"],
            vec!["Price"],
            vec![
                vec![Value::str("Sony"), Value::str("TV")],
                vec![Value::str("Panasonic"), Value::str("VCR")],
            ],
        );
        assert!(split_composition(&spec, 1).is_err());
    }

    #[test]
    fn split_point_bounds_checked() {
        let spec = wide_spec();
        assert!(split_multicolumn(&spec, 0).is_err());
        assert!(split_multicolumn(&spec, 2).is_err());
        assert!(split_composition(&spec, 0).is_err());
        assert!(split_composition(&spec, 2).is_err());
    }

    #[test]
    fn parallel_partition_merge_equals_whole() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Attr", DataType::Str),
                    ("Val", DataType::Int),
                ],
                &["ID", "Attr"],
            )
            .unwrap(),
        );
        let all_rows = vec![
            row![1, "a", 10],
            row![1, "b", 20],
            row![2, "a", 30],
            row![2, "b", 40],
            row![3, "a", 50],
        ];
        let spec = PivotSpec::simple("Attr", "Val", vec![Value::str("a"), Value::str("b")]);
        let mut out_s = Schema::from_pairs(&[
            ("ID", DataType::Int),
            ("a**Val", DataType::Int),
            ("b**Val", DataType::Int),
        ])
        .unwrap();
        out_s.set_key(vec![0]);
        let out_s = Arc::new(out_s);

        let whole = gpivot(
            &Table::bag(schema.clone(), all_rows.clone()),
            &spec,
            out_s.clone(),
        )
        .unwrap();

        // Partition by row parity, pivot each partition, merge.
        let p0: Vec<Row> = all_rows.iter().step_by(2).cloned().collect();
        let p1: Vec<Row> = all_rows.iter().skip(1).step_by(2).cloned().collect();
        let part0 = gpivot(&Table::bag(schema.clone(), p0), &spec, out_s.clone()).unwrap();
        let part1 = gpivot(&Table::bag(schema, p1), &spec, out_s).unwrap();
        let merged = merge_partial_pivots(&[part0, part1]).unwrap();
        assert!(merged.bag_eq(&whole));
    }

    #[test]
    fn parallel_gpivot_equals_sequential() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Attr", DataType::Str),
                    ("Val", DataType::Int),
                ],
                &["ID", "Attr"],
            )
            .unwrap(),
        );
        let mut rows = Vec::new();
        for id in 0..200 {
            for (ai, attr) in ["a", "b", "c"].iter().enumerate() {
                if (id + ai as i64) % 3 != 0 {
                    rows.push(row![id, *attr, id * 10 + ai as i64]);
                }
            }
        }
        let input = Table::bag(schema, rows);
        let spec = PivotSpec::simple(
            "Attr",
            "Val",
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        );
        let mut out_s = Schema::from_pairs(&[
            ("ID", DataType::Int),
            ("a**Val", DataType::Int),
            ("b**Val", DataType::Int),
            ("c**Val", DataType::Int),
        ])
        .unwrap();
        out_s.set_key(vec![0]);
        let out_s = Arc::new(out_s);
        let sequential = gpivot(&input, &spec, out_s.clone()).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel = parallel_gpivot(&input, &spec, out_s.clone(), threads).unwrap();
            assert!(
                parallel.bag_eq(&sequential),
                "parallel ({threads} threads) differs from sequential"
            );
        }
    }

    #[test]
    fn parallel_gpivot_is_deterministic_across_thread_counts() {
        // §4.3's local/global split merges per-thread partial pivots from a
        // hash map, so physical row ORDER is unspecified — but the row SET
        // must be byte-identical for every thread count and across repeated
        // runs. Compare canonicalized (sorted) rows for 1, 2 and 8 threads.
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Attr", DataType::Str),
                    ("Val", DataType::Int),
                ],
                &["ID", "Attr"],
            )
            .unwrap(),
        );
        let mut rows = Vec::new();
        for id in 0..300 {
            for (ai, attr) in ["a", "b", "c"].iter().enumerate() {
                if (id + ai as i64) % 4 != 0 {
                    rows.push(row![id, *attr, id * 7 + ai as i64]);
                }
            }
        }
        let input = Table::bag(schema, rows);
        let spec = PivotSpec::simple(
            "Attr",
            "Val",
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        );
        let mut out_s = Schema::from_pairs(&[
            ("ID", DataType::Int),
            ("a**Val", DataType::Int),
            ("b**Val", DataType::Int),
            ("c**Val", DataType::Int),
        ])
        .unwrap();
        out_s.set_key(vec![0]);
        let out_s = Arc::new(out_s);

        let reference = parallel_gpivot(&input, &spec, out_s.clone(), 1)
            .unwrap()
            .sorted_rows();
        for threads in [1usize, 2, 8] {
            for run in 0..2 {
                let got = parallel_gpivot(&input, &spec, out_s.clone(), threads)
                    .unwrap()
                    .sorted_rows();
                assert_eq!(
                    got, reference,
                    "thread count {threads} (run {run}) changed the result"
                );
            }
        }
    }

    #[test]
    fn merge_detects_conflicting_cells() {
        let mut s = Schema::from_pairs(&[("k", DataType::Int), ("c", DataType::Int)]).unwrap();
        s.set_key(vec![0]);
        let s = Arc::new(s);
        let a = Table::bag(s.clone(), vec![row![1, 10]]);
        let b = Table::bag(s, vec![row![1, 20]]);
        assert!(merge_partial_pivots(&[a, b]).is_err());
    }
}
