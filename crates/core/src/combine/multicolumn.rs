//! Multicolumn pivot (Eq. 5): merge two pivots of the same input that pivot
//! *different measure sets* by the *same dimensions*.
//!
//! The paper writes the un-combined form as a natural join on `K`:
//!
//! ```text
//! GPIVOT[G][A on B1..Bj](π_{K,A,B1..Bj} V) ⋈_K GPIVOT[G][A on Bj+1..Bn](π_{K,A,Bj+1..Bn} V)
//!   =  GPIVOT[G][A on B1..Bn](V)
//! ```
//!
//! Our algebra requires join sides to have disjoint column names, so the
//! canonical un-combined plan (built by [`multicolumn_join_plan`], and what
//! a frontend would generate for "pivot two measure groups then join")
//! renames the right side's `K` columns and drops them again on top.
//! [`try_multicolumn`] recognizes exactly that canonical shape and rewrites
//! it to the single combined GPIVOT (plus a column-permutation `Project`,
//! since the joined form lists all of pivot 1's cells before pivot 2's
//! while the combined pivot interleaves measures group-major).

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{JoinKind, PivotSpec, Plan};
use gpivot_algebra::Expr;
use gpivot_analyze::DiagCode;

const RULE: &str = "combine-multicolumn (Eq. 5)";

/// Prefix used to rename the right side's `K` columns in the canonical
/// un-combined form.
const RIGHT_PREFIX: &str = "__mc_r_";

/// Combine two pivot specs under the multicolumn rule: same dimensions and
/// output groups, disjoint measure lists.
pub fn combine_multicolumn_specs(s1: &PivotSpec, s2: &PivotSpec) -> Result<PivotSpec> {
    if s1.by != s2.by {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp017PivotsNotCombinable,
            reason: format!("dimension lists differ: {:?} vs {:?}", s1.by, s2.by),
        });
    }
    if s1.groups != s2.groups {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp017PivotsNotCombinable,
            reason: "output groups differ".to_string(),
        });
    }
    if s1.on.iter().any(|c| s2.on.contains(c)) {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp017PivotsNotCombinable,
            reason: "measure lists overlap".to_string(),
        });
    }
    let mut on = s1.on.clone();
    on.extend(s2.on.iter().cloned());
    Ok(PivotSpec {
        by: s1.by.clone(),
        on,
        groups: s1.groups.clone(),
    })
}

/// Build the canonical *un-combined* plan of Eq. 5's left side: pivot `on1`
/// and `on2` separately over `input`, join on `K`, and drop the duplicated
/// key columns. `k_cols` are the carried-through columns.
pub fn multicolumn_join_plan(
    input: Plan,
    k_cols: &[&str],
    by: &[&str],
    groups: Vec<Vec<gpivot_storage::Value>>,
    on1: &[&str],
    on2: &[&str],
) -> Plan {
    let s1 = PivotSpec::new(by.to_vec(), on1.to_vec(), groups.clone());
    let s2 = PivotSpec::new(by.to_vec(), on2.to_vec(), groups);

    let mut proj1: Vec<&str> = k_cols.to_vec();
    proj1.extend_from_slice(by);
    proj1.extend_from_slice(on1);
    let mut proj2: Vec<&str> = k_cols.to_vec();
    proj2.extend_from_slice(by);
    proj2.extend_from_slice(on2);

    let left = input.clone().project_cols(&proj1).gpivot(s1.clone());
    let right_pivot = input.project_cols(&proj2).gpivot(s2.clone());

    // Rename right K columns to avoid ambiguity.
    let mut rename_items: Vec<(Expr, String)> = k_cols
        .iter()
        .map(|k| (Expr::col(*k), format!("{RIGHT_PREFIX}{k}")))
        .collect();
    for name in s2.output_col_names() {
        rename_items.push((Expr::col(&name), name.clone()));
    }
    let right = right_pivot.project(rename_items);

    let on_pairs: Vec<(String, String)> = k_cols
        .iter()
        .map(|k| ((*k).to_string(), format!("{RIGHT_PREFIX}{k}")))
        .collect();
    let joined = Plan::Join {
        left: Box::new(left),
        right: Box::new(right),
        kind: JoinKind::Inner,
        on: on_pairs,
        residual: None,
    };

    // Final projection: K, pivot-1 cells, pivot-2 cells.
    let mut keep: Vec<&str> = k_cols.to_vec();
    let cells1 = s1.output_col_names();
    let cells2 = s2.output_col_names();
    let keep_owned: Vec<String> = keep
        .drain(..)
        .map(str::to_string)
        .chain(cells1)
        .chain(cells2)
        .collect();
    joined.project(
        keep_owned
            .iter()
            .map(|c| (Expr::col(c), c.clone()))
            .collect(),
    )
}

/// Recognize the canonical un-combined multicolumn shape and rewrite it to
/// a single combined GPIVOT (wrapped in the order-restoring `Project`).
///
/// Matches both the full canonical form (`Project` over the K-join of the
/// two pivots) and the bare join itself — the latter so a bottom-up driver
/// can combine before any other join rule fires. In the bare-join case the
/// renamed right-side key columns are reconstructed by duplication (they
/// equal the left keys by the join condition).
pub fn try_multicolumn(plan: &Plan) -> Result<Plan> {
    let not_applicable = |reason: String| CoreError::RuleNotApplicable {
        rule: RULE,
        code: DiagCode::Gp020RuleShapeMismatch,
        reason,
    };

    // Accept Project(join-pattern) or the bare join-pattern.
    let (join, top_items): (&Plan, Option<&Vec<(Expr, String)>>) = match plan {
        Plan::Project { input, items } => (input.as_ref(), Some(items)),
        join @ Plan::Join { .. } => (join, None),
        other => {
            return Err(not_applicable(format!(
                "top operator is {}, not the canonical Project or Join",
                other.op_name()
            )))
        }
    };
    let Plan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual: None,
    } = join
    else {
        return Err(not_applicable("no inner equi-join in the pattern".into()));
    };
    let Plan::GPivot {
        input: left_in,
        spec: s1,
    } = left.as_ref()
    else {
        return Err(not_applicable("left join side is not a GPivot".into()));
    };
    let Plan::Project {
        input: right_mid,
        items: rename_items,
    } = right.as_ref()
    else {
        return Err(not_applicable(
            "right join side is not a rename Project".into(),
        ));
    };
    let Plan::GPivot {
        input: right_in,
        spec: s2,
    } = right_mid.as_ref()
    else {
        return Err(not_applicable(
            "right join side is not a renamed GPivot".into(),
        ));
    };

    // The two pivot inputs must be projections of the same base plan.
    let base = match (left_in.as_ref(), right_in.as_ref()) {
        (
            Plan::Project {
                input: b1,
                items: i1,
            },
            Plan::Project {
                input: b2,
                items: i2,
            },
        ) if b1 == b2 => {
            // Both must be pure column projections.
            let pure = |items: &[(Expr, String)]| {
                items
                    .iter()
                    .all(|(e, n)| matches!(e, Expr::Col(c) if c == n))
            };
            if !pure(i1) || !pure(i2) {
                return Err(not_applicable(
                    "pivot inputs are not pure projections".into(),
                ));
            }
            b1.as_ref().clone()
        }
        (a, b) if a == b => left_in.as_ref().clone(),
        _ => {
            return Err(not_applicable(
                "the two pivots do not read the same input".into(),
            ))
        }
    };

    // Join must be on the K columns against their renamed twins.
    for (l, r) in on {
        if r != &format!("{RIGHT_PREFIX}{l}") {
            return Err(not_applicable(format!(
                "join pair ({l}, {r}) is not a K-to-renamed-K pair"
            )));
        }
    }
    // The rename project must be exactly renamed-K + pivot-2 cells.
    let cells2 = s2.output_col_names();
    for (e, n) in rename_items {
        let ok = match e {
            Expr::Col(c) if n.starts_with(RIGHT_PREFIX) => on.iter().any(|(l, r)| r == n && l == c),
            Expr::Col(c) => c == n && cells2.contains(n),
            _ => false,
        };
        if !ok {
            return Err(not_applicable(format!(
                "unexpected rename item `{n}` on the right side"
            )));
        }
    }

    let combined = combine_multicolumn_specs(s1, s2)?;

    // Project the base down to K ∪ by ∪ on, matching Eq. 5's right side; K
    // columns are the join's left columns.
    let k_cols: Vec<String> = on.iter().map(|(l, _)| l.clone()).collect();
    let mut proj: Vec<String> = k_cols.clone();
    proj.extend(combined.by.iter().cloned());
    proj.extend(combined.on.iter().cloned());
    let pivot = base
        .project(proj.iter().map(|c| (Expr::col(c), c.clone())).collect())
        .gpivot(combined);

    match top_items {
        // Restore the original output order with the existing top projection
        // (its names all exist in the combined pivot's output).
        Some(items) => Ok(pivot.project(items.clone())),
        // Bare-join match: reproduce the join's output schema, duplicating
        // the left keys under their renamed right-side names (equal by the
        // join condition).
        None => {
            let mut items: Vec<(Expr, String)> =
                k_cols.iter().map(|k| (Expr::col(k), k.clone())).collect();
            for c in s1.output_col_names() {
                items.push((Expr::col(&c), c.clone()));
            }
            for (l, r) in on {
                items.push((Expr::col(l), r.clone()));
            }
            for c in s2.output_col_names() {
                items.push((Expr::col(&c), c.clone()));
            }
            Ok(pivot.project(items))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_exec::Executor;
    use gpivot_storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::sync::Arc;

    /// The Figure 2 lower half: payment rows pivoted by payment type over
    /// two measures (here Price and Fee).
    fn catalog() -> Catalog {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Payment", DataType::Str),
                    ("Price", DataType::Int),
                    ("Fee", DataType::Int),
                ],
                &["ID", "Payment"],
            )
            .unwrap(),
        );
        let t = Table::from_rows(
            schema,
            vec![
                row![1, "Credit", 180, 2],
                row![1, "ByAir", 20, 5],
                row![2, "Credit", 300, 3],
                row![3, "ByAir", 50, 1],
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("payment", t).unwrap();
        c
    }

    fn groups() -> Vec<Vec<Value>> {
        vec![vec![Value::str("Credit")], vec![Value::str("ByAir")]]
    }

    #[test]
    fn spec_combination_concatenates_measures() {
        let s1 = PivotSpec::new(vec!["Payment"], vec!["Price"], groups());
        let s2 = PivotSpec::new(vec!["Payment"], vec!["Fee"], groups());
        let c = combine_multicolumn_specs(&s1, &s2).unwrap();
        assert_eq!(c.on, vec!["Price", "Fee"]);
        assert_eq!(
            c.output_col_names(),
            vec!["Credit**Price", "Credit**Fee", "ByAir**Price", "ByAir**Fee"]
        );
    }

    #[test]
    fn spec_combination_rejects_mismatched_dims() {
        let s1 = PivotSpec::new(vec!["Payment"], vec!["Price"], groups());
        let s2 = PivotSpec::new(vec!["Other"], vec!["Fee"], groups());
        assert!(combine_multicolumn_specs(&s1, &s2).is_err());
    }

    #[test]
    fn spec_combination_rejects_overlapping_measures() {
        let s1 = PivotSpec::new(vec!["Payment"], vec!["Price"], groups());
        assert!(combine_multicolumn_specs(&s1, &s1).is_err());
    }

    #[test]
    fn joined_form_equals_combined_form() {
        let c = catalog();
        let joined = multicolumn_join_plan(
            Plan::scan("payment"),
            &["ID"],
            &["Payment"],
            groups(),
            &["Price"],
            &["Fee"],
        );
        assert_eq!(joined.pivot_count(), 2);
        let combined = try_multicolumn(&joined).unwrap();
        assert_eq!(combined.pivot_count(), 1);
        let a = Executor::new().run(&joined, &c).unwrap();
        let b = Executor::new().run(&combined, &c).unwrap();
        assert_eq!(a.schema().column_names(), b.schema().column_names());
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn rule_rejects_plain_plans() {
        assert!(try_multicolumn(&Plan::scan("payment")).is_err());
        let p = Plan::scan("payment").project_cols(&["ID"]);
        assert!(try_multicolumn(&p).is_err());
    }
}
