//! Combination and split rules for GPIVOT (§4.2, §4.3 of the paper).
//!
//! * [`multicolumn`] — Eq. 5: two pivots of the same input over different
//!   measure sets, natural-joined on `K`, merge into one GPIVOT that pivots
//!   all measures at once.
//! * [`composition`] — Eq. 6: two *stacked* pivots where the outer pivot
//!   consumes all pivoted output columns of the inner merge into one GPIVOT
//!   over the concatenated dimension lists.
//! * [`can_combine`] — the §4.2.3 completeness analysis deciding whether two
//!   adjacent GPIVOTs are combinable, and if not, which of the Figure 7
//!   obstruction cases applies. The analysis itself lives in
//!   `gpivot_algebra::combinability` (it is a pure [`PivotSpec`] property
//!   shared with the static analyzer); re-exported here for compatibility.
//! * [`split`] — §4.3: the reverse rewrites, including the local/global
//!   parallel-processing split.
//!
//! [`PivotSpec`]: gpivot_algebra::PivotSpec

pub mod composition;
pub mod multicolumn;
pub mod split;

pub use composition::{compose_specs, try_compose};
pub use gpivot_algebra::combinability::{can_combine, CombineVerdict};
pub use multicolumn::{combine_multicolumn_specs, multicolumn_join_plan, try_multicolumn};
pub use split::{
    merge_partial_pivots, parallel_gpivot, split_composition, split_multicolumn, PartitionedPivot,
};

/// Try to combine two adjacent GPIVOT plan nodes (outer directly over
/// inner); returns the rewritten plan on success. Dispatches to the
/// composition rule; the multicolumn rule has its own join-shaped pattern
/// (see [`try_multicolumn`]).
pub fn combine_adjacent(plan: &gpivot_algebra::Plan) -> crate::error::Result<gpivot_algebra::Plan> {
    composition::try_compose(plan)
}
