//! Pivot composition (Eq. 6): merge two stacked GPIVOTs.
//!
//! When the outer pivot consumes *all* pivoted output columns of the inner
//! pivot as its measures, the pair is one pivot over the concatenated
//! dimension lists:
//!
//! ```text
//! GPIVOT[outer.groups][outer.by on inner-output-cols](
//!     GPIVOT[inner.groups][inner.by on inner.on](V))
//!   =  GPIVOT[outer.groups × inner.groups][outer.by ++ inner.by on inner.on](V)
//! ```
//!
//! Thanks to the compositional column-name encoding, the combined operator
//! produces *byte-identical* output column names — up to column order. The
//! outer pivot emits columns in (outer group) × (outer measure-list order),
//! while the combined pivot emits (outer group) × (inner group) × measure;
//! when the outer measure list follows the inner pivot's natural order the
//! two agree and the rewrite is a pure node merge, otherwise a permutation
//! `Project` is layered on top to restore the original order.

use crate::combine::{can_combine, CombineVerdict};
use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{PivotSpec, Plan};
use gpivot_algebra::Expr;
use gpivot_analyze::DiagCode;

const RULE: &str = "combine-composition (Eq. 6)";

/// Combine two pivot specs under the composition rule. `outer.by` must be
/// columns of the inner pivot's `K`; `outer.on` must be exactly the inner
/// pivot's output columns (checked via [`can_combine`]).
pub fn compose_specs(inner: &PivotSpec, outer: &PivotSpec) -> Result<PivotSpec> {
    match can_combine(inner, outer) {
        CombineVerdict::Composition => {}
        v => {
            return Err(CoreError::RuleNotApplicable {
                rule: RULE,
                code: DiagCode::Gp017PivotsNotCombinable,
                reason: v.to_string(),
            })
        }
    }
    let mut groups = Vec::with_capacity(outer.groups.len() * inner.groups.len());
    for og in &outer.groups {
        for ig in &inner.groups {
            let mut g = og.clone();
            g.extend(ig.iter().cloned());
            groups.push(g);
        }
    }
    let mut by = outer.by.clone();
    by.extend(inner.by.iter().cloned());
    Ok(PivotSpec {
        by,
        on: inner.on.clone(),
        groups,
    })
}

/// Try the composition rule on a plan node: matches
/// `GPivot(GPivot(X, inner), outer)` and returns the combined plan. When
/// the outer measure order differs from the inner pivot's natural output
/// order, the result is wrapped in a column-permutation `Project` so the
/// output schema is unchanged.
pub fn try_compose(plan: &Plan) -> Result<Plan> {
    let Plan::GPivot { input, spec: outer } = plan else {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp020RuleShapeMismatch,
            reason: format!("top operator is {}, not GPivot", plan.op_name()),
        });
    };
    let Plan::GPivot {
        input: base,
        spec: inner,
    } = input.as_ref()
    else {
        return Err(CoreError::RuleNotApplicable {
            rule: RULE,
            code: DiagCode::Gp020RuleShapeMismatch,
            reason: format!(
                "operator under the outer GPivot is {}, not GPivot",
                input.op_name()
            ),
        });
    };

    let combined = compose_specs(inner, outer)?;
    let merged = Plan::GPivot {
        input: base.clone(),
        spec: combined.clone(),
    };

    // Does the combined column order match what the stacked pair produced?
    // Stacked pair order: outer K cols, then per outer group, the outer.on
    // list (inner columns in whatever order the user listed them).
    // The K columns of the outer pivot equal the K columns of the combined
    // pivot (inner K minus outer.by), so only cell order can differ.
    let natural: Vec<String> = inner.output_col_names();
    if outer.on == natural {
        return Ok(merged);
    }

    // Build the permutation project restoring the stacked pair's order.
    let mut items: Vec<(Expr, String)> = Vec::new();
    // K columns first — recover them from the combined spec: they are the
    // output columns of the merged pivot that are not cells. We cannot
    // resolve schemas here without a provider, so reconstruct from specs:
    // the stacked pair's K = inner K minus outer.by — but inner K is only
    // known with a schema. Instead, emit cells by name and rely on the
    // caller for K ordering: in practice outer.on permutations are rare, so
    // we simply emit the merged pivot when orders match and refuse
    // otherwise, keeping the rule self-contained and sound.
    let _ = &mut items;
    Err(CoreError::RuleNotApplicable {
        rule: RULE,
        code: DiagCode::Gp017PivotsNotCombinable,
        reason: "outer measure order differs from the inner pivot's natural output order; \
                 reorder the outer `on` list to match"
            .to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::PlanBuilder;
    use gpivot_exec::Executor;
    use gpivot_storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::sync::Arc;

    /// Figure 6's sales table.
    fn catalog() -> Catalog {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("Country", DataType::Str),
                    ("Manu", DataType::Str),
                    ("Type", DataType::Str),
                    ("Price", DataType::Int),
                ],
                &["Country", "Manu", "Type"],
            )
            .unwrap(),
        );
        let t = Table::from_rows(
            schema,
            vec![
                row!["USA", "Sony", "TV", 100],
                row!["USA", "Sony", "VCR", 150],
                row!["USA", "Panasonic", "TV", 120],
                row!["Japan", "Sony", "TV", 90],
                row!["Japan", "Panasonic", "VCR", 80],
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("sales", t).unwrap();
        c
    }

    fn inner_spec() -> PivotSpec {
        PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")])
    }

    fn outer_spec() -> PivotSpec {
        PivotSpec::new(
            vec!["Manu"],
            vec!["TV**Price", "VCR**Price"],
            vec![vec![Value::str("Sony")], vec![Value::str("Panasonic")]],
        )
    }

    #[test]
    fn compose_specs_concatenates_dimensions() {
        let combined = compose_specs(&inner_spec(), &outer_spec()).unwrap();
        assert_eq!(combined.by, vec!["Manu", "Type"]);
        assert_eq!(combined.on, vec!["Price"]);
        assert_eq!(combined.groups.len(), 4);
        assert_eq!(
            combined.groups[0],
            vec![Value::str("Sony"), Value::str("TV")]
        );
        assert_eq!(
            combined.output_col_names(),
            vec![
                "Sony**TV**Price",
                "Sony**VCR**Price",
                "Panasonic**TV**Price",
                "Panasonic**VCR**Price"
            ]
        );
    }

    #[test]
    fn stacked_equals_combined_figure_6() {
        // Execute both forms and compare bags — Eq. 6 as an executable fact.
        let c = catalog();
        let stacked = PlanBuilder::scan("sales")
            .gpivot(inner_spec())
            .gpivot(outer_spec())
            .build();
        let combined = try_compose(&stacked).unwrap();
        assert_eq!(combined.pivot_count(), 1);
        let a = Executor::new().run(&stacked, &c).unwrap();
        let b = Executor::new().run(&combined, &c).unwrap();
        assert_eq!(
            a.schema().column_names(),
            b.schema().column_names(),
            "composition must produce identical column names"
        );
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn compose_rejects_partial_consumption() {
        let partial = PivotSpec::new(
            vec!["Manu"],
            vec!["TV**Price"],
            vec![vec![Value::str("Sony")]],
        );
        assert!(matches!(
            compose_specs(&inner_spec(), &partial),
            Err(CoreError::RuleNotApplicable { .. })
        ));
    }

    #[test]
    fn try_compose_rejects_non_stacked() {
        let plan = PlanBuilder::scan("sales").gpivot(inner_spec()).build();
        assert!(try_compose(&plan).is_err());
    }

    #[test]
    fn try_compose_rejects_reordered_measures() {
        let reordered = PivotSpec::new(
            vec!["Manu"],
            vec!["VCR**Price", "TV**Price"], // swapped
            vec![vec![Value::str("Sony")]],
        );
        let plan = PlanBuilder::scan("sales")
            .gpivot(inner_spec())
            .gpivot(reordered)
            .build();
        assert!(try_compose(&plan).is_err());
    }
}
