//! # gpivot-core
//!
//! The paper's primary contribution, implemented as three layers:
//!
//! 1. **Combination & split rules** ([`combine`]) — merging adjacent GPIVOT
//!    operators (multicolumn pivot, Eq. 5; pivot composition, Eq. 6), the
//!    §4.2.3 combinability analysis, and the §4.3 split rules.
//! 2. **Rewriting rules** ([`rewrite`]) — pullup and pushdown of GPIVOT and
//!    GUNPIVOT through SELECT / PROJECT / JOIN / GROUPBY (Eq. 7–18), plus
//!    the normalization driver that pulls every pivot to the top of a view
//!    tree (Fig. 4) and a small rule-based query optimizer demonstrating the
//!    rules' dual use (§1: "dual purpose serving both view maintenance and
//!    query optimization").
//! 3. **Incremental view maintenance** ([`maintain`]) — the propagate/apply
//!    framework (§3, §6): per-operator delta propagation, GPIVOT/GUNPIVOT
//!    insert-delete propagation (Fig. 22), the GPIVOT update (MERGE) rules
//!    (Fig. 23), the combined GPIVOT-over-GROUPBY rules (Fig. 27), the
//!    combined SELECT-over-GPIVOT rules (Fig. 29), strategy selection, and
//!    a [`maintain::ViewManager`] tying it all together.
//!
//! An extension beyond the paper's evaluated scope lives in [`dynamic`]:
//! data-driven (high-order) pivot specs with recompile-on-schema-change
//! maintenance — the §9 future-work item.

pub mod combine;
pub mod cost;
pub mod dynamic;
pub mod error;
pub mod maintain;
pub mod rewrite;

pub use combine::{can_combine, combine_adjacent, CombineVerdict};
pub use error::{CoreError, ErrorClass, Result};
pub use gpivot_analyze::{analyze, AnalysisReport, DiagCode, Diagnostic, Severity};
pub use maintain::{
    MaintenanceOutcome, MaintenancePlan, MaterializedView, SourceDeltas, Strategy, ViewManager,
    ViewOptions,
};
pub use rewrite::{normalize_view, NormalizedView, TopShape};
