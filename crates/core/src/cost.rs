//! A coarse cost model for maintenance plans.
//!
//! §3 of the paper: "the result of this compile phase is a maintenance
//! query plan. Thus it is optimizable by a query optimizer … Such decision
//! can be made by a cost-based optimizer." This module supplies that hook:
//! cardinality estimation over plan trees ([`estimate_rows`]), per-strategy
//! refresh-cost estimation ([`estimate_refresh_cost`]) in abstract
//! row-operation units, and [`cheapest_strategy`], which compares every
//! strategy applicable to a view shape at an expected delta size.
//!
//! The model is deliberately simple — linear row-operation counts with
//! standard selectivity defaults — but it reproduces the evaluation's
//! qualitative behaviour: update-rule strategies win at small deltas and
//! every incremental strategy converges toward (and eventually crosses)
//! recomputation as the delta fraction grows.

use crate::rewrite::{normalize_view, TopShape};
use gpivot_algebra::plan::Plan;
use gpivot_algebra::SchemaProvider;
use gpivot_storage::Catalog;
use std::collections::BTreeMap;

/// Per-table row counts used for estimation.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    rows: BTreeMap<String, f64>,
}

impl CatalogStats {
    /// Collect row counts from a catalog.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut rows = BTreeMap::new();
        for name in catalog.table_names() {
            if let Ok(t) = catalog.table(name) {
                rows.insert(name.to_string(), t.len() as f64);
            }
        }
        CatalogStats { rows }
    }

    /// Set a table's row count explicitly.
    pub fn with_table(mut self, name: impl Into<String>, rows: f64) -> Self {
        self.rows.insert(name.into(), rows);
        self
    }

    /// Row count of a base table (1 if unknown — avoids zero-division).
    pub fn table_rows(&self, name: &str) -> f64 {
        self.rows.get(name).copied().unwrap_or(1.0).max(1.0)
    }
}

/// Default selectivity of a selection predicate.
const SELECTIVITY: f64 = 0.33;
/// Default group-count shrinkage of a GROUP BY.
const GROUP_SHRINK: f64 = 0.25;

/// Estimate the output cardinality of a plan.
pub fn estimate_rows(plan: &Plan, stats: &CatalogStats) -> f64 {
    match plan {
        Plan::Scan { table } => stats.table_rows(table),
        Plan::Select { input, .. } => estimate_rows(input, stats) * SELECTIVITY,
        Plan::Project { input, .. } => estimate_rows(input, stats),
        Plan::Join { left, right, .. } => {
            // Key/FK joins dominate this workload: output ≈ the larger side.
            let l = estimate_rows(left, stats);
            let r = estimate_rows(right, stats);
            l.max(r)
        }
        Plan::GroupBy { input, .. } => (estimate_rows(input, stats) * GROUP_SHRINK).max(1.0),
        Plan::Union { left, right } => estimate_rows(left, stats) + estimate_rows(right, stats),
        Plan::Diff { left, .. } => estimate_rows(left, stats),
        Plan::GPivot { input, spec } => {
            (estimate_rows(input, stats) / spec.groups.len().max(1) as f64).max(1.0)
        }
        Plan::GUnpivot { input, spec } => {
            estimate_rows(input, stats) * spec.groups.len().max(1) as f64
        }
    }
}

/// Estimate the cost (row operations) of evaluating a plan from scratch.
pub fn estimate_eval_cost(plan: &Plan, stats: &CatalogStats) -> f64 {
    let own = match plan {
        Plan::Scan { table } => stats.table_rows(table),
        // Each operator touches its input(s) once; joins build + probe.
        Plan::Join { left, right, .. } => estimate_rows(left, stats) + estimate_rows(right, stats),
        other => other
            .children()
            .iter()
            .map(|c| estimate_rows(c, stats))
            .sum(),
    };
    own + plan
        .children()
        .iter()
        .map(|c| estimate_eval_cost(c, stats))
        .sum::<f64>()
}

/// Cost of propagating a delta of `delta_rows` through a relational core:
/// each join term probes the partner side once per maintenance run, plus
/// per-delta-row hash work.
fn propagate_cost(core: &Plan, stats: &CatalogStats, delta_rows: f64) -> f64 {
    match core {
        Plan::Scan { .. } => delta_rows,
        Plan::Join { left, right, .. } => {
            // One side carries the delta (we cannot know which; assume the
            // larger subtree is the delta'd fact side, which holds for the
            // paper's star joins): delta joins against the partner's
            // pre-state, which must be produced once.
            let partner = estimate_rows(right, stats).min(estimate_rows(left, stats));
            propagate_cost(left, stats, delta_rows)
                + propagate_cost(right, stats, 0.0).min(partner)
                + partner
                + delta_rows
        }
        other => {
            delta_rows
                + other
                    .children()
                    .iter()
                    .map(|c| propagate_cost(c, stats, delta_rows))
                    .sum::<f64>()
        }
    }
}

/// Estimated refresh cost of one strategy at an expected delta size, in
/// abstract row operations. Returns `None` when the strategy does not apply
/// to this view shape.
pub fn estimate_refresh_cost<P: SchemaProvider>(
    view: &Plan,
    strategy: crate::maintain::Strategy,
    stats: &CatalogStats,
    provider: &P,
    delta_rows: f64,
) -> Option<f64> {
    use crate::maintain::Strategy::*;
    let nv = normalize_view(view, provider).ok()?;
    let view_rows = estimate_rows(view, stats);
    match strategy {
        Recompute => Some(estimate_eval_cost(view, stats) + view_rows),
        InsertDelete => {
            // Propagation through the original tree; an intermediate pivot
            // or group-by re-derives affected portions from pre AND post
            // states (two extra passes over its input).
            let mut cost = propagate_cost(view, stats, delta_rows);
            fn extra_passes(plan: &Plan, stats: &CatalogStats) -> f64 {
                let own = match plan {
                    Plan::GPivot { input, .. } | Plan::GroupBy { input, .. } => {
                        2.0 * estimate_rows(input, stats)
                    }
                    _ => 0.0,
                };
                own + plan
                    .children()
                    .iter()
                    .map(|c| extra_passes(c, stats))
                    .sum::<f64>()
            }
            cost += extra_passes(view, stats);
            // Apply: delete + re-insert every affected view row.
            cost += 2.0 * delta_rows;
            Some(cost)
        }
        PivotUpdate => match &nv.shape {
            TopShape::PivotTop { .. } => {
                let Plan::GPivot { input: core, .. } = &nv.plan else {
                    return None;
                };
                Some(propagate_cost(core, stats, delta_rows) + delta_rows)
            }
            _ => None,
        },
        SelectPivotUpdate => match &nv.shape {
            TopShape::SelectOverPivot { .. } => {
                let Plan::Select { input, .. } = &nv.plan else {
                    return None;
                };
                let Plan::GPivot { input: core, .. } = input.as_ref() else {
                    return None;
                };
                // Propagation + in-place merge + candidate-key recompute
                // (one restricted post-state pass over the delta'd table).
                let fact = core
                    .base_tables()
                    .iter()
                    .map(|t| stats.table_rows(t))
                    .fold(0.0_f64, f64::max);
                Some(propagate_cost(core, stats, delta_rows) + delta_rows + fact * 0.5)
            }
            _ => None,
        },
        SelectPushdownUpdate => match &nv.shape {
            TopShape::SelectOverPivot { .. } => {
                // The Eq. 7 self-join core: several extra passes over the
                // delta'd fact table per refresh.
                let fact = nv
                    .plan
                    .base_tables()
                    .iter()
                    .map(|t| stats.table_rows(t))
                    .fold(0.0_f64, f64::max);
                Some(propagate_cost(&nv.plan, stats, delta_rows) + 4.0 * fact + delta_rows)
            }
            _ => None,
        },
        GroupByInsDel => match &nv.shape {
            TopShape::PivotOverGroupBy { .. } => {
                let Plan::GPivot { input: gb, .. } = &nv.plan else {
                    return None;
                };
                let Plan::GroupBy { input: core, .. } = gb.as_ref() else {
                    return None;
                };
                // Affected-group recomputation = pre + post passes over the
                // group-by input.
                Some(
                    propagate_cost(core, stats, delta_rows)
                        + 2.0 * estimate_rows(core, stats)
                        + 2.0 * delta_rows,
                )
            }
            _ => None,
        },
        GroupPivotUpdate => match &nv.shape {
            TopShape::PivotOverGroupBy { .. } => {
                let Plan::GPivot { input: gb, .. } = &nv.plan else {
                    return None;
                };
                let Plan::GroupBy { input: core, .. } = gb.as_ref() else {
                    return None;
                };
                Some(propagate_cost(core, stats, delta_rows) + delta_rows)
            }
            _ => None,
        },
    }
}

/// The cheapest applicable strategy for a view at an expected delta size.
pub fn cheapest_strategy<P: SchemaProvider>(
    view: &Plan,
    stats: &CatalogStats,
    provider: &P,
    delta_rows: f64,
) -> Option<(crate::maintain::Strategy, f64)> {
    crate::maintain::Strategy::ALL
        .iter()
        .filter_map(|&s| {
            estimate_refresh_cost(view, s, stats, provider, delta_rows).map(|c| (s, c))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::Strategy;
    use gpivot_algebra::{AggSpec, Expr, PivotSpec};
    use gpivot_storage::{DataType, Schema, SchemaRef, Value};
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "facts".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("attr", DataType::Str),
                        ("val", DataType::Int),
                    ],
                    &["id", "attr"],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "dims".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("d_id", DataType::Int), ("grp", DataType::Str)],
                    &["d_id"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn stats() -> CatalogStats {
        CatalogStats::default()
            .with_table("facts", 100_000.0)
            .with_table("dims", 1_000.0)
    }

    fn pivot_view() -> Plan {
        Plan::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .join(Plan::scan("dims"), vec![("id", "d_id")])
    }

    #[test]
    fn cardinality_estimates_are_sane() {
        let s = stats();
        assert_eq!(estimate_rows(&Plan::scan("facts"), &s), 100_000.0);
        let pivoted = Plan::scan("facts").gpivot(PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ));
        assert_eq!(estimate_rows(&pivoted, &s), 50_000.0);
        let grouped = Plan::scan("facts").group_by(&["attr"], vec![AggSpec::count_star("n")]);
        assert!(estimate_rows(&grouped, &s) < 100_000.0);
    }

    #[test]
    fn small_deltas_prefer_update_rules() {
        let (best, _) = cheapest_strategy(&pivot_view(), &stats(), &provider(), 100.0).unwrap();
        assert_eq!(best, Strategy::PivotUpdate);
    }

    #[test]
    fn update_rules_beat_insert_delete_at_every_size() {
        let p = provider();
        let s = stats();
        for delta in [10.0, 1_000.0, 50_000.0] {
            let upd =
                estimate_refresh_cost(&pivot_view(), Strategy::PivotUpdate, &s, &p, delta).unwrap();
            let insdel =
                estimate_refresh_cost(&pivot_view(), Strategy::InsertDelete, &s, &p, delta)
                    .unwrap();
            assert!(upd < insdel, "delta={delta}: {upd} !< {insdel}");
        }
    }

    #[test]
    fn recompute_wins_for_whole_table_deltas() {
        let p = provider();
        let s = stats();
        let big = 1_000_000.0; // delta far larger than the base table
        let upd = estimate_refresh_cost(&pivot_view(), Strategy::PivotUpdate, &s, &p, big).unwrap();
        let rec = estimate_refresh_cost(&pivot_view(), Strategy::Recompute, &s, &p, big).unwrap();
        assert!(rec < upd, "recompute must win eventually: {rec} !< {upd}");
    }

    #[test]
    fn inapplicable_strategies_cost_none() {
        let p = provider();
        let s = stats();
        assert!(
            estimate_refresh_cost(&pivot_view(), Strategy::GroupPivotUpdate, &s, &p, 10.0)
                .is_none()
        );
        assert!(
            estimate_refresh_cost(&pivot_view(), Strategy::SelectPivotUpdate, &s, &p, 10.0)
                .is_none()
        );
    }

    #[test]
    fn select_over_pivot_prefers_combined_rules() {
        let view = Plan::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .select(Expr::col("a**val").gt(Expr::lit(10)));
        let p = provider();
        let s = stats();
        let combined =
            estimate_refresh_cost(&view, Strategy::SelectPivotUpdate, &s, &p, 100.0).unwrap();
        let pushdown =
            estimate_refresh_cost(&view, Strategy::SelectPushdownUpdate, &s, &p, 100.0).unwrap();
        assert!(combined < pushdown);
    }

    #[test]
    fn crossover_exists_as_delta_grows() {
        // The qualitative claim every figure shows: incremental converges
        // toward recomputation as the delta grows.
        let p = provider();
        let s = stats();
        let view = pivot_view();
        let gap = |delta: f64| {
            let upd = estimate_refresh_cost(&view, Strategy::PivotUpdate, &s, &p, delta).unwrap();
            let rec = estimate_refresh_cost(&view, Strategy::Recompute, &s, &p, delta).unwrap();
            rec / upd
        };
        assert!(gap(100.0) > gap(10_000.0));
        assert!(gap(10_000.0) > gap(100_000.0));
    }
}
