//! Poison-recovering lock acquisition.
//!
//! `std` mutexes poison when a holder panics, and every later `lock()`
//! returns `Err` forever — one panicking worker would wedge the whole
//! service. Every shared structure in this crate is a plain counter map, a
//! queue of owned deltas, or a registry of owned views; all of them are
//! valid at every instruction boundary (no multi-step invariants repaired
//! after the fact), so recovering a poisoned guard with
//! [`PoisonError::into_inner`] is always sound here. These helpers are the
//! only way locks are acquired in this crate — `expect`/`unwrap` on lock
//! results is denied crate-wide (see `lib.rs`).
//!
//! Every recovery increments a process-wide counter (surfaced as
//! `gpivot_lock_poisoned_total` in the metrics snapshot) and emits a
//! `lock.poisoned` trace event, so silent panics in lock holders are
//! visible in monitoring rather than papered over.
//!
//! Under `--features shuttle` these helpers additionally route through the
//! cooperative token scheduler in `compat/shuttle` when a model-checking
//! run is active: acquisition becomes a `try_lock` + `blocked_yield` loop,
//! which lets the scheduler deterministically serialize thread steps and
//! detect deadlocks (a full round of blocked threads with no progress).
//! Outside an active scheduler run — including ordinary tests compiled with
//! the feature — the `std` fast path is taken unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// Process-wide count of poisoned-guard recoveries (monotonic; never reset).
static POISONED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// How many times a lock helper has recovered a poisoned guard since
/// process start. Exported as `gpivot_lock_poisoned_total`.
pub(crate) fn poisoned_total() -> u64 {
    POISONED_TOTAL.load(Ordering::Relaxed)
}

/// Recover a poisoned guard, counting the recovery and emitting a
/// `lock.poisoned` trace event (a panic in a lock holder is worth an
/// alert even when recovery is sound).
fn recover<G>(e: PoisonError<G>) -> G {
    POISONED_TOTAL.fetch_add(1, Ordering::Relaxed);
    tracing::event("lock.poisoned", "recovered guard after holder panic");
    e.into_inner()
}

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    #[cfg(feature = "shuttle")]
    if shuttle::sched::active() {
        // Every acquisition is a scheduler choice point: without this,
        // the token holder would run to completion (it only yields on a
        // *failed* try-lock) and every seed would collapse to the same
        // sequential schedule.
        shuttle::sched::yield_now();
        loop {
            match m.try_lock() {
                Ok(g) => {
                    shuttle::sched::progress();
                    return g;
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    shuttle::sched::progress();
                    return recover(e);
                }
                Err(std::sync::TryLockError::WouldBlock) => shuttle::sched::blocked_yield(),
            }
        }
    }
    m.lock().unwrap_or_else(recover)
}

/// Read-lock an `RwLock`, recovering from poison.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    #[cfg(feature = "shuttle")]
    if shuttle::sched::active() {
        shuttle::sched::yield_now(); // choice point; see `lock`
        loop {
            match l.try_read() {
                Ok(g) => {
                    shuttle::sched::progress();
                    return g;
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    shuttle::sched::progress();
                    return recover(e);
                }
                Err(std::sync::TryLockError::WouldBlock) => shuttle::sched::blocked_yield(),
            }
        }
    }
    l.read().unwrap_or_else(recover)
}

/// Write-lock an `RwLock`, recovering from poison.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    #[cfg(feature = "shuttle")]
    if shuttle::sched::active() {
        shuttle::sched::yield_now(); // choice point; see `lock`
        loop {
            match l.try_write() {
                Ok(g) => {
                    shuttle::sched::progress();
                    return g;
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    shuttle::sched::progress();
                    return recover(e);
                }
                Err(std::sync::TryLockError::WouldBlock) => shuttle::sched::blocked_yield(),
            }
        }
    }
    l.write().unwrap_or_else(recover)
}

/// Wait on a condvar, recovering the re-acquired guard from poison.
///
/// `m` must be the mutex `guard` was taken from (the `std` condvar API
/// does not need it, but the scheduler shim re-locks through it after a
/// cooperative release). Callers already loop on their predicate, so the
/// shim's release → yield → re-lock is indistinguishable from a spurious
/// wakeup.
pub(crate) fn wait<'a, T>(
    cv: &Condvar,
    m: &'a Mutex<T>,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    #[cfg(feature = "shuttle")]
    if shuttle::sched::active() {
        drop(guard);
        shuttle::sched::yield_now();
        return lock(m);
    }
    let _ = m;
    cv.wait(guard).unwrap_or_else(recover)
}

/// Wait on a condvar with a timeout, recovering from poison. As with
/// [`wait`], `m` is the guarded mutex; the scheduler shim reports a
/// timed-out result (callers re-check their deadline either way).
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    m: &'a Mutex<T>,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    #[cfg(feature = "shuttle")]
    if shuttle::sched::active() {
        // A zero-length real wait is the only way to mint a
        // `WaitTimeoutResult`; no other runnable thread holds the token,
        // so the re-acquire inside it cannot block.
        let (g, r) = cv
            .wait_timeout(guard, Duration::ZERO)
            .unwrap_or_else(recover);
        drop(g);
        shuttle::sched::yield_now();
        return (lock(m), r);
    }
    let _ = m;
    cv.wait_timeout(guard, dur).unwrap_or_else(recover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_recovers_after_holder_panics() {
        let before = poisoned_total();
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 42);
        assert!(
            poisoned_total() > before,
            "recovery must bump gpivot_lock_poisoned_total"
        );
    }

    #[test]
    fn rwlock_recovers_after_writer_panics() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(read(&l).len(), 3);
        write(&l).push(4);
        assert_eq!(read(&l).len(), 4);
    }
}
