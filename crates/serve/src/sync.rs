//! Poison-recovering lock acquisition.
//!
//! `std` mutexes poison when a holder panics, and every later `lock()`
//! returns `Err` forever — one panicking worker would wedge the whole
//! service. Every shared structure in this crate is a plain counter map, a
//! queue of owned deltas, or a registry of owned views; all of them are
//! valid at every instruction boundary (no multi-step invariants repaired
//! after the fact), so recovering a poisoned guard with
//! [`PoisonError::into_inner`] is always sound here. These helpers are the
//! only way locks are acquired in this crate — `expect`/`unwrap` on lock
//! results is denied crate-wide (see `lib.rs`).

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock an `RwLock`, recovering from poison.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock an `RwLock`, recovering from poison.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on a condvar, recovering the re-acquired guard from poison.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Wait on a condvar with a timeout, recovering from poison.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 42);
    }

    #[test]
    fn rwlock_recovers_after_writer_panics() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(read(&l).len(), 3);
        write(&l).push(4);
        assert_eq!(read(&l).len(), 4);
    }
}
