//! Service observability: per-view and per-epoch counters, exported as a
//! cloneable [`MetricsSnapshot`] plus a human-readable report.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// The fault-tolerance state of one registered view — the retry/quarantine
/// state machine (see DESIGN.md §"Fault tolerance"):
///
/// ```text
/// Healthy --fail--> Degraded(1) --fail--> ... --fail--> Quarantined
///    ^                  |  (success in a committed epoch)      |
///    +------------------+               retry_view / register  |
///    +----------------------------------------------------------+
/// ```
///
/// A *fail* is one epoch in which the view exhausted its retry budget.
/// Quarantined views are excluded from refresh scheduling (they stop
/// blocking epochs) and their tables go stale until re-admission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ViewHealth {
    /// Refreshing normally.
    #[default]
    Healthy,
    /// Failed its last `consecutive_failures` epochs (retries exhausted)
    /// but is still scheduled.
    Degraded { consecutive_failures: u32 },
    /// Excluded from refresh scheduling after too many consecutive
    /// failures. Re-admit with `ViewService::retry_view` (recomputes the
    /// view from current base state) or by dropping and re-registering.
    Quarantined {
        /// The epoch counter value when quarantine was entered.
        since_epoch: u64,
        /// Rendering of the error that tipped the view over.
        reason: String,
    },
}

impl ViewHealth {
    /// True iff the view is currently quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, ViewHealth::Quarantined { .. })
    }
}

/// Cumulative counters for one registered view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewMetrics {
    /// Epochs in which this view was refreshed (it had a dirty dependency).
    pub refreshes: u64,
    /// Distinct delta rows that reached the view's apply phase.
    pub delta_rows: u64,
    /// Operator-output rows evaluated while propagating to this view
    /// (`ExecTrace::total_rows` summed over pre/post subplan evaluations).
    pub rows_propagated: u64,
    /// Row effects on the materialized table (inserted + updated + deleted).
    pub rows_applied: u64,
    /// Total wall-clock time spent refreshing this view.
    pub refresh_time: Duration,
    /// Epochs in which this view exhausted its retry budget and failed.
    pub failures: u64,
    /// Individual refresh attempts beyond the first, across all epochs
    /// (both attempts that eventually succeeded and ones that did not).
    pub retries: u64,
    /// Current position in the retry/quarantine state machine.
    pub health: ViewHealth,
}

/// A point-in-time copy of the service's counters.
///
/// All `rows_*` counters reconcile by construction: `rows_ingested` counts
/// producer-submitted row changes, `rows_drained_raw` the subset already
/// drained into epochs, and `rows_drained_coalesced` what survived +1/−1
/// cancellation — so `rows_ingested − rows_drained_raw` is exactly what is
/// still pending in the queue.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Completed epochs (successful refreshes that advanced the snapshot).
    pub epochs: u64,
    /// Epochs that failed and were rolled back (batch re-queued).
    pub epochs_failed: u64,
    /// Producer batches accepted by `ingest`.
    pub batches_ingested: u64,
    /// Row changes accepted by `ingest` (pre-coalescing).
    pub rows_ingested: u64,
    /// `ingest` calls that had to block on the backpressure watermark.
    pub ingest_waits: u64,
    /// `try_ingest` / `ingest_timeout` calls rejected with
    /// [`gpivot_core::CoreError::Backpressure`].
    pub ingest_rejects: u64,
    /// Worker panics caught and isolated at the view-task boundary.
    pub panics_isolated: u64,
    /// Row changes drained into epochs, before coalescing.
    pub rows_drained_raw: u64,
    /// Row changes drained into epochs, after +1/−1 cancellation.
    pub rows_drained_coalesced: u64,
    /// Sum of per-view delta rows across all refreshes.
    pub delta_rows: u64,
    /// Sum of per-view propagated rows across all refreshes.
    pub rows_propagated: u64,
    /// Sum of per-view applied rows across all refreshes.
    pub rows_applied: u64,
    /// Total wall-clock time spent inside `refresh_epoch` doing work.
    pub refresh_time: Duration,
    /// Wall-clock time of the most recent non-empty epoch.
    pub last_epoch_time: Duration,
    /// Coalesced row changes currently waiting in the queue.
    pub pending_rows: u64,
    /// Estimated bytes held by the pending queue.
    pub pending_bytes: usize,
    /// Per-view cumulative counters, keyed by view name.
    pub per_view: BTreeMap<String, ViewMetrics>,
}

impl MetricsSnapshot {
    /// Fraction of drained row changes that survived coalescing
    /// (1.0 = nothing cancelled, 0.0 = everything cancelled).
    /// Returns `None` before anything has been drained.
    pub fn coalescing_ratio(&self) -> Option<f64> {
        if self.rows_drained_raw == 0 {
            return None;
        }
        Some(self.rows_drained_coalesced as f64 / self.rows_drained_raw as f64)
    }

    /// Names of views currently quarantined.
    pub fn quarantined_views(&self) -> Vec<&str> {
        self.per_view
            .iter()
            .filter(|(_, v)| v.health.is_quarantined())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Mean wall-clock latency of a completed epoch.
    pub fn mean_epoch_time(&self) -> Option<Duration> {
        if self.epochs == 0 {
            return None;
        }
        Some(self.refresh_time / self.epochs as u32)
    }

    /// Human-readable multi-line report (the `serve_dashboard` example).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "gpivot-serve metrics");
        let _ = writeln!(
            out,
            "  epochs: {} completed, {} failed; last {:?}, mean {:?}",
            self.epochs,
            self.epochs_failed,
            self.last_epoch_time,
            self.mean_epoch_time().unwrap_or_default(),
        );
        let _ = writeln!(
            out,
            "  ingest: {} batches / {} row changes ({} backpressure waits)",
            self.batches_ingested, self.rows_ingested, self.ingest_waits,
        );
        let ratio = self
            .coalescing_ratio()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            out,
            "  coalescing: {} raw -> {} effective rows drained ({} surviving)",
            self.rows_drained_raw, self.rows_drained_coalesced, ratio,
        );
        let _ = writeln!(
            out,
            "  pending: {} rows (~{} bytes)",
            self.pending_rows, self.pending_bytes,
        );
        let _ = writeln!(
            out,
            "  propagate/apply: {} delta rows, {} rows propagated, {} rows applied",
            self.delta_rows, self.rows_propagated, self.rows_applied,
        );
        if self.ingest_rejects > 0 || self.panics_isolated > 0 {
            let _ = writeln!(
                out,
                "  faults: {} ingest rejects, {} panics isolated",
                self.ingest_rejects, self.panics_isolated,
            );
        }
        for (name, v) in &self.per_view {
            let health = match &v.health {
                ViewHealth::Healthy => String::new(),
                ViewHealth::Degraded {
                    consecutive_failures,
                } => format!(" [degraded: {consecutive_failures} consecutive failures]"),
                ViewHealth::Quarantined { since_epoch, .. } => {
                    format!(" [QUARANTINED since epoch {since_epoch}]")
                }
            };
            let _ = writeln!(
                out,
                "  view {name}: {} refreshes ({} failures, {} retries), {} delta rows, \
                 {} propagated, {} applied, {:?} total{health}",
                v.refreshes,
                v.failures,
                v.retries,
                v.delta_rows,
                v.rows_propagated,
                v.rows_applied,
                v.refresh_time,
            );
        }
        out
    }
}

/// What one call to `refresh_epoch` did.
#[derive(Debug, Clone, Default)]
pub struct EpochSummary {
    /// The epoch number now visible to readers.
    pub epoch: u64,
    /// Views actually refreshed (dirty dependency); clean views are skipped.
    pub views_refreshed: usize,
    /// Coalesced row changes in the drained batch.
    pub batch_rows: u64,
    /// Producer batches folded into the drained batch.
    pub batches_drained: u64,
    /// Distinct delta rows reaching apply phases, summed over views.
    pub delta_rows: u64,
    /// Propagation work proxy, summed over views.
    pub rows_propagated: u64,
    /// Row effects on materialized tables, summed over views.
    pub rows_applied: u64,
    /// Quarantined views that would have been refreshed but were skipped.
    pub quarantined_skipped: usize,
    /// Refresh attempts beyond the first, summed over views in this epoch.
    pub retries: u64,
    /// Wall-clock duration of the epoch.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_ratio_handles_empty_and_nonempty() {
        let mut m = MetricsSnapshot::default();
        assert_eq!(m.coalescing_ratio(), None);
        m.rows_drained_raw = 10;
        m.rows_drained_coalesced = 4;
        assert_eq!(m.coalescing_ratio(), Some(0.4));
    }

    #[test]
    fn report_mentions_views() {
        let mut m = MetricsSnapshot::default();
        m.per_view.insert("v1".into(), ViewMetrics::default());
        let r = m.report();
        assert!(r.contains("view v1"));
        assert!(r.contains("epochs"));
    }
}
