//! Service observability: per-view and per-epoch counters, exported as a
//! cloneable [`MetricsSnapshot`] plus a human-readable report.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;
use tracing::Histogram;

/// The fault-tolerance state of one registered view — the retry/quarantine
/// state machine (see DESIGN.md §"Fault tolerance"):
///
/// ```text
/// Healthy --fail--> Degraded(1) --fail--> ... --fail--> Quarantined
///    ^                  |  (success in a committed epoch)      |
///    +------------------+               retry_view / register  |
///    +----------------------------------------------------------+
/// ```
///
/// A *fail* is one epoch in which the view exhausted its retry budget.
/// Quarantined views are excluded from refresh scheduling (they stop
/// blocking epochs) and their tables go stale until re-admission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ViewHealth {
    /// Refreshing normally.
    #[default]
    Healthy,
    /// Failed its last `consecutive_failures` epochs (retries exhausted)
    /// but is still scheduled.
    Degraded { consecutive_failures: u32 },
    /// Excluded from refresh scheduling after too many consecutive
    /// failures. Re-admit with `ViewService::retry_view` (recomputes the
    /// view from current base state) or by dropping and re-registering.
    Quarantined {
        /// The epoch counter value when quarantine was entered.
        since_epoch: u64,
        /// Rendering of the error that tipped the view over.
        reason: String,
    },
}

impl ViewHealth {
    /// True iff the view is currently quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, ViewHealth::Quarantined { .. })
    }
}

/// Cumulative counters for one registered view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewMetrics {
    /// Epochs in which this view was refreshed (it had a dirty dependency).
    pub refreshes: u64,
    /// Distinct delta rows that reached the view's apply phase.
    pub delta_rows: u64,
    /// Operator-output rows evaluated while propagating to this view
    /// (`ExecTrace::total_rows` summed over pre/post subplan evaluations).
    pub rows_propagated: u64,
    /// Row effects on the materialized table (inserted + updated + deleted).
    pub rows_applied: u64,
    /// Total wall-clock time spent refreshing this view.
    pub refresh_time: Duration,
    /// Epochs in which this view exhausted its retry budget and failed.
    pub failures: u64,
    /// Individual refresh attempts beyond the first, across all epochs
    /// (both attempts that eventually succeeded and ones that did not).
    pub retries: u64,
    /// Current position in the retry/quarantine state machine.
    pub health: ViewHealth,
    /// Rendered warnings the static plan lint recorded when the view was
    /// registered (empty when registered clean or with lint skipped).
    pub lint_warnings: Vec<String>,
}

/// A point-in-time copy of the service's counters.
///
/// All `rows_*` counters reconcile by construction: `rows_ingested` counts
/// producer-submitted row changes, `rows_drained_raw` the subset already
/// drained into epochs, and `rows_drained_coalesced` what survived +1/−1
/// cancellation — so `rows_ingested − rows_drained_raw` is exactly what is
/// still pending in the queue.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Completed epochs (successful refreshes that advanced the snapshot).
    pub epochs: u64,
    /// Epochs that failed and were rolled back (batch re-queued).
    pub epochs_failed: u64,
    /// Producer batches accepted by `ingest`.
    pub batches_ingested: u64,
    /// Row changes accepted by `ingest` (pre-coalescing).
    pub rows_ingested: u64,
    /// `ingest` calls that had to block on the backpressure watermark.
    pub ingest_waits: u64,
    /// Non-blocking / bounded-wait `ingest_with` calls rejected with
    /// [`gpivot_core::CoreError::Backpressure`].
    pub ingest_rejects: u64,
    /// Worker panics caught and isolated at the view-task boundary.
    pub panics_isolated: u64,
    /// Poisoned-guard recoveries by the `sync` lock helpers (process-wide:
    /// every shard of a sharded service reports the same counter, so
    /// roll-ups take the max rather than summing).
    pub lock_poisoned: u64,
    /// Row changes drained into epochs, before coalescing.
    pub rows_drained_raw: u64,
    /// Row changes drained into epochs, after +1/−1 cancellation.
    pub rows_drained_coalesced: u64,
    /// Sum of per-view delta rows across all refreshes.
    pub delta_rows: u64,
    /// Sum of per-view propagated rows across all refreshes.
    pub rows_propagated: u64,
    /// Sum of per-view applied rows across all refreshes.
    pub rows_applied: u64,
    /// Total wall-clock time spent inside `refresh_epoch` doing work.
    pub refresh_time: Duration,
    /// Wall-clock time of the most recent non-empty epoch.
    pub last_epoch_time: Duration,
    /// `CREATE MATERIALIZED VIEW` statements registered through the SQL
    /// frontend (`gpivot-sql`).
    pub sql_registrations: u64,
    /// SQL `SELECT`s answered from a materialized view by the view-matching
    /// rewriter.
    pub sql_rewrite_hits: u64,
    /// SQL `SELECT`s that fell back to base-table execution.
    pub sql_rewrite_misses: u64,
    /// WAL records appended (0 unless the service was opened durably).
    pub wal_records: u64,
    /// WAL bytes written, framing included.
    pub wal_bytes: u64,
    /// `fsync` calls issued by the WAL (policy-dependent).
    pub wal_fsyncs: u64,
    /// Checkpoints written (manual + automatic).
    pub checkpoints: u64,
    /// Size in bytes of the most recent checkpoint file.
    pub last_checkpoint_bytes: u64,
    /// Crash recoveries performed to open this service (0 for a fresh
    /// directory or a non-durable service, 1 after `ViewService::open`
    /// found prior state).
    pub recoveries: u64,
    /// WAL records replayed during recovery.
    pub recovery_replayed_records: u64,
    /// Committed epochs re-applied during recovery.
    pub recovery_replayed_epochs: u64,
    /// Torn WAL tails truncated during recovery.
    pub recovery_torn_tails: u64,
    /// Corrupt checkpoint files skipped during recovery (an older valid
    /// checkpoint was used instead).
    pub recovery_corrupt_checkpoints: u64,
    /// Quarantined views re-admitted by replaying missed epochs from the
    /// log (`retry_view` fast path) instead of a full recompute.
    pub view_replays: u64,
    /// Coalesced row changes currently waiting in the queue.
    pub pending_rows: u64,
    /// Estimated bytes held by the pending queue.
    pub pending_bytes: usize,
    /// Per-view cumulative counters, keyed by view name.
    pub per_view: BTreeMap<String, ViewMetrics>,
    /// Wall-clock histograms for compile/maintenance/epoch phases, keyed by
    /// span name (`epoch`, `epoch.propagate`, `maintain.apply`, …). The
    /// `epoch` entry reconciles exactly with the counters above:
    /// `count == epochs` and `total == refresh_time`, because both are fed
    /// the same measured duration.
    pub phase_timings: BTreeMap<String, Histogram>,
    /// Wall-clock histograms for executor operator *self*-times (`op.*`
    /// spans, entered after child evaluation so subtrees are not
    /// double-counted).
    pub operator_timings: BTreeMap<String, Histogram>,
    /// Point-event counters from the tracing layer (`view.retry`,
    /// `view.quarantine`, …).
    pub trace_events: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Fraction of drained row changes that survived coalescing
    /// (1.0 = nothing cancelled, 0.0 = everything cancelled).
    /// Returns `None` before anything has been drained.
    pub fn coalescing_ratio(&self) -> Option<f64> {
        if self.rows_drained_raw == 0 {
            return None;
        }
        Some(self.rows_drained_coalesced as f64 / self.rows_drained_raw as f64)
    }

    /// Names of views currently quarantined.
    pub fn quarantined_views(&self) -> Vec<&str> {
        self.per_view
            .iter()
            .filter(|(_, v)| v.health.is_quarantined())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Mean wall-clock latency of a completed epoch.
    pub fn mean_epoch_time(&self) -> Option<Duration> {
        if self.epochs == 0 {
            return None;
        }
        Some(self.refresh_time / self.epochs as u32)
    }

    /// Human-readable multi-line report (the `serve_dashboard` example).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "gpivot-serve metrics");
        let _ = writeln!(
            out,
            "  epochs: {} completed, {} failed; last {:?}, mean {:?}",
            self.epochs,
            self.epochs_failed,
            self.last_epoch_time,
            self.mean_epoch_time().unwrap_or_default(),
        );
        let _ = writeln!(
            out,
            "  ingest: {} batches / {} row changes ({} backpressure waits)",
            self.batches_ingested, self.rows_ingested, self.ingest_waits,
        );
        let ratio = self
            .coalescing_ratio()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            out,
            "  coalescing: {} raw -> {} effective rows drained ({} surviving)",
            self.rows_drained_raw, self.rows_drained_coalesced, ratio,
        );
        let _ = writeln!(
            out,
            "  pending: {} rows (~{} bytes)",
            self.pending_rows, self.pending_bytes,
        );
        let _ = writeln!(
            out,
            "  propagate/apply: {} delta rows, {} rows propagated, {} rows applied",
            self.delta_rows, self.rows_propagated, self.rows_applied,
        );
        if self.sql_registrations > 0 || self.sql_rewrite_hits > 0 || self.sql_rewrite_misses > 0 {
            let _ = writeln!(
                out,
                "  sql: {} registrations, rewrites {} hit / {} miss",
                self.sql_registrations, self.sql_rewrite_hits, self.sql_rewrite_misses,
            );
        }
        if self.ingest_rejects > 0 || self.panics_isolated > 0 || self.lock_poisoned > 0 {
            let _ = writeln!(
                out,
                "  faults: {} ingest rejects, {} panics isolated, {} poisoned locks recovered",
                self.ingest_rejects, self.panics_isolated, self.lock_poisoned,
            );
        }
        if self.wal_records > 0 || self.checkpoints > 0 {
            let _ = writeln!(
                out,
                "  wal: {} records / {} bytes / {} fsyncs; {} checkpoints (last {} bytes)",
                self.wal_records,
                self.wal_bytes,
                self.wal_fsyncs,
                self.checkpoints,
                self.last_checkpoint_bytes,
            );
        }
        if self.recoveries > 0 || self.view_replays > 0 {
            let _ = writeln!(
                out,
                "  recovery: {} runs, {} records / {} epochs replayed, \
                 {} torn tails truncated, {} corrupt checkpoints skipped, {} view replays",
                self.recoveries,
                self.recovery_replayed_records,
                self.recovery_replayed_epochs,
                self.recovery_torn_tails,
                self.recovery_corrupt_checkpoints,
                self.view_replays,
            );
        }
        for (name, v) in &self.per_view {
            let health = match &v.health {
                ViewHealth::Healthy => String::new(),
                ViewHealth::Degraded {
                    consecutive_failures,
                } => format!(" [degraded: {consecutive_failures} consecutive failures]"),
                ViewHealth::Quarantined { since_epoch, .. } => {
                    format!(" [QUARANTINED since epoch {since_epoch}]")
                }
            };
            let _ = writeln!(
                out,
                "  view {name}: {} refreshes ({} failures, {} retries), {} delta rows, \
                 {} propagated, {} applied, {:?} total{health}",
                v.refreshes,
                v.failures,
                v.retries,
                v.delta_rows,
                v.rows_propagated,
                v.rows_applied,
                v.refresh_time,
            );
            for w in &v.lint_warnings {
                let _ = writeln!(out, "    lint: {w}");
            }
        }
        if !self.phase_timings.is_empty() {
            let _ = writeln!(out, "  phase timings:");
            for (name, h) in &self.phase_timings {
                let _ = writeln!(
                    out,
                    "    {name}: n={} p50={:?} p95={:?} max={:?} total={:?}",
                    h.count(),
                    h.p50(),
                    h.p95(),
                    h.max(),
                    h.total(),
                );
            }
        }
        if !self.operator_timings.is_empty() {
            let _ = writeln!(out, "  operator self-times:");
            for (name, h) in &self.operator_timings {
                let _ = writeln!(
                    out,
                    "    {name}: n={} p50={:?} p95={:?} max={:?} total={:?}",
                    h.count(),
                    h.p50(),
                    h.p95(),
                    h.max(),
                    h.total(),
                );
            }
        }
        if !self.trace_events.is_empty() {
            let _ = writeln!(out, "  trace events:");
            for (name, n) in &self.trace_events {
                let _ = writeln!(out, "    {name}: {n}");
            }
        }
        out
    }

    /// Prometheus text-format exposition: every counter as a `gpivot_*`
    /// metric, span histograms as one `histogram` family with cumulative
    /// log₂ `le` buckets, and trace events as a labelled counter family.
    /// Ready to serve from a `/metrics` endpoint (or print, as the
    /// `serve_dashboard` example does).
    pub fn prometheus(&self) -> String {
        fn counter(out: &mut String, name: &str, help: &str, v: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        fn gauge(out: &mut String, name: &str, help: &str, v: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut out = String::new();
        counter(
            &mut out,
            "gpivot_epochs_total",
            "Completed refresh epochs",
            self.epochs,
        );
        counter(
            &mut out,
            "gpivot_epochs_failed_total",
            "Epochs rolled back after a failure",
            self.epochs_failed,
        );
        counter(
            &mut out,
            "gpivot_batches_ingested_total",
            "Producer batches accepted",
            self.batches_ingested,
        );
        counter(
            &mut out,
            "gpivot_rows_ingested_total",
            "Row changes accepted (pre-coalescing)",
            self.rows_ingested,
        );
        counter(
            &mut out,
            "gpivot_ingest_waits_total",
            "Ingest calls that blocked on backpressure",
            self.ingest_waits,
        );
        counter(
            &mut out,
            "gpivot_ingest_rejects_total",
            "Ingest calls rejected with Backpressure",
            self.ingest_rejects,
        );
        counter(
            &mut out,
            "gpivot_panics_isolated_total",
            "Worker panics caught at the view-task boundary",
            self.panics_isolated,
        );
        counter(
            &mut out,
            "gpivot_lock_poisoned_total",
            "Poisoned lock guards recovered by the sync helpers",
            self.lock_poisoned,
        );
        counter(
            &mut out,
            "gpivot_rows_drained_raw_total",
            "Row changes drained into epochs before coalescing",
            self.rows_drained_raw,
        );
        counter(
            &mut out,
            "gpivot_rows_drained_coalesced_total",
            "Row changes drained into epochs after cancellation",
            self.rows_drained_coalesced,
        );
        counter(
            &mut out,
            "gpivot_delta_rows_total",
            "Distinct delta rows reaching apply phases",
            self.delta_rows,
        );
        counter(
            &mut out,
            "gpivot_rows_propagated_total",
            "Operator-output rows evaluated during propagation",
            self.rows_propagated,
        );
        counter(
            &mut out,
            "gpivot_rows_applied_total",
            "Row effects applied to materialized tables",
            self.rows_applied,
        );
        counter(
            &mut out,
            "gpivot_sql_registrations_total",
            "Views registered through the SQL frontend",
            self.sql_registrations,
        );
        let _ = writeln!(
            out,
            "# HELP gpivot_sql_rewrites_total SQL SELECTs by view-rewrite outcome"
        );
        let _ = writeln!(out, "# TYPE gpivot_sql_rewrites_total counter");
        let _ = writeln!(
            out,
            "gpivot_sql_rewrites_total{{outcome=\"hit\"}} {}",
            self.sql_rewrite_hits
        );
        let _ = writeln!(
            out,
            "gpivot_sql_rewrites_total{{outcome=\"miss\"}} {}",
            self.sql_rewrite_misses
        );
        counter(
            &mut out,
            "gpivot_wal_records_total",
            "WAL records appended",
            self.wal_records,
        );
        counter(
            &mut out,
            "gpivot_wal_bytes_total",
            "WAL bytes written, framing included",
            self.wal_bytes,
        );
        counter(
            &mut out,
            "gpivot_wal_fsyncs_total",
            "fsync calls issued by the WAL",
            self.wal_fsyncs,
        );
        counter(
            &mut out,
            "gpivot_checkpoints_total",
            "Checkpoints written (manual + automatic)",
            self.checkpoints,
        );
        gauge(
            &mut out,
            "gpivot_last_checkpoint_bytes",
            "Size of the most recent checkpoint file",
            self.last_checkpoint_bytes,
        );
        counter(
            &mut out,
            "gpivot_recovery_runs_total",
            "Crash recoveries performed at open",
            self.recoveries,
        );
        counter(
            &mut out,
            "gpivot_recovery_replayed_records_total",
            "WAL records replayed during recovery",
            self.recovery_replayed_records,
        );
        counter(
            &mut out,
            "gpivot_recovery_replayed_epochs_total",
            "Committed epochs re-applied during recovery",
            self.recovery_replayed_epochs,
        );
        counter(
            &mut out,
            "gpivot_recovery_torn_tails_total",
            "Torn WAL tails truncated during recovery",
            self.recovery_torn_tails,
        );
        counter(
            &mut out,
            "gpivot_recovery_corrupt_checkpoints_total",
            "Corrupt checkpoint files skipped during recovery",
            self.recovery_corrupt_checkpoints,
        );
        counter(
            &mut out,
            "gpivot_view_replays_total",
            "Quarantined views re-admitted by log replay",
            self.view_replays,
        );
        gauge(
            &mut out,
            "gpivot_pending_rows",
            "Coalesced row changes waiting in the queue",
            self.pending_rows,
        );
        gauge(
            &mut out,
            "gpivot_pending_bytes",
            "Estimated bytes held by the pending queue",
            self.pending_bytes as u64,
        );
        let _ = writeln!(
            out,
            "# HELP gpivot_refresh_seconds_total Wall-clock time spent in refresh epochs"
        );
        let _ = writeln!(out, "# TYPE gpivot_refresh_seconds_total counter");
        let _ = writeln!(
            out,
            "gpivot_refresh_seconds_total {}",
            self.refresh_time.as_secs_f64()
        );
        if !self.trace_events.is_empty() {
            let _ = writeln!(
                out,
                "# HELP gpivot_trace_events_total Point events fired by the tracing layer"
            );
            let _ = writeln!(out, "# TYPE gpivot_trace_events_total counter");
            for (name, n) in &self.trace_events {
                let _ = writeln!(out, "gpivot_trace_events_total{{event=\"{name}\"}} {n}");
            }
        }
        let spans = self
            .phase_timings
            .iter()
            .chain(self.operator_timings.iter());
        let _ = writeln!(
            out,
            "# HELP gpivot_span_duration_seconds Wall-clock span durations (phases and operators)"
        );
        let _ = writeln!(out, "# TYPE gpivot_span_duration_seconds histogram");
        for (name, h) in spans {
            for (le, cum) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "gpivot_span_duration_seconds_bucket{{span=\"{name}\",le=\"{}\"}} {cum}",
                    le.as_secs_f64(),
                );
            }
            let _ = writeln!(
                out,
                "gpivot_span_duration_seconds_bucket{{span=\"{name}\",le=\"+Inf\"}} {}",
                h.count(),
            );
            let _ = writeln!(
                out,
                "gpivot_span_duration_seconds_sum{{span=\"{name}\"}} {}",
                h.total().as_secs_f64(),
            );
            let _ = writeln!(
                out,
                "gpivot_span_duration_seconds_count{{span=\"{name}\"}} {}",
                h.count(),
            );
        }
        out
    }
}

/// What one call to `refresh_epoch` did.
#[derive(Debug, Clone, Default)]
pub struct EpochSummary {
    /// The epoch number now visible to readers.
    pub epoch: u64,
    /// Views actually refreshed (dirty dependency); clean views are skipped.
    pub views_refreshed: usize,
    /// Coalesced row changes in the drained batch.
    pub batch_rows: u64,
    /// Producer batches folded into the drained batch.
    pub batches_drained: u64,
    /// Distinct delta rows reaching apply phases, summed over views.
    pub delta_rows: u64,
    /// Propagation work proxy, summed over views.
    pub rows_propagated: u64,
    /// Row effects on materialized tables, summed over views.
    pub rows_applied: u64,
    /// Quarantined views that would have been refreshed but were skipped.
    pub quarantined_skipped: usize,
    /// Refresh attempts beyond the first, summed over views in this epoch.
    pub retries: u64,
    /// Wall-clock duration of the epoch.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_ratio_handles_empty_and_nonempty() {
        let mut m = MetricsSnapshot::default();
        assert_eq!(m.coalescing_ratio(), None);
        m.rows_drained_raw = 10;
        m.rows_drained_coalesced = 4;
        assert_eq!(m.coalescing_ratio(), Some(0.4));
    }

    #[test]
    fn report_mentions_views() {
        let mut m = MetricsSnapshot::default();
        m.per_view.insert("v1".into(), ViewMetrics::default());
        let r = m.report();
        assert!(r.contains("view v1"));
        assert!(r.contains("epochs"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut m = MetricsSnapshot {
            epochs: 3,
            rows_ingested: 17,
            ..Default::default()
        };
        let mut h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        m.phase_timings.insert("epoch".into(), h.clone());
        m.operator_timings.insert("op.Join".into(), h);
        m.trace_events.insert("view.retry".into(), 2);

        let text = m.prometheus();
        assert!(text.contains("# TYPE gpivot_epochs_total counter"));
        assert!(text.contains("gpivot_epochs_total 3"));
        assert!(text.contains("gpivot_rows_ingested_total 17"));
        assert!(text.contains("gpivot_trace_events_total{event=\"view.retry\"} 2"));
        // Histogram family: cumulative buckets end in +Inf == count, and
        // both span labels appear.
        assert!(text.contains("gpivot_span_duration_seconds_bucket{span=\"epoch\",le=\"+Inf\"} 2"));
        assert!(
            text.contains("gpivot_span_duration_seconds_bucket{span=\"op.Join\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("gpivot_span_duration_seconds_count{span=\"epoch\"} 2"));
        // Every non-comment line is "name{labels} value" with a parseable
        // float value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses as f64");
        }
    }

    #[test]
    fn sql_counters_appear_in_report_and_prometheus() {
        let mut m = MetricsSnapshot::default();
        // Silent until the SQL path is used.
        assert!(!m.report().contains("sql:"));
        m.sql_registrations = 3;
        m.sql_rewrite_hits = 5;
        m.sql_rewrite_misses = 2;
        let r = m.report();
        assert!(r.contains("sql: 3 registrations, rewrites 5 hit / 2 miss"));
        let text = m.prometheus();
        assert!(text.contains("gpivot_sql_registrations_total 3"));
        assert!(text.contains("gpivot_sql_rewrites_total{outcome=\"hit\"} 5"));
        assert!(text.contains("gpivot_sql_rewrites_total{outcome=\"miss\"} 2"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses as f64");
        }
    }

    #[test]
    fn durability_counters_appear_in_report_and_prometheus() {
        let mut m = MetricsSnapshot::default();
        // Silent in a non-durable service.
        assert!(!m.report().contains("wal:"));
        assert!(!m.report().contains("recovery:"));
        m.wal_records = 12;
        m.wal_bytes = 4096;
        m.wal_fsyncs = 4;
        m.checkpoints = 2;
        m.last_checkpoint_bytes = 512;
        m.recoveries = 1;
        m.recovery_replayed_records = 9;
        m.recovery_replayed_epochs = 3;
        m.recovery_torn_tails = 1;
        m.recovery_corrupt_checkpoints = 1;
        m.view_replays = 1;
        let r = m.report();
        assert!(
            r.contains("wal: 12 records / 4096 bytes / 4 fsyncs; 2 checkpoints (last 512 bytes)")
        );
        assert!(r.contains("recovery: 1 runs, 9 records / 3 epochs replayed"));
        let text = m.prometheus();
        assert!(text.contains("gpivot_wal_records_total 12"));
        assert!(text.contains("gpivot_wal_fsyncs_total 4"));
        assert!(text.contains("gpivot_checkpoints_total 2"));
        assert!(text.contains("gpivot_last_checkpoint_bytes 512"));
        assert!(text.contains("gpivot_recovery_runs_total 1"));
        assert!(text.contains("gpivot_recovery_replayed_epochs_total 3"));
        assert!(text.contains("gpivot_view_replays_total 1"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("metric value parses as f64");
        }
    }

    #[test]
    fn report_includes_phase_timings_when_present() {
        let mut m = MetricsSnapshot::default();
        let mut h = Histogram::new();
        h.record(Duration::from_millis(2));
        m.phase_timings.insert("maintain.propagate".into(), h);
        m.trace_events.insert("view.quarantine".into(), 1);
        let r = m.report();
        assert!(r.contains("phase timings"));
        assert!(r.contains("maintain.propagate"));
        assert!(r.contains("view.quarantine: 1"));
    }
}
