//! Horizontal sharding for the serve tier: a [`ShardedService`] that
//! partitions base tables and views by group-key hash across N shard
//! workers, with skew-aware **heavy-light** key placement.
//!
//! The design leans on the paper's §4.2.3 combinability result: a GPIVOT
//! over disjoint slices of its input can be computed slice-wise and
//! bag-concatenated, provided every slice holds *all* rows of each pivot
//! group. `gpivot-analyze`'s [`shard_safety`] dataflow proves exactly that
//! property for a candidate hash layout — each registered plan is either
//! *proven* shard-safe (GP024) and maintained on every hash shard, or
//! falls back to single-shard maintenance on the root with a GP023 `Info`
//! diagnostic. The service never guesses: an unprovable plan is never
//! sharded.
//!
//! ## Topology
//!
//! * **Root** — a full, unsharded [`ViewService`]: complete copies of all
//!   base tables, host of every single-shard view, and the catalog the SQL
//!   frontend falls back to. It is also the only backpressure point.
//! * **Hash shards** `0..N` — each a private [`ViewService`] whose
//!   partitioned tables hold only the rows hashing to that shard
//!   ([`gpivot_storage::shard_of`] on the class's partition column);
//!   tables a layout leaves replicated are kept in full on every shard.
//! * **Heavy shard** — one extra worker owning *promoted* keys: when a
//!   key's observed delta-row frequency crosses
//!   [`ShardConfig::heavy_key_threshold`], its rows migrate (as ordinary
//!   maintenance deltas, so every shard view stays incrementally exact)
//!   to the dedicated heavy shard regardless of hash. This is the classic
//!   heavy/light split for skewed workloads: one hot key no longer
//!   saturates whichever hash shard it happened to land on.
//!
//! Reads merge: [`ShardedService::snapshot`] captures all shard snapshots
//! under the epoch gate (so they agree on an epoch boundary) and
//! [`ShardSnapshot::query_view`] bag-concatenates the per-shard view
//! tables — key disjointness across shards is re-validated by the keyed
//! table constructor on every merged read.
//!
//! Durability stays single-shard: a durable root can be wrapped via
//! [`ShardedService::from_single`], but a multi-shard service refuses to
//! checkpoint (the WAL protocol has no cross-shard commit record yet).

use crate::metrics::{EpochSummary, MetricsSnapshot, ViewHealth, ViewMetrics};
use crate::service::{run_on_pool, IngestOptions, ServeConfig, Snapshot, ViewService};
use crate::sync;
use gpivot_algebra::Plan;
use gpivot_analyze::{shard_safety, DiagCode, Diagnostic, ShardRouting, ShardVerdict, TableRoute};
use gpivot_core::{CoreError, Result, Strategy, ViewManager, ViewOptions};
use gpivot_storage::{shard_of, Catalog, Delta, Row, Table, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Sharding knobs, carried inside [`ServeConfig`] (set them through
/// [`ServeConfig::builder`]'s `shards` / `heavy_key_threshold` setters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of hash shards. `1` (the default) means unsharded: the
    /// service is a transparent wrapper around one [`ViewService`].
    pub shards: usize,
    /// Cumulative delta-row frequency at which a key is promoted to the
    /// dedicated heavy shard. `0` (the default) disables promotion.
    pub heavy_key_threshold: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            heavy_key_threshold: 0,
        }
    }
}

/// Where one registered view is maintained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewPlacement {
    /// Proven shard-safe and maintained on every hash shard (plus the
    /// heavy shard) under `routing`; reads bag-merge the shard tables.
    Sharded {
        /// The layout the view was registered under.
        routing: ShardRouting,
        /// Rendered GP024 diagnostic recorded at registration.
        diagnostic: String,
    },
    /// Maintained on the root shard only. `diagnostic` carries the
    /// rendered GP023 `Info` finding when this was a fallback (the plan
    /// was unprovable, or every safe layout conflicted with views already
    /// registered); `None` for an unsharded service.
    Single { diagnostic: Option<String> },
}

impl ViewPlacement {
    /// True iff the view is maintained shard-wise.
    pub fn is_sharded(&self) -> bool {
        matches!(self, ViewPlacement::Sharded { .. })
    }

    /// The GP023/GP024 diagnostic recorded at registration, if any.
    pub fn diagnostic(&self) -> Option<&str> {
        match self {
            ViewPlacement::Sharded { diagnostic, .. } => Some(diagnostic),
            ViewPlacement::Single { diagnostic } => diagnostic.as_deref(),
        }
    }
}

/// A table pinned to a hash layout: rows are placed by
/// `shard_of(row[col_idx], shards)` unless the key is heavy.
#[derive(Debug, Clone)]
struct PartLayout {
    column: String,
    col_idx: usize,
    class: usize,
}

/// One co-partition class: tables partitioned *together* (their partition
/// columns were proven join-aligned), sharing a heavy-key set — a key
/// promotion moves the matching rows of every member table, preserving
/// co-location for the joins that made the layout safe.
#[derive(Debug, Default)]
struct ClassState {
    /// table → partition column.
    members: BTreeMap<String, String>,
    /// Keys promoted to the heavy shard.
    heavy: HashSet<Value>,
}

/// Routing state: which tables are partitioned how, and where each view
/// lives. Layouts are sticky — once a table is partitioned it stays so
/// even if the views that required it are dropped (re-replicating would
/// force a cross-shard rebuild for no correctness gain).
#[derive(Debug, Default)]
struct Router {
    /// Partitioned tables only; absence means replicated everywhere.
    tables: BTreeMap<String, PartLayout>,
    classes: Vec<ClassState>,
    /// Sharded views that read a table *replicated* pin it against later
    /// partitioning (their shard-local results assume full copies).
    replicated_pins: BTreeMap<String, BTreeSet<String>>,
    views: BTreeMap<String, ViewPlacement>,
}

impl Router {
    /// Can `candidate` be installed alongside the current layouts?
    /// Requires: every partitioned table either is new/unpinned or already
    /// partitioned on the same column; every replicated table is not
    /// partitioned; and at most one existing co-partition class is touched
    /// (merging classes would require migrating their heavy sets).
    fn compatible(&self, candidate: &ShardRouting) -> bool {
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for (table, route) in &candidate.routes {
            match route {
                TableRoute::Partitioned { column } => match self.tables.get(table) {
                    None => {
                        if self
                            .replicated_pins
                            .get(table)
                            .is_some_and(|pins| !pins.is_empty())
                        {
                            return false;
                        }
                    }
                    Some(layout) if layout.column == *column => {
                        touched.insert(layout.class);
                    }
                    Some(_) => return false,
                },
                TableRoute::Replicated => {
                    if self.tables.contains_key(table) {
                        return false;
                    }
                }
            }
        }
        touched.len() <= 1
    }

    /// The single existing class `candidate` extends, if any.
    fn touched_class(&self, candidate: &ShardRouting) -> Option<usize> {
        candidate
            .partitioned()
            .find_map(|(table, _)| self.tables.get(table).map(|l| l.class))
    }
}

struct Inner {
    cfg: ServeConfig,
    /// Full unsharded copy: hosts single-shard views, serves as the SQL
    /// base-table fallback, and is the sole backpressure point.
    root: ViewService,
    /// Hash shards (empty = unsharded passthrough to `root`).
    workers: Vec<ViewService>,
    /// Dedicated owner of promoted heavy keys (`Some` iff sharded).
    heavy: Option<ViewService>,
    /// Serializes refresh epochs, registrations, and promotions across
    /// shards. Ordered before each shard service's internal locks.
    gate: Mutex<()>,
    router: RwLock<Router>,
    /// Observed delta-row frequency per (class, key), feeding promotion.
    freq: Mutex<HashMap<(usize, Value), u64>>,
    /// Promotions whose row migration has not committed yet — retained
    /// across failed epochs so a crashed migration resumes exactly.
    pending_promotions: Mutex<PendingPromotions>,
    epoch: AtomicU64,
}

/// In-flight promotion state. While a key's row migration is pending,
/// deltas for that key are *parked* here instead of entering any shard
/// queue: routing them to the heavy shard before the migration commits
/// would let them apply ahead of the migrated rows (the migration's
/// re-insert would then collide with a newer row of the same key), and
/// routing them to the old owner would let them slip past the
/// migration's committed-state scan. Parked deltas re-enter the heavy
/// shard's queue, in arrival order, the moment the migration commits.
#[derive(Default)]
struct PendingPromotions {
    /// Keys marked heavy whose row migration has not committed.
    keys: BTreeSet<(usize, Value)>,
    /// `(table, delta)` batches for those keys, in arrival order.
    parked: Vec<(String, Delta)>,
}

/// A shard-transparent view-maintenance service: the redesigned serve
/// API. One shard behaves exactly like the wrapped [`ViewService`]; with
/// `N > 1` hash shards, provably shard-safe views are partitioned by
/// group-key hash, refreshed shard-parallel, and merged on read. See the
/// module docs for the topology and safety argument.
#[derive(Clone)]
pub struct ShardedService {
    inner: Arc<Inner>,
}

impl ShardedService {
    /// Build a service over `catalog`. `cfg.sharding.shards == 1` yields
    /// an unsharded service identical to `ViewService::new`; `N > 1`
    /// clones the catalog onto N hash shards plus a heavy shard (tables
    /// start replicated; they are filtered down to hash slices when the
    /// first shard-safe view needing them registers).
    pub fn new(catalog: Catalog, cfg: ServeConfig) -> Self {
        let shards = cfg.sharding().shards.max(1);
        if shards <= 1 {
            return Self::from_single(ViewService::new(catalog, cfg));
        }
        // Shard workers get an unbounded watermark: the root already
        // applied backpressure to the producer, and a bounded shard queue
        // could deadlock the routing fan-out against itself.
        let mut worker_cfg = cfg.clone();
        worker_cfg.max_pending_rows = u64::MAX;
        let root = ViewService::new(catalog.clone(), cfg.clone());
        let workers = (0..shards)
            .map(|_| ViewService::new(catalog.clone(), worker_cfg.clone()))
            .collect();
        let heavy = Some(ViewService::new(catalog, worker_cfg));
        ShardedService {
            inner: Arc::new(Inner {
                cfg,
                root,
                workers,
                heavy,
                gate: Mutex::new(()),
                router: RwLock::new(Router::default()),
                freq: Mutex::new(HashMap::new()),
                pending_promotions: Mutex::new(PendingPromotions::default()),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Wrap an existing (possibly durable, possibly already-populated)
    /// [`ViewService`] as a single-shard service. Every call delegates
    /// straight through, so this is the compatibility bridge for durable
    /// deployments — durability remains single-shard.
    pub fn from_single(service: ViewService) -> Self {
        let cfg = service.config().clone();
        ShardedService {
            inner: Arc::new(Inner {
                cfg,
                root: service,
                workers: Vec::new(),
                heavy: None,
                gate: Mutex::new(()),
                router: RwLock::new(Router::default()),
                freq: Mutex::new(HashMap::new()),
                pending_promotions: Mutex::new(PendingPromotions::default()),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Number of hash shards (`1` for an unsharded service).
    pub fn shards(&self) -> usize {
        self.inner.workers.len().max(1)
    }

    /// True iff this service maintains more than one hash shard.
    pub fn is_sharded(&self) -> bool {
        !self.inner.workers.is_empty()
    }

    /// The root shard: full base tables, single-shard views, durability.
    /// Intended for reads (metrics, SQL base fallback); ingest and
    /// refresh should go through the sharded API so shards stay in sync.
    pub fn root(&self) -> &ViewService {
        &self.inner.root
    }

    /// True iff the root shard write-ahead-logs.
    pub fn is_durable(&self) -> bool {
        self.inner.root.is_durable()
    }

    /// Persist the full service state to `dir` — single-shard only. A
    /// multi-shard service refuses: the checkpoint format has no
    /// cross-shard commit record, so a partial save could not be restored
    /// consistently.
    pub fn save_to(&self, dir: impl AsRef<std::path::Path>) -> Result<u64> {
        if self.is_sharded() {
            return Err(CoreError::InvalidConfig {
                field: "shards".into(),
                message: format!(
                    "durable save is single-shard only (this service has {} shards)",
                    self.shards()
                ),
            });
        }
        self.inner.root.save_to(dir)
    }

    /// Write a checkpoint of the durable (single-shard) root and rotate
    /// its log — see [`ViewService::checkpoint`]. Shard workers are never
    /// durable, so on a multi-shard service this fails exactly like the
    /// root's own non-durable checkpoint would.
    pub fn checkpoint(&self) -> Result<u64> {
        self.inner.root.checkpoint()
    }

    fn services(&self) -> Vec<ViewService> {
        let mut all = Vec::with_capacity(self.inner.workers.len() + 2);
        all.push(self.inner.root.clone());
        all.extend(self.inner.workers.iter().cloned());
        if let Some(h) = &self.inner.heavy {
            all.push(h.clone());
        }
        all
    }

    /// Shard services hosting sharded views (hash shards + heavy).
    fn shard_services(&self) -> Vec<&ViewService> {
        self.inner
            .workers
            .iter()
            .chain(self.inner.heavy.as_ref())
            .collect()
    }

    /// Refresh every shard (root included) once, in parallel on the
    /// configured worker pool. Caller must hold the gate.
    fn refresh_all_locked(&self) -> Result<Vec<EpochSummary>> {
        let services = self.services();
        let workers = self.inner.cfg.workers().max(1);
        let results = run_on_pool(services, workers, |svc| svc.refresh_epoch());
        let mut out = Vec::with_capacity(results.len());
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(Ok(summary)) => out.push(summary),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(CoreError::ViewPanic {
                        view: format!("<shard {i}>"),
                        message: "shard refresh worker died without a result".into(),
                    })
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Register a named view with an auto-selected maintenance strategy.
    /// On a sharded service the plan is first proven shard-safe by
    /// [`shard_safety`]; see [`ShardedService::register_view_with`].
    pub fn register_view(&self, name: impl Into<String>, definition: Plan) -> Result<Strategy> {
        self.register_view_with(name, definition, ViewOptions::new())
    }

    /// Register a named view with explicit [`ViewOptions`].
    ///
    /// Sharded placement is chosen here, per the §4.2.3 combinability
    /// proof: the analyzer returns every safe hash layout in preference
    /// order, and the first one compatible with layouts already pinned by
    /// other views wins. Plans the analyzer cannot prove safe — and safe
    /// plans whose every layout conflicts — register on the root shard
    /// instead, recording a GP023 `Info` diagnostic (visible in
    /// [`ShardedService::metrics`] lint warnings and
    /// [`ShardedService::placement`]); they never error for being
    /// unshardable.
    pub fn register_view_with(
        &self,
        name: impl Into<String>,
        definition: Plan,
        options: impl Into<ViewOptions>,
    ) -> Result<Strategy> {
        let name = name.into();
        let options = options.into();
        if !self.is_sharded() {
            let strategy = self
                .inner
                .root
                .register_view_with(name.clone(), definition, options)?;
            let mut router = sync::write(&self.inner.router);
            router
                .views
                .insert(name, ViewPlacement::Single { diagnostic: None });
            return Ok(strategy);
        }

        let _gate = sync::lock(&self.inner.gate);
        let verdict = {
            let snap = self.inner.root.snapshot();
            shard_safety(&definition, snap.manager().catalog())
        };
        let chosen = match &verdict {
            ShardVerdict::Safe { candidates } => {
                let router = sync::read(&self.inner.router);
                candidates.iter().find(|c| router.compatible(c)).cloned()
            }
            ShardVerdict::Unprovable { .. } => None,
        };

        match chosen {
            Some(routing) => self.register_sharded_locked(name, definition, options, routing),
            None => {
                let strategy =
                    self.inner
                        .root
                        .register_view_with(name.clone(), definition, options)?;
                let diagnostic = match &verdict {
                    ShardVerdict::Unprovable { .. } => verdict.diagnostic().to_string(),
                    ShardVerdict::Safe { .. } => Diagnostic::new(
                        DiagCode::Gp023NotShardSafe,
                        vec![],
                        "plan is shard-safe but every safe layout conflicts with \
                         views already registered; maintained single-shard",
                    )
                    .to_string(),
                };
                let mut router = sync::write(&self.inner.router);
                router.views.insert(
                    name,
                    ViewPlacement::Single {
                        diagnostic: Some(diagnostic),
                    },
                );
                Ok(strategy)
            }
        }
    }

    /// Install `routing` (partitioning any tables it needs that are still
    /// replicated) and register the view on every shard service. Caller
    /// holds the gate and has checked compatibility.
    fn register_sharded_locked(
        &self,
        name: String,
        definition: Plan,
        options: ViewOptions,
        routing: ShardRouting,
    ) -> Result<Strategy> {
        let shard_count = self.inner.workers.len();
        // Column indices + the set of tables transitioning replicated →
        // partitioned, resolved against the root catalog before any state
        // changes so schema errors abort cleanly.
        let mut transitions: Vec<(String, usize)> = Vec::new();
        {
            let snap = self.inner.root.snapshot();
            let catalog = snap.manager().catalog();
            let router = sync::read(&self.inner.router);
            for (table, column) in routing.partitioned() {
                if !router.tables.contains_key(table) {
                    let idx = catalog.schema(table)?.index_of(column)?;
                    transitions.push((table.to_string(), idx));
                }
            }
        }

        // (a) Publish the new layouts first: once the router write lock is
        // released, every ingest routes by the new rule, and any ingest
        // that routed by the old rule has finished enqueueing (it held the
        // read lock across its fan-out).
        let class = {
            let mut router = sync::write(&self.inner.router);
            let class = match router.touched_class(&routing) {
                Some(c) => c,
                None => {
                    router.classes.push(ClassState::default());
                    router.classes.len() - 1
                }
            };
            for (table, idx) in &transitions {
                let column = routing
                    .route(table)
                    .and_then(|r| match r {
                        TableRoute::Partitioned { column } => Some(column.clone()),
                        TableRoute::Replicated => None,
                    })
                    .unwrap_or_default();
                router.classes[class]
                    .members
                    .insert(table.clone(), column.clone());
                router.tables.insert(
                    table.clone(),
                    PartLayout {
                        column,
                        col_idx: *idx,
                        class,
                    },
                );
            }
            class
        };

        if !transitions.is_empty() {
            // (b) Flush: commit every delta that was routed while the
            // tables were still broadcast-replicated, so the filter below
            // sees the complete row set.
            self.refresh_all_locked()?;
            // (c) Filter each transitioning table down to its hash slice
            // on every shard (heavy keys of an extended class go to the
            // heavy shard). The root keeps its full copy.
            let heavy_keys: HashSet<Value> = {
                let router = sync::read(&self.inner.router);
                router.classes[class].heavy.iter().cloned().collect()
            };
            for (table, col_idx) in &transitions {
                for (j, svc) in self.inner.workers.iter().enumerate() {
                    let filtered = {
                        let snap = svc.snapshot();
                        let t = snap.manager().catalog().table(table)?;
                        let rows: Vec<Row> = t
                            .rows()
                            .iter()
                            .filter(|r| {
                                let key = &r[*col_idx];
                                !heavy_keys.contains(key) && shard_of(key, shard_count) == j
                            })
                            .cloned()
                            .collect();
                        Table::from_rows(t.schema().clone(), rows)?
                    };
                    svc.replace_table(table, filtered);
                }
                if let Some(h) = &self.inner.heavy {
                    let filtered = {
                        let snap = h.snapshot();
                        let t = snap.manager().catalog().table(table)?;
                        let rows: Vec<Row> = t
                            .rows()
                            .iter()
                            .filter(|r| heavy_keys.contains(&r[*col_idx]))
                            .cloned()
                            .collect();
                        Table::from_rows(t.schema().clone(), rows)?
                    };
                    h.replace_table(table, filtered);
                }
            }
        }

        // (d) Register on every shard service (hash shards + heavy); the
        // root does not host sharded views. The lint verdict is
        // deterministic, so a failure on one shard is a failure on all —
        // but unwind partial registrations anyway.
        let shard_services = self.shard_services();
        let mut strategy = None;
        for (i, svc) in shard_services.iter().enumerate() {
            match svc.register_view_with(name.clone(), definition.clone(), options) {
                Ok(s) => strategy = Some(s),
                Err(e) => {
                    for done in &shard_services[..i] {
                        let _ = done.drop_view(&name);
                    }
                    return Err(e);
                }
            }
        }
        let strategy = strategy.ok_or_else(|| CoreError::NotMaintainable(name.clone()))?;

        // (e) Record placement + pins.
        let diagnostic = Diagnostic::new(
            DiagCode::Gp024ShardSafe,
            vec![],
            format!(
                "plan proven shard-safe; sharded {}-way as {}",
                shard_count,
                routing.describe()
            ),
        )
        .to_string();
        let mut router = sync::write(&self.inner.router);
        for (table, route) in &routing.routes {
            if matches!(route, TableRoute::Replicated) {
                router
                    .replicated_pins
                    .entry(table.clone())
                    .or_default()
                    .insert(name.clone());
            }
        }
        router.views.insert(
            name,
            ViewPlacement::Sharded {
                routing,
                diagnostic,
            },
        );
        Ok(strategy)
    }

    /// Drop a view from wherever it is placed.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        if !self.is_sharded() {
            self.inner.root.drop_view(name)?;
            sync::write(&self.inner.router).views.remove(name);
            return Ok(());
        }
        let _gate = sync::lock(&self.inner.gate);
        let placement = sync::read(&self.inner.router).views.get(name).cloned();
        match placement {
            Some(ViewPlacement::Sharded { .. }) => {
                for svc in self.shard_services() {
                    svc.drop_view(name)?;
                }
            }
            _ => self.inner.root.drop_view(name)?,
        }
        let mut router = sync::write(&self.inner.router);
        router.views.remove(name);
        for pins in router.replicated_pins.values_mut() {
            pins.remove(name);
        }
        Ok(())
    }

    /// Names of all registered views (sharded and single-shard).
    pub fn view_names(&self) -> Vec<String> {
        let mut names = self.inner.root.view_names();
        if let Some(first) = self.inner.workers.first() {
            names.extend(first.view_names());
        }
        names.sort();
        names.dedup();
        names
    }

    /// Where `name` is maintained, if registered through this service.
    pub fn placement(&self, name: &str) -> Option<ViewPlacement> {
        sync::read(&self.inner.router).views.get(name).cloned()
    }

    /// Keys currently promoted to the heavy shard, as
    /// `(table, column, key)` triples (one per co-partitioned member
    /// table). Empty until a key crosses the promotion threshold.
    pub fn heavy_keys(&self) -> Vec<(String, String, Value)> {
        let router = sync::read(&self.inner.router);
        let mut out = Vec::new();
        for class in &router.classes {
            let mut keys: Vec<&Value> = class.heavy.iter().collect();
            keys.sort();
            for (table, column) in &class.members {
                for key in &keys {
                    out.push((table.clone(), column.clone(), (*key).clone()));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Submit a signed delta batch for one base table, routing it to the
    /// shards that own its rows.
    ///
    /// The root ingests the full delta first under the caller's
    /// [`IngestOptions`] — it is the single backpressure point, and a
    /// rejection there means no shard saw anything. The delta is then
    /// split by the table's partition column (hash slice per shard, heavy
    /// keys to the heavy shard) or broadcast when the table is
    /// replicated; shard queues are unbounded so the fan-out cannot
    /// deadlock. Routing holds the router read lock across the whole
    /// fan-out — that is what makes heavy-key promotion exact: once the
    /// promoter takes the write lock, every in-flight old-routing ingest
    /// has fully enqueued.
    pub fn ingest_with(&self, table: &str, delta: Delta, options: IngestOptions) -> Result<()> {
        if !self.is_sharded() {
            return self.inner.root.ingest_with(table, delta, options);
        }
        if delta.is_empty() {
            return Ok(());
        }
        self.inner.root.ingest_with(table, delta.clone(), options)?;
        let router = sync::read(&self.inner.router);
        match router.tables.get(table) {
            Some(layout) => {
                let n = self.inner.workers.len();
                let class = &router.classes[layout.class];
                let parts =
                    delta.partition_by_key(layout.col_idx, n, |key| class.heavy.contains(key));
                for (j, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    if j == n {
                        // Heavy bucket. Rows whose key's migration is
                        // still pending are parked (see
                        // [`PendingPromotions`]): enqueuing them now would
                        // apply them ahead of the migrated rows. The
                        // check-and-park is atomic under the pending lock,
                        // and the router read lock held across this
                        // fan-out keeps the heavy mark itself stable.
                        let mut p = sync::lock(&self.inner.pending_promotions);
                        let live = if p.keys.is_empty() {
                            part
                        } else {
                            let keys = &p.keys;
                            let is_pending =
                                |r: &Row| keys.contains(&(layout.class, r[layout.col_idx].clone()));
                            let parked = part.filter_rows(is_pending);
                            let live = part.filter_rows(|r| !is_pending(r));
                            if !parked.is_empty() {
                                p.parked.push((table.to_string(), parked));
                            }
                            live
                        };
                        drop(p);
                        if !live.is_empty() {
                            if let Some(h) = &self.inner.heavy {
                                h.ingest_with(table, live, IngestOptions::blocking())?;
                            }
                        }
                        continue;
                    }
                    if let Some(svc) = self.inner.workers.get(j) {
                        svc.ingest_with(table, part, IngestOptions::blocking())?;
                    }
                }
                if self.inner.cfg.sharding().heavy_key_threshold > 0 {
                    let mut freq = sync::lock(&self.inner.freq);
                    for (row, weight) in delta.iter() {
                        *freq
                            .entry((layout.class, row[layout.col_idx].clone()))
                            .or_insert(0) += weight.unsigned_abs();
                    }
                }
            }
            None => {
                for svc in self.inner.workers.iter().chain(self.inner.heavy.as_ref()) {
                    svc.ingest_with(table, delta.clone(), IngestOptions::blocking())?;
                }
            }
        }
        Ok(())
    }

    /// Coalesced rows pending across all shard queues (a routed delta
    /// counts once at the root and once on each shard it reached).
    pub fn pending_rows(&self) -> u64 {
        self.services().iter().map(|s| s.pending_rows()).sum()
    }

    // ------------------------------------------------------------------
    // Refresh
    // ------------------------------------------------------------------

    /// Run one refresh epoch: promote any keys that crossed the heavy
    /// threshold (flush → migrate → flush, exact under concurrent
    /// ingest), then refresh the root and every shard in parallel on the
    /// configured worker pool and merge the per-shard summaries.
    ///
    /// Cross-shard commit is *not* atomic: if one shard's epoch fails,
    /// shards that already committed stay committed, the failed shard
    /// rolls back (its batch re-queued), and the error is returned — a
    /// later successful epoch reconverges, and no delta is ever lost.
    pub fn refresh_epoch(&self) -> Result<EpochSummary> {
        if !self.is_sharded() {
            return self.inner.root.refresh_epoch();
        }
        let started = Instant::now();
        let _gate = sync::lock(&self.inner.gate);
        let mut summaries = self.promote_heavy_locked()?;
        summaries.extend(self.refresh_all_locked()?);

        let mut out = EpochSummary::default();
        // Producer-facing drain counts come from the root (shards see the
        // same rows again, which would double-count); work counters sum.
        for s in &summaries {
            out.views_refreshed += s.views_refreshed;
            out.delta_rows += s.delta_rows;
            out.rows_propagated += s.rows_propagated;
            out.rows_applied += s.rows_applied;
            out.quarantined_skipped += s.quarantined_skipped;
            out.retries += s.retries;
        }
        let root_epochs = summaries.iter().step_by(self.services().len());
        out.batch_rows = root_epochs.clone().map(|s| s.batch_rows).sum();
        out.batches_drained = root_epochs.map(|s| s.batches_drained).sum();
        if summaries
            .iter()
            .any(|s| s.views_refreshed > 0 || s.batch_rows > 0)
        {
            self.inner.epoch.fetch_add(1, Ordering::SeqCst);
        }
        out.epoch = self.inner.epoch.load(Ordering::SeqCst);
        out.duration = started.elapsed();
        Ok(out)
    }

    /// Promote keys whose observed delta frequency crossed the threshold.
    /// Caller holds the gate. The protocol is exact under concurrent
    /// producers:
    ///
    /// 1. Register the keys as pending, *then* mark them heavy under the
    ///    router **write** lock. Any in-flight old-routing ingest has
    ///    fully enqueued (fan-outs hold the read lock), and every ingest
    ///    that sees the heavy mark finds the key pending and parks its
    ///    rows (see [`PendingPromotions`]) instead of enqueuing anywhere.
    /// 2. Flush every shard, committing all old-routing deltas.
    /// 3. Scan the owning hash shard's *committed* tables for each
    ///    promoted key and enqueue a delete there plus an insert on the
    ///    heavy shard — ordinary maintenance deltas, so every shard view
    ///    updates incrementally and stays exact.
    /// 4. Flush again to commit the migration, then unpark: parked
    ///    deltas re-enter the heavy shard's queue in arrival order.
    ///
    /// Pending keys (and their parked deltas) are retained until step 4
    /// succeeds; a failed epoch retries them, and because every attempt
    /// re-scans committed state *after* a flush, retries never
    /// double-move rows.
    fn promote_heavy_locked(&self) -> Result<Vec<EpochSummary>> {
        let threshold = self.inner.cfg.sharding().heavy_key_threshold;
        let shard_count = self.inner.workers.len();
        let mut pending = {
            let p = sync::lock(&self.inner.pending_promotions);
            p.keys.clone()
        };
        if threshold > 0 {
            let router = sync::read(&self.inner.router);
            let freq = sync::lock(&self.inner.freq);
            for ((class, key), count) in freq.iter() {
                if *count >= threshold && !router.classes[*class].heavy.contains(key) {
                    pending.insert((*class, key.clone()));
                }
            }
        }
        if pending.is_empty() {
            // Normally a no-op: parked deltas imply pending keys. It only
            // fires if a previous epoch's drain failed partway, so those
            // orphaned batches still reach the heavy shard.
            let mut p = sync::lock(&self.inner.pending_promotions);
            Self::drain_parked_locked(&mut p, self.inner.heavy.as_ref())?;
            return Ok(Vec::new());
        }
        // Register the keys as pending *before* marking them heavy: an
        // ingest that routes a key to its old hash shard must be covered
        // by the flush below, and one that sees the heavy mark must find
        // the key already pending (and park) — the reverse order would
        // leave a window where a heavy-routed delta slips into the heavy
        // shard's queue ahead of the migrated rows.
        {
            let mut p = sync::lock(&self.inner.pending_promotions);
            p.keys.extend(pending.iter().cloned());
        }
        {
            let mut router = sync::write(&self.inner.router);
            for (class, key) in &pending {
                router.classes[*class].heavy.insert(key.clone());
            }
        }
        let mut summaries = self.refresh_all_locked()?;

        // Member tables + column indices per pending class.
        let moves: Vec<(usize, Value, String, usize)> = {
            let router = sync::read(&self.inner.router);
            pending
                .iter()
                .flat_map(|(class, key)| {
                    router.classes[*class]
                        .members
                        .keys()
                        .filter_map(|table| {
                            router
                                .tables
                                .get(table)
                                .map(|l| (*class, key.clone(), table.clone(), l.col_idx))
                        })
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        for (_, key, table, col_idx) in &moves {
            let j = shard_of(key, shard_count);
            let Some(src) = self.inner.workers.get(j) else {
                continue;
            };
            let rows: Vec<Row> = {
                let snap = src.snapshot();
                snap.manager()
                    .catalog()
                    .table(table)?
                    .rows()
                    .iter()
                    .filter(|r| &r[*col_idx] == key)
                    .cloned()
                    .collect()
            };
            if rows.is_empty() {
                continue;
            }
            if let Some(h) = &self.inner.heavy {
                h.ingest_with(
                    table,
                    Delta::from_inserts(rows.clone()),
                    IngestOptions::blocking(),
                )?;
            }
            src.ingest_with(table, Delta::from_deletes(rows), IngestOptions::blocking())?;
        }
        summaries.extend(self.refresh_all_locked()?);

        // Migration committed: unpark. The parked deltas re-enter the
        // heavy shard's queue *while the pending lock is held*, so a
        // concurrent ingest for the same key (which checks the pending
        // set under this lock) cannot enqueue ahead of them; the trailing
        // shard refresh in `refresh_epoch` commits them this epoch.
        {
            let mut p = sync::lock(&self.inner.pending_promotions);
            for key in &pending {
                p.keys.remove(key);
            }
            Self::drain_parked_locked(&mut p, self.inner.heavy.as_ref())?;
        }
        {
            let mut freq = sync::lock(&self.inner.freq);
            freq.retain(|(class, key), _| !pending.contains(&(*class, key.clone())));
        }
        Ok(summaries)
    }

    /// Re-enqueue parked deltas onto the heavy shard once no promotion is
    /// pending. Runs under the pending lock so a concurrent ingest for a
    /// just-unparked key cannot enqueue ahead of the parked batches. On a
    /// failed enqueue the unsent remainder is restored for a later epoch.
    fn drain_parked_locked(p: &mut PendingPromotions, heavy: Option<&ViewService>) -> Result<()> {
        if !p.keys.is_empty() || p.parked.is_empty() {
            return Ok(());
        }
        let mut parked = std::mem::take(&mut p.parked).into_iter();
        while let Some((table, delta)) = parked.next() {
            let Some(h) = heavy else { continue };
            if let Err(e) = h.ingest_with(&table, delta.clone(), IngestOptions::blocking()) {
                p.parked.push((table, delta));
                p.parked.extend(parked);
                return Err(e);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// The sharded epoch counter: bumps once per [`refresh_epoch`] call
    /// that did work. For an unsharded service this is the root's epoch.
    ///
    /// [`refresh_epoch`]: ShardedService::refresh_epoch
    pub fn epoch(&self) -> u64 {
        if !self.is_sharded() {
            return self.inner.root.epoch();
        }
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// A consistent read snapshot across all shards: per-shard snapshots
    /// are acquired under the epoch gate, so no shard is mid-commit and
    /// all agree on an epoch boundary.
    pub fn snapshot(&self) -> ShardSnapshot<'_> {
        if !self.is_sharded() {
            let root = self.inner.root.snapshot();
            let epoch = root.epoch();
            return ShardSnapshot {
                root,
                shards: Vec::new(),
                placements: sync::read(&self.inner.router).views.clone(),
                epoch,
            };
        }
        let _gate = sync::lock(&self.inner.gate);
        let root = self.inner.root.snapshot();
        let shards = self
            .inner
            .workers
            .iter()
            .chain(self.inner.heavy.as_ref())
            .map(|svc| svc.snapshot())
            .collect();
        ShardSnapshot {
            root,
            shards,
            placements: sync::read(&self.inner.router).views.clone(),
            epoch: self.inner.epoch.load(Ordering::SeqCst),
        }
    }

    /// The user-facing contents of a view, merged across shards.
    pub fn query_view(&self, name: &str) -> Result<Table> {
        self.snapshot().query_view(name)
    }

    /// A view's fault-tolerance health: for sharded views, the *worst*
    /// health across the shards maintaining it.
    pub fn view_health(&self, name: &str) -> Result<ViewHealth> {
        let sharded = self
            .placement(name)
            .as_ref()
            .is_some_and(ViewPlacement::is_sharded);
        if !sharded {
            return self.inner.root.view_health(name);
        }
        let mut worst = ViewHealth::Healthy;
        for svc in self.shard_services() {
            worst = worse_health(worst, svc.view_health(name)?);
        }
        Ok(worst)
    }

    /// Verify every view on every shard against a from-scratch recompute
    /// of its definition over that shard's base tables.
    pub fn verify_all(&self) -> Result<bool> {
        for svc in self.services() {
            if !svc.verify_all()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Rolled-up metrics: counters summed across the root and every
    /// shard, per-view entries merged (worst health wins, histograms
    /// folded), with each view's GP023/GP024 placement diagnostic
    /// appended to its lint warnings. Physical-work semantics: a routed
    /// ingest counts once at the root and once per shard it reached; use
    /// `root().metrics()` for producer-facing accounting.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.inner.root.metrics();
        for svc in self.shard_services() {
            merge_metrics(&mut merged, &svc.metrics());
        }
        let router = sync::read(&self.inner.router);
        for (name, placement) in &router.views {
            if let Some(diag) = placement.diagnostic() {
                let entry = merged.per_view.entry(name.clone()).or_default();
                if !entry.lint_warnings.iter().any(|w| w == diag) {
                    entry.lint_warnings.push(diag.to_string());
                }
            }
        }
        merged
    }

    /// Count a SQL `CREATE MATERIALIZED VIEW` registration (root metrics).
    pub fn record_sql_registration(&self) {
        self.inner.root.record_sql_registration();
    }

    /// Count a SQL `SELECT` rewrite outcome (root metrics).
    pub fn record_sql_rewrite(&self, used_view: Option<&str>) {
        self.inner.root.record_sql_rewrite(used_view);
    }
}

/// A consistent cross-shard read snapshot — see
/// [`ShardedService::snapshot`]. Holds one read guard per shard; sharded
/// views merge on [`ShardSnapshot::query_view`], everything else is
/// served from the root.
pub struct ShardSnapshot<'a> {
    root: Snapshot<'a>,
    /// Hash shards then the heavy shard (empty when unsharded).
    shards: Vec<Snapshot<'a>>,
    placements: BTreeMap<String, ViewPlacement>,
    epoch: u64,
}

impl ShardSnapshot<'_> {
    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The root shard's view manager: full base catalog + executor (the
    /// SQL frontend executes against these).
    pub fn manager(&self) -> &ViewManager {
        self.root.manager()
    }

    /// The user-facing contents of a view. Sharded views bag-concatenate
    /// the hash-shard and heavy-shard tables — re-validating key
    /// disjointness through the keyed table constructor; single-shard
    /// views read from the root.
    pub fn query_view(&self, name: &str) -> Result<Table> {
        let sharded = self
            .placements
            .get(name)
            .is_some_and(ViewPlacement::is_sharded);
        if !sharded || self.shards.is_empty() {
            return self.root.query_view(name);
        }
        let mut schema = None;
        let mut rows: Vec<Row> = Vec::new();
        for shard in &self.shards {
            let t = shard.query_view(name)?;
            if schema.is_none() {
                schema = Some(t.schema().clone());
            }
            rows.extend(t.rows().iter().cloned());
        }
        let schema = schema.ok_or_else(|| CoreError::UnknownView(name.to_string()))?;
        Ok(Table::from_rows(schema, rows)?)
    }

    /// Every registered view as `(name, definition)` pairs — root views
    /// plus sharded views — the input the SQL view-matching rewriter
    /// wants.
    pub fn view_definitions(&self) -> Vec<(String, Plan)> {
        let mut out: Vec<(String, Plan)> = self
            .root
            .manager()
            .views()
            .map(|v| (v.name().to_string(), v.definition().clone()))
            .collect();
        if let Some(first) = self.shards.first() {
            out.extend(
                first
                    .manager()
                    .views()
                    .map(|v| (v.name().to_string(), v.definition().clone())),
            );
        }
        out
    }

    /// Registration-time lint warnings for a view (rendered), wherever it
    /// is placed, including its GP023/GP024 placement diagnostic.
    pub fn view_lint_warnings(&self, name: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .root
            .manager()
            .view(name)
            .ok()
            .or_else(|| {
                self.shards
                    .first()
                    .and_then(|s| s.manager().view(name).ok())
            })
            .map(|v| v.lint_warnings().iter().map(|d| d.to_string()).collect())
            .unwrap_or_default();
        if let Some(diag) = self
            .placements
            .get(name)
            .and_then(ViewPlacement::diagnostic)
        {
            out.push(diag.to_string());
        }
        out
    }

    /// Where a view is placed, if registered through the sharded API.
    pub fn placement(&self, name: &str) -> Option<&ViewPlacement> {
        self.placements.get(name)
    }
}

/// The worse of two health states: `Quarantined` > `Degraded` (more
/// consecutive failures is worse) > `Healthy`.
fn worse_health(a: ViewHealth, b: ViewHealth) -> ViewHealth {
    use ViewHealth::*;
    match (a, b) {
        (q @ Quarantined { .. }, _) => q,
        (_, q @ Quarantined { .. }) => q,
        (
            Degraded {
                consecutive_failures: x,
            },
            Degraded {
                consecutive_failures: y,
            },
        ) => Degraded {
            consecutive_failures: x.max(y),
        },
        (d @ Degraded { .. }, Healthy) => d,
        (Healthy, other) => other,
    }
}

fn merge_view_metrics(into: &mut ViewMetrics, other: &ViewMetrics) {
    into.refreshes += other.refreshes;
    into.delta_rows += other.delta_rows;
    into.rows_propagated += other.rows_propagated;
    into.rows_applied += other.rows_applied;
    into.refresh_time += other.refresh_time;
    into.failures += other.failures;
    into.retries += other.retries;
    into.health = worse_health(into.health.clone(), other.health.clone());
    for w in &other.lint_warnings {
        if !into.lint_warnings.contains(w) {
            into.lint_warnings.push(w.clone());
        }
    }
}

/// Fold one shard's metrics into the roll-up: counters and gauges sum,
/// per-view entries merge, histograms fold bucket-wise.
fn merge_metrics(into: &mut MetricsSnapshot, other: &MetricsSnapshot) {
    into.epochs += other.epochs;
    into.epochs_failed += other.epochs_failed;
    into.batches_ingested += other.batches_ingested;
    into.rows_ingested += other.rows_ingested;
    into.ingest_waits += other.ingest_waits;
    into.ingest_rejects += other.ingest_rejects;
    into.panics_isolated += other.panics_isolated;
    // Process-wide counter: every shard reads the same static, so the
    // roll-up takes the max instead of multiplying it by the shard count.
    into.lock_poisoned = into.lock_poisoned.max(other.lock_poisoned);
    into.rows_drained_raw += other.rows_drained_raw;
    into.rows_drained_coalesced += other.rows_drained_coalesced;
    into.delta_rows += other.delta_rows;
    into.rows_propagated += other.rows_propagated;
    into.rows_applied += other.rows_applied;
    into.refresh_time += other.refresh_time;
    into.last_epoch_time = into.last_epoch_time.max(other.last_epoch_time);
    into.sql_registrations += other.sql_registrations;
    into.sql_rewrite_hits += other.sql_rewrite_hits;
    into.sql_rewrite_misses += other.sql_rewrite_misses;
    into.wal_records += other.wal_records;
    into.wal_bytes += other.wal_bytes;
    into.wal_fsyncs += other.wal_fsyncs;
    into.checkpoints += other.checkpoints;
    into.last_checkpoint_bytes = into.last_checkpoint_bytes.max(other.last_checkpoint_bytes);
    into.recoveries += other.recoveries;
    into.recovery_replayed_records += other.recovery_replayed_records;
    into.recovery_replayed_epochs += other.recovery_replayed_epochs;
    into.recovery_torn_tails += other.recovery_torn_tails;
    into.recovery_corrupt_checkpoints += other.recovery_corrupt_checkpoints;
    into.view_replays += other.view_replays;
    into.pending_rows += other.pending_rows;
    into.pending_bytes += other.pending_bytes;
    for (name, vm) in &other.per_view {
        merge_view_metrics(into.per_view.entry(name.clone()).or_default(), vm);
    }
    for (name, h) in &other.phase_timings {
        into.phase_timings.entry(name.clone()).or_default().merge(h);
    }
    for (name, h) in &other.operator_timings {
        into.operator_timings
            .entry(name.clone())
            .or_default()
            .merge(h);
    }
    for (name, n) in &other.trace_events {
        *into.trace_events.entry(name.clone()).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, DataType, Schema};
    use std::sync::Arc as StdArc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = StdArc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "facts",
            Table::from_rows(
                schema,
                vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn pivot_plan() -> Plan {
        PlanBuilder::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .build()
    }

    fn cfg(shards: usize, heavy_threshold: u64) -> ServeConfig {
        ServeConfig::builder()
            .workers(2)
            .exec_threads(1)
            .shards(shards)
            .heavy_key_threshold(heavy_threshold)
            .build()
            .unwrap()
    }

    /// Drive `svc` and an unsharded oracle through the same schedule and
    /// assert the view contents stay bag-equal after every epoch.
    fn assert_tracks_oracle(svc: &ShardedService, schedule: &[Delta]) {
        let oracle = ViewService::new(catalog(), cfg(1, 0));
        oracle.register_view("pv", pivot_plan()).unwrap();
        for delta in schedule {
            svc.ingest_with("facts", delta.clone(), IngestOptions::blocking())
                .unwrap();
            oracle
                .ingest_with("facts", delta.clone(), IngestOptions::blocking())
                .unwrap();
            svc.refresh_epoch().unwrap();
            oracle.refresh_epoch().unwrap();
            let got = svc.query_view("pv").unwrap();
            let want = oracle.query_view("pv").unwrap();
            assert!(
                got.bag_eq(&want),
                "sharded diverged from oracle:\n got: {:?}\nwant: {:?}",
                got.sorted_rows(),
                want.sorted_rows()
            );
        }
        assert!(svc.verify_all().unwrap());
    }

    #[test]
    fn unsharded_service_is_a_passthrough() {
        let svc = ShardedService::new(catalog(), cfg(1, 0));
        assert!(!svc.is_sharded());
        assert_eq!(svc.shards(), 1);
        svc.register_view("pv", pivot_plan()).unwrap();
        assert!(matches!(
            svc.placement("pv"),
            Some(ViewPlacement::Single { diagnostic: None })
        ));
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![3, "b", 7]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        let s = svc.refresh_epoch().unwrap();
        assert_eq!(s.epoch, 1);
        assert_eq!(svc.epoch(), 1);
        assert_eq!(svc.query_view("pv").unwrap().len(), 3);
        assert!(svc.verify_all().unwrap());
    }

    #[test]
    fn sharded_refresh_matches_unsharded_oracle() {
        let svc = ShardedService::new(catalog(), cfg(3, 0));
        assert!(svc.is_sharded());
        assert_eq!(svc.shards(), 3);
        svc.register_view("pv", pivot_plan()).unwrap();
        let placement = svc.placement("pv").unwrap();
        assert!(placement.is_sharded(), "expected sharded: {placement:?}");
        assert!(placement.diagnostic().unwrap().contains("GP024"));

        let schedule = vec![
            Delta::from_inserts(vec![row![3, "a", 1], row![4, "b", 2], row![5, "a", 3]]),
            Delta::from_deletes(vec![row![1, "b", 20]]),
            Delta::from_inserts(vec![row![6, "b", 4], row![7, "a", 5]]),
            Delta::from_deletes(vec![row![4, "b", 2], row![2, "a", 30]]),
        ];
        assert_tracks_oracle(&svc, &schedule);
    }

    #[test]
    fn heavy_key_promotion_keeps_results_exact() {
        // Threshold 3: key 1 crosses it after two delete+insert rounds.
        let svc = ShardedService::new(catalog(), cfg(2, 3));
        svc.register_view("pv", pivot_plan()).unwrap();
        let mut schedule = vec![Delta::from_inserts(vec![row![8, "a", 1]])];
        let mut prev = 10;
        for next in [11, 12, 13, 14] {
            let mut d = Delta::from_deletes(vec![row![1, "a", prev]]);
            d.merge(&Delta::from_inserts(vec![row![1, "a", next]]));
            schedule.push(d);
            prev = next;
        }
        assert_tracks_oracle(&svc, &schedule);
        let heavy = svc.heavy_keys();
        assert!(
            heavy
                .iter()
                .any(|(t, c, v)| t == "facts" && c == "id" && *v == Value::Int(1)),
            "key 1 should be heavy: {heavy:?}"
        );
    }

    /// Demotion readiness: once a key is promoted it must never
    /// *silently* re-route back to a hash shard — its rows stay on the
    /// heavy shard across later ingests and epochs, and `heavy_keys()`
    /// keeps reporting it. When demotion arrives it has to be an explicit
    /// protocol step (mark → flush → migrate back), not a side effect of
    /// the frequency map being cleared after promotion.
    #[test]
    fn promoted_key_never_silently_reroutes() {
        let svc = ShardedService::new(catalog(), cfg(2, 3));
        svc.register_view("pv", pivot_plan()).unwrap();

        // Rows of key 1 currently committed on one shard service.
        let key_rows = |s: &ViewService| -> usize {
            let snap = s.snapshot();
            snap.manager()
                .catalog()
                .table("facts")
                .unwrap()
                .rows()
                .iter()
                .filter(|r| r[0] == Value::Int(1))
                .count()
        };
        let assert_heavy_owns_key = |when: &str| {
            for (j, w) in svc.inner.workers.iter().enumerate() {
                assert_eq!(
                    key_rows(w),
                    0,
                    "{when}: hash shard {j} still owns rows of the promoted key"
                );
            }
            assert!(
                key_rows(svc.inner.heavy.as_ref().unwrap()) > 0,
                "{when}: heavy shard lost the promoted key's rows"
            );
            assert!(
                svc.heavy_keys()
                    .iter()
                    .any(|(t, c, v)| t == "facts" && c == "id" && *v == Value::Int(1)),
                "{when}: heavy_keys() no longer reports the promoted key"
            );
        };

        // One oracle persists across both phases (a fresh one could not
        // replay the later update rounds from base state).
        let oracle = ViewService::new(catalog(), cfg(1, 0));
        oracle.register_view("pv", pivot_plan()).unwrap();
        let drive = |schedule: &[Delta]| {
            for delta in schedule {
                svc.ingest_with("facts", delta.clone(), IngestOptions::blocking())
                    .unwrap();
                oracle
                    .ingest_with("facts", delta.clone(), IngestOptions::blocking())
                    .unwrap();
                svc.refresh_epoch().unwrap();
                oracle.refresh_epoch().unwrap();
                let got = svc.query_view("pv").unwrap();
                let want = oracle.query_view("pv").unwrap();
                assert!(
                    got.bag_eq(&want),
                    "sharded diverged from oracle:\n got: {:?}\nwant: {:?}",
                    got.sorted_rows(),
                    want.sorted_rows()
                );
            }
            assert!(svc.verify_all().unwrap());
        };

        // Drive key 1 over the threshold (update rounds, as the promotion
        // test does), tracking the oracle throughout.
        let mut schedule = Vec::new();
        let mut prev = 10;
        for next in [11, 12, 13] {
            let mut d = Delta::from_deletes(vec![row![1, "a", prev]]);
            d.merge(&Delta::from_inserts(vec![row![1, "a", next]]));
            schedule.push(d);
            prev = next;
        }
        drive(&schedule);
        assert_heavy_owns_key("after promotion");

        // The freq entry for the promoted key was cleared on promotion; a
        // fresh burst of updates re-counts it from zero. Routing must
        // come from the router's heavy set, not the frequency map.
        let mut after = Vec::new();
        for next in [14, 15, 16] {
            let mut d = Delta::from_deletes(vec![row![1, "a", prev]]);
            d.merge(&Delta::from_inserts(vec![row![1, "a", next]]));
            after.push(d);
            prev = next;
        }
        // And an unrelated light key keeps the hash shards busy.
        after.push(Delta::from_inserts(vec![row![9, "b", 1]]));
        drive(&after);
        assert_heavy_owns_key("after post-promotion ingests");
        let p = sync::lock(&svc.inner.pending_promotions);
        assert!(
            p.keys.is_empty() && p.parked.is_empty(),
            "promotion must not stay parked after committed epochs"
        );
    }

    #[test]
    fn conflicting_layout_falls_back_to_single_shard() {
        let svc = ShardedService::new(catalog(), cfg(2, 0));
        // Pins facts to the `id` layout.
        svc.register_view("pv", pivot_plan()).unwrap();
        assert!(svc.placement("pv").unwrap().is_sharded());
        // Safe only when facts is partitioned by `attr` — conflicts.
        let by_attr = PlanBuilder::scan("facts")
            .group_by(&["attr"], vec![AggSpec::sum("val", "total")])
            .build();
        svc.register_view("by_attr", by_attr).unwrap();
        let placement = svc.placement("by_attr").unwrap();
        assert!(!placement.is_sharded(), "conflict must fall back");
        assert!(placement.diagnostic().unwrap().contains("GP023"));
        // The fallback view still refreshes and serves from the root.
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![9, "a", 5]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        svc.refresh_epoch().unwrap();
        assert_eq!(svc.query_view("by_attr").unwrap().len(), 2);
        assert!(svc.verify_all().unwrap());
        // The placement diagnostics surface through metrics lint warnings.
        let m = svc.metrics();
        assert!(m.per_view["by_attr"]
            .lint_warnings
            .iter()
            .any(|w| w.contains("GP023")));
        assert!(m.per_view["pv"]
            .lint_warnings
            .iter()
            .any(|w| w.contains("GP024")));
    }

    #[test]
    fn unprovable_plan_falls_back_to_single_shard() {
        let svc = ShardedService::new(catalog(), cfg(2, 0));
        // A global aggregate has no group key to partition on.
        let global = PlanBuilder::scan("facts")
            .group_by(&[], vec![AggSpec::sum("val", "total")])
            .build();
        svc.register_view("total", global).unwrap();
        let placement = svc.placement("total").unwrap();
        assert!(!placement.is_sharded());
        assert!(placement.diagnostic().unwrap().contains("GP023"));
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![9, "b", 5]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        svc.refresh_epoch().unwrap();
        assert_eq!(svc.query_view("total").unwrap().len(), 1);
    }

    #[test]
    fn sharded_save_is_refused() {
        let svc = ShardedService::new(catalog(), cfg(2, 0));
        let err = svc.save_to("/tmp/should-not-be-created").unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn drop_view_removes_from_all_shards() {
        let svc = ShardedService::new(catalog(), cfg(2, 0));
        svc.register_view("pv", pivot_plan()).unwrap();
        assert_eq!(svc.view_names(), vec!["pv".to_string()]);
        svc.drop_view("pv").unwrap();
        assert!(svc.view_names().is_empty());
        assert!(svc.placement("pv").is_none());
        assert!(svc.query_view("pv").is_err());
    }

    #[test]
    fn worse_health_orders_states() {
        let q = ViewHealth::Quarantined {
            since_epoch: 1,
            reason: "r".into(),
        };
        let d = ViewHealth::Degraded {
            consecutive_failures: 2,
        };
        assert_eq!(worse_health(ViewHealth::Healthy, q.clone()), q);
        assert_eq!(worse_health(d.clone(), ViewHealth::Healthy), d);
        assert_eq!(
            worse_health(
                d,
                ViewHealth::Degraded {
                    consecutive_failures: 5
                }
            ),
            ViewHealth::Degraded {
                consecutive_failures: 5
            }
        );
    }
}
