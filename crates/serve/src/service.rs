//! The view-maintenance service: registry, ingestion, epoch scheduler.

use crate::metrics::{EpochSummary, MetricsSnapshot, ViewMetrics};
use crate::queue::IngestQueue;
use gpivot_algebra::plan::Plan;
use gpivot_core::{MaintenanceOutcome, MaterializedView, Result, Strategy, ViewManager};
use gpivot_storage::{Catalog, Delta, Table};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

const POISON: &str = "gpivot-serve lock poisoned: a holder panicked";

/// Tuning knobs for [`ViewService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per refresh epoch. Independent affected views are
    /// distributed round-robin over this many `std` scoped threads (the
    /// same idiom as `gpivot_core::combine::parallel_gpivot`). `1` means
    /// fully sequential refreshes.
    pub workers: usize,
    /// Backpressure watermark: once the *coalesced* pending row count
    /// reaches this, `ingest` blocks until an epoch drains the queue. A
    /// single batch larger than the watermark is still accepted when the
    /// queue is empty, so producers can never wedge themselves.
    pub max_pending_rows: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            max_pending_rows: 1 << 20,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    /// Serializes refresh epochs and registry changes with each other.
    /// Readers (queries, snapshots) never take it.
    gate: Mutex<()>,
    /// The catalog + views. Write-held only for the short install/commit
    /// critical section of an epoch and for registry changes.
    state: RwLock<ViewManager>,
    queue: Mutex<IngestQueue>,
    /// Signalled whenever the queue drains; `ingest` waits on it.
    space: Condvar,
    metrics: Mutex<MetricsSnapshot>,
    /// Epoch counter, bumped inside the state write-lock critical section
    /// so a read guard always observes a consistent (epoch, state) pair.
    epoch: AtomicU64,
}

/// A long-lived, thread-safe view-maintenance service. Cheap to clone —
/// clones share the same underlying state (handle semantics).
#[derive(Clone)]
pub struct ViewService {
    shared: Arc<Shared>,
}

impl ViewService {
    /// Wrap a base-table catalog with an empty view registry.
    pub fn new(catalog: Catalog, cfg: ServeConfig) -> Self {
        ViewService {
            shared: Arc::new(Shared {
                cfg,
                gate: Mutex::new(()),
                state: RwLock::new(ViewManager::new(catalog)),
                queue: Mutex::new(IngestQueue::new()),
                space: Condvar::new(),
                metrics: Mutex::new(MetricsSnapshot::default()),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Register a named view, compiling it through the normalize + strategy
    /// pipeline (auto-selected strategy, returned on success).
    pub fn register_view(&self, name: impl Into<String>, definition: Plan) -> Result<Strategy> {
        let _gate = self.shared.gate.lock().expect(POISON);
        let mut state = self.shared.state.write().expect(POISON);
        let name = name.into();
        let strategy = state.create_view(name.clone(), definition)?;
        self.shared
            .metrics
            .lock()
            .expect(POISON)
            .per_view
            .entry(name)
            .or_default();
        Ok(strategy)
    }

    /// Register a named view with an explicit maintenance strategy.
    pub fn register_view_with(
        &self,
        name: impl Into<String>,
        definition: Plan,
        strategy: Strategy,
    ) -> Result<()> {
        let _gate = self.shared.gate.lock().expect(POISON);
        let mut state = self.shared.state.write().expect(POISON);
        let name = name.into();
        state.create_view_with(name.clone(), definition, strategy)?;
        self.shared
            .metrics
            .lock()
            .expect(POISON)
            .per_view
            .entry(name)
            .or_default();
        Ok(())
    }

    /// Drop a view. Its cumulative metrics are retained in the snapshot.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        let _gate = self.shared.gate.lock().expect(POISON);
        let mut state = self.shared.state.write().expect(POISON);
        state.drop_view(name)?;
        Ok(())
    }

    /// Names of all registered views.
    pub fn view_names(&self) -> Vec<String> {
        let state = self.shared.state.read().expect(POISON);
        state.view_names().into_iter().map(String::from).collect()
    }

    /// Submit a signed delta batch for one base table. Blocks while the
    /// coalesced pending row count is at the backpressure watermark (unless
    /// the queue is empty, so one oversized batch still gets through).
    pub fn ingest(&self, table: &str, delta: Delta) -> Result<()> {
        if delta.is_empty() {
            return Ok(());
        }
        // Validate the table against the catalog, then release the state
        // lock *before* touching the queue (lock-order: state → queue, and
        // never queue-while-waiting-on-state).
        {
            let state = self.shared.state.read().expect(POISON);
            state.catalog().table(table)?;
        }
        let rows = delta.total_multiplicity();
        let mut waited = false;
        {
            let mut q = self.shared.queue.lock().expect(POISON);
            while q.pending_rows() >= self.shared.cfg.max_pending_rows && !q.is_empty() {
                waited = true;
                q = self.shared.space.wait(q).expect(POISON);
            }
            q.ingest(table, delta);
        }
        let mut m = self.shared.metrics.lock().expect(POISON);
        m.batches_ingested += 1;
        m.rows_ingested += rows;
        if waited {
            m.ingest_waits += 1;
        }
        Ok(())
    }

    /// Coalesced row changes currently waiting in the queue.
    pub fn pending_rows(&self) -> u64 {
        self.shared.queue.lock().expect(POISON).pending_rows()
    }

    /// The epoch number currently visible to readers.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Run one refresh epoch: drain the queue, propagate + apply the batch
    /// to every affected view in parallel, then atomically commit the new
    /// view tables and base-table state. An empty queue is a cheap no-op
    /// (the epoch number does not advance).
    ///
    /// On a propagation error the epoch is rolled back: no view or base
    /// table changes, and the drained batch is re-queued so no data is
    /// lost. A commit error (base-table key violation) aborts mid-commit
    /// and is returned; view tables are only installed after a successful
    /// commit.
    pub fn refresh_epoch(&self) -> Result<EpochSummary> {
        let _gate = self.shared.gate.lock().expect(POISON);
        let start = Instant::now();

        let (batch, drained) = {
            let mut q = self.shared.queue.lock().expect(POISON);
            let out = q.drain();
            self.shared.space.notify_all();
            out
        };
        {
            let mut m = self.shared.metrics.lock().expect(POISON);
            m.rows_drained_raw += drained.raw_rows;
            m.rows_drained_coalesced += drained.coalesced_rows;
        }
        if batch.is_empty() {
            return Ok(EpochSummary {
                epoch: self.epoch(),
                ..EpochSummary::default()
            });
        }

        let dirty: BTreeSet<&str> = batch.tables().collect();

        // Propagate phase: refresh clones of the affected views against the
        // pre-epoch catalog, in parallel, under the read lock (concurrent
        // queries keep running).
        let refreshed: Vec<(MaterializedView, MaintenanceOutcome)> = {
            let state = self.shared.state.read().expect(POISON);
            let affected: Vec<MaterializedView> = state
                .views()
                .filter(|v| v.dependencies().iter().any(|d| dirty.contains(d.as_str())))
                .cloned()
                .collect();
            if affected.is_empty() {
                drop(state);
                // Deltas touching no view still need committing to the
                // base tables to keep future registrations consistent.
                let mut w = self.shared.state.write().expect(POISON);
                w.commit(&batch)?;
                let epoch = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
                self.finish_epoch_metrics(start.elapsed());
                return Ok(EpochSummary {
                    epoch,
                    batch_rows: drained.coalesced_rows,
                    batches_drained: drained.batches,
                    duration: start.elapsed(),
                    ..EpochSummary::default()
                });
            }
            let catalog = state.catalog();
            let workers = self.shared.cfg.workers.clamp(1, affected.len());
            let results = run_on_pool(affected, workers, |mut view| {
                let t0 = Instant::now();
                let outcome = view.maintain(catalog, &batch)?;
                Ok((view, outcome, t0.elapsed()))
            });
            let mut ok = Vec::with_capacity(results.len());
            let mut first_err = None;
            for r in results {
                match r {
                    Ok((view, outcome, took)) => {
                        let mut m = self.shared.metrics.lock().expect(POISON);
                        let vm: &mut ViewMetrics =
                            m.per_view.entry(view.name().to_string()).or_default();
                        vm.refreshes += 1;
                        vm.delta_rows += outcome.delta_rows as u64;
                        vm.rows_propagated += outcome.rows_propagated as u64;
                        vm.rows_applied += (outcome.stats.inserted
                            + outcome.stats.updated
                            + outcome.stats.deleted)
                            as u64;
                        vm.refresh_time += took;
                        ok.push((view, outcome));
                    }
                    Err(e) => first_err = Some(e),
                }
            }
            if let Some(e) = first_err {
                drop(state);
                // Roll back: put the whole batch back so nothing is lost.
                let mut q = self.shared.queue.lock().expect(POISON);
                for t in batch.tables() {
                    if let Some(d) = batch.delta(t) {
                        q.ingest(t, d.clone());
                    }
                }
                drop(q);
                self.shared.metrics.lock().expect(POISON).epochs_failed += 1;
                return Err(e);
            }
            ok
        };

        // Apply phase: one short write-lock critical section installs the
        // base-table deltas and every refreshed view table, then bumps the
        // epoch — readers see all of it or none of it.
        let (summary, epoch_time) = {
            let mut state = self.shared.state.write().expect(POISON);
            state.commit(&batch)?;
            let mut summary = EpochSummary {
                batch_rows: drained.coalesced_rows,
                batches_drained: drained.batches,
                views_refreshed: refreshed.len(),
                ..EpochSummary::default()
            };
            for (view, outcome) in refreshed {
                summary.delta_rows += outcome.delta_rows as u64;
                summary.rows_propagated += outcome.rows_propagated as u64;
                summary.rows_applied +=
                    (outcome.stats.inserted + outcome.stats.updated + outcome.stats.deleted) as u64;
                state.install_view(view);
            }
            summary.epoch = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let epoch_time = start.elapsed();
            summary.duration = epoch_time;
            (summary, epoch_time)
        };

        {
            let mut m = self.shared.metrics.lock().expect(POISON);
            m.delta_rows += summary.delta_rows;
            m.rows_propagated += summary.rows_propagated;
            m.rows_applied += summary.rows_applied;
        }
        self.finish_epoch_metrics(epoch_time);
        Ok(summary)
    }

    fn finish_epoch_metrics(&self, took: Duration) {
        let mut m = self.shared.metrics.lock().expect(POISON);
        m.epochs += 1;
        m.refresh_time += took;
        m.last_epoch_time = took;
    }

    /// The user-facing contents of a view (single consistent read).
    pub fn query_view(&self, name: &str) -> Result<Table> {
        let state = self.shared.state.read().expect(POISON);
        state.query_view(name)
    }

    /// A consistent multi-view read: while the [`Snapshot`] is held, no
    /// epoch can commit, so every query through it sees the same epoch.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let guard = self.shared.state.read().expect(POISON);
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        Snapshot { guard, epoch }
    }

    /// Verify every registered view against full recomputation from the
    /// current base tables (the oracle check; testing/ops aid).
    pub fn verify_all(&self) -> Result<bool> {
        let state = self.shared.state.read().expect(POISON);
        for name in state.view_names() {
            if !state.verify_view(name)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// A point-in-time copy of all service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.shared.metrics.lock().expect(POISON).clone();
        let q = self.shared.queue.lock().expect(POISON);
        m.pending_rows = q.pending_rows();
        m.pending_bytes = q.estimate_bytes();
        m
    }
}

/// A read guard over the whole service state pinned to one epoch.
pub struct Snapshot<'a> {
    guard: RwLockReadGuard<'a, ViewManager>,
    epoch: u64,
}

impl Snapshot<'_> {
    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The user-facing contents of a view at this epoch.
    pub fn query_view(&self, name: &str) -> Result<Table> {
        self.guard.query_view(name)
    }

    /// The underlying manager (views + catalog) at this epoch.
    pub fn manager(&self) -> &ViewManager {
        &self.guard
    }
}

/// Run `f` over `items` on `workers` scoped threads (round-robin
/// distribution), preserving input order in the result vector.
fn run_on_pool<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push((i, item));
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("refresh worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, DataType, Schema, Value};
    use std::sync::Arc as StdArc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = StdArc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "facts",
            Table::from_rows(
                schema,
                vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn pivot_plan() -> Plan {
        PlanBuilder::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .build()
    }

    #[test]
    fn register_refresh_query_drop_cycle() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        assert_eq!(svc.view_names(), vec!["pv".to_string()]);

        svc.ingest("facts", Delta::from_inserts(vec![row![3, "b", 7]]))
            .unwrap();
        let summary = svc.refresh_epoch().unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.views_refreshed, 1);
        assert!(svc.verify_all().unwrap());
        assert_eq!(svc.query_view("pv").unwrap().len(), 3);

        svc.drop_view("pv").unwrap();
        assert!(svc.view_names().is_empty());
        assert!(svc.query_view("pv").is_err());
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        let s = svc.refresh_epoch().unwrap();
        assert_eq!(s.epoch, 0);
        assert_eq!(s.views_refreshed, 0);
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn unaffected_views_are_skipped() {
        let mut c = catalog();
        let other = StdArc::new(Schema::from_pairs_keyed(&[("k", DataType::Int)], &["k"]).unwrap());
        c.register("other", Table::from_rows(other, vec![row![1]]).unwrap())
            .unwrap();
        let svc = ViewService::new(c, ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        svc.register_view(
            "ov",
            PlanBuilder::scan("other")
                .select(Expr::col("k").gt(Expr::lit(0)))
                .build(),
        )
        .unwrap();

        svc.ingest("facts", Delta::from_inserts(vec![row![9, "a", 1]]))
            .unwrap();
        let s = svc.refresh_epoch().unwrap();
        // Only the pivot view depends on `facts`.
        assert_eq!(s.views_refreshed, 1);
        let m = svc.metrics();
        assert_eq!(m.per_view["pv"].refreshes, 1);
        assert_eq!(m.per_view["ov"].refreshes, 0);
        assert!(svc.verify_all().unwrap());
    }

    #[test]
    fn ingest_unknown_table_errors() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        assert!(svc
            .ingest("nope", Delta::from_inserts(vec![row![1]]))
            .is_err());
    }

    #[test]
    fn oversized_batch_passes_when_queue_empty() {
        let svc = ViewService::new(
            catalog(),
            ServeConfig {
                workers: 1,
                max_pending_rows: 1,
            },
        );
        // 3 rows > watermark of 1, but the queue is empty: must not block.
        svc.ingest(
            "facts",
            Delta::from_inserts(vec![row![7, "a", 1], row![8, "a", 1], row![9, "b", 2]]),
        )
        .unwrap();
        assert_eq!(svc.pending_rows(), 3);
    }

    #[test]
    fn queue_coalescing_reaches_metrics() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        svc.ingest("facts", Delta::from_inserts(vec![row![5, "a", 1]]))
            .unwrap();
        svc.ingest("facts", Delta::from_deletes(vec![row![5, "a", 1]]))
            .unwrap();
        svc.refresh_epoch().unwrap();
        let m = svc.metrics();
        assert_eq!(m.rows_ingested, 2);
        assert_eq!(m.rows_drained_raw, 2);
        assert_eq!(m.rows_drained_coalesced, 0);
        assert_eq!(m.coalescing_ratio(), Some(0.0));
        // Fully cancelled: no epoch work happened.
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn run_on_pool_preserves_order() {
        let out = run_on_pool((0..17).collect::<Vec<i32>>(), 4, |x| x * 2);
        assert_eq!(out, (0..17).map(|x| x * 2).collect::<Vec<_>>());
        let out1 = run_on_pool(vec![5], 8, |x: i32| x + 1);
        assert_eq!(out1, vec![6]);
        let empty = run_on_pool(Vec::<i32>::new(), 3, |x| x);
        assert!(empty.is_empty());
    }
}
