//! The view-maintenance service: registry, ingestion, epoch scheduler,
//! and the fault-tolerance machinery (retry, quarantine, atomic epochs).

use crate::durable::{self, Durability, PlanParser, RecoveryReport};
use crate::metrics::{EpochSummary, MetricsSnapshot, ViewHealth, ViewMetrics};
use crate::queue::IngestQueue;
use crate::shard::ShardConfig;
use crate::sync;
use gpivot_algebra::plan::Plan;
use gpivot_core::{
    CoreError, MaintenanceOutcome, MaterializedView, Result, Strategy, ViewManager, ViewOptions,
};
use gpivot_exec::Executor;
use gpivot_storage::checkpoint::{self, CheckpointData, ViewSnapshot};
use gpivot_storage::wal::{Wal, WalRecord};
use gpivot_storage::{Catalog, Delta, FaultInjector, FsyncPolicy, StorageError, Table};
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ViewService`] and the sharded tier
/// ([`crate::ShardedService`]).
///
/// Construct through [`ServeConfig::builder`], which validates every
/// setter, and read through the accessor methods. The fields are
/// crate-private: direct field-struct construction silently broke
/// whenever a knob was added (exactly what happened when sharding
/// landed), so the old public-field surface was removed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per refresh epoch. Independent affected views are
    /// distributed round-robin over this many `std` scoped threads (the
    /// same idiom as `gpivot_core::combine::parallel_gpivot`). `1` means
    /// fully sequential refreshes.
    pub(crate) workers: usize,
    /// Backpressure watermark on the *coalesced* pending row count.
    ///
    /// Once pending rows reach this, a blocking
    /// [`ViewService::ingest_with`] waits until an epoch drains the
    /// queue, a non-blocking one rejects immediately, and a bounded one
    /// waits up to its timeout — rejections return
    /// [`gpivot_core::CoreError::Backpressure`] without enqueueing
    /// anything (see [`IngestOptions`]).
    ///
    /// **Liveness contract:** a blocked ingest makes progress only if
    /// *another* thread eventually calls [`ViewService::refresh_epoch`]. A
    /// single-threaded producer that ingests past the watermark before
    /// refreshing will deadlock against itself; such callers must use
    /// [`IngestOptions::non_blocking`] / [`IngestOptions::bounded`] and
    /// run an epoch when they see
    /// `Backpressure`. As a safety valve, a single batch larger than the
    /// watermark is still accepted when the queue is empty, so no producer
    /// can wedge on one oversized batch.
    pub(crate) max_pending_rows: u64,
    /// Refresh attempts beyond the first, per view per epoch, for errors
    /// classified [`gpivot_core::ErrorClass::Transient`] (injected faults,
    /// caught worker panics). Permanent errors never retry.
    pub(crate) max_retries: u32,
    /// Initial sleep between retry attempts; doubles per attempt.
    pub(crate) retry_backoff: Duration,
    /// Upper bound on the exponential retry backoff.
    pub(crate) retry_backoff_cap: Duration,
    /// Consecutive failed epochs (retry budget exhausted each time) after
    /// which a view is quarantined: excluded from refresh scheduling so it
    /// stops blocking epochs, reported as
    /// [`ViewHealth::Quarantined`] in metrics, and re-admitted only by
    /// [`ViewService::retry_view`] or re-registration.
    pub(crate) quarantine_after: u32,
    /// Intra-query parallelism: threads each plan execution (propagate
    /// subplans, recompute, verify) runs on, via the service's
    /// [`gpivot_exec::Executor`]. Orthogonal to [`ServeConfig::workers`]
    /// (inter-view parallelism): an epoch uses up to
    /// `workers × exec_threads` threads. Defaults to the
    /// `GPIVOT_EXEC_THREADS` environment variable, else `1` (see
    /// [`gpivot_exec::ExecOptions`]).
    pub(crate) exec_threads: usize,
    /// Run plan executions on the vectorized columnar kernels (`true`,
    /// the default) or the row-at-a-time reference kernels (`false`).
    /// Results are bit-identical either way; this is a performance and
    /// triage knob. Defaults to the `GPIVOT_EXEC_COLUMNAR` environment
    /// variable, else `true` (see [`gpivot_exec::ExecOptions`]).
    pub(crate) exec_columnar: bool,
    /// When the WAL fsyncs, for services opened durably with
    /// [`ViewService::open`]. Ignored by [`ViewService::new`] (no log).
    /// The default, [`FsyncPolicy::OnCommit`], makes every acknowledged
    /// epoch commit (and registry change) durable; individual ingests
    /// inside a never-committed epoch ride on the page cache.
    pub(crate) wal_fsync: FsyncPolicy,
    /// Automatically checkpoint (and rotate + truncate the log) after
    /// every N committed epochs. `0` (the default) means manual only —
    /// call [`ViewService::checkpoint`]. Ignored by non-durable services.
    pub(crate) checkpoint_every_epochs: u64,
    /// Horizontal sharding for [`crate::ShardedService`]: hash-shard
    /// count and the heavy-key promotion threshold. The default
    /// (`shards = 1`) is unsharded. Ignored by a bare [`ViewService`].
    pub(crate) sharding: ShardConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            max_pending_rows: 1 << 20,
            max_retries: 2,
            retry_backoff: Duration::from_millis(2),
            retry_backoff_cap: Duration::from_millis(100),
            quarantine_after: 3,
            exec_threads: gpivot_exec::ExecOptions::default().threads,
            exec_columnar: gpivot_exec::ExecOptions::default().columnar,
            wal_fsync: FsyncPolicy::default(),
            checkpoint_every_epochs: 0,
            sharding: ShardConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Start building a config from the defaults. Every setter validates
    /// its argument; [`ServeConfigBuilder::build`] returns the first
    /// violation instead of a config that would misbehave at runtime.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
            error: None,
        }
    }

    /// Worker threads per refresh epoch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Backpressure watermark on the coalesced pending row count.
    pub fn max_pending_rows(&self) -> u64 {
        self.max_pending_rows
    }

    /// Transient-error refresh retries per view per epoch.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Initial retry backoff.
    pub fn retry_backoff(&self) -> Duration {
        self.retry_backoff
    }

    /// Upper bound on the exponential retry backoff.
    pub fn retry_backoff_cap(&self) -> Duration {
        self.retry_backoff_cap
    }

    /// Consecutive failed epochs before quarantine.
    pub fn quarantine_after(&self) -> u32 {
        self.quarantine_after
    }

    /// Intra-query executor threads.
    pub fn exec_threads(&self) -> usize {
        self.exec_threads
    }

    /// Whether plan executions use the vectorized columnar kernels.
    pub fn exec_columnar(&self) -> bool {
        self.exec_columnar
    }

    /// WAL fsync policy for durable services.
    pub fn wal_fsync(&self) -> FsyncPolicy {
        self.wal_fsync
    }

    /// Auto-checkpoint cadence in committed epochs (`0` = manual).
    pub fn checkpoint_every_epochs(&self) -> u64 {
        self.checkpoint_every_epochs
    }

    /// Sharding layout for [`crate::ShardedService`].
    pub fn sharding(&self) -> &ShardConfig {
        &self.sharding
    }
}

/// Validating builder for [`ServeConfig`] — see [`ServeConfig::builder`].
///
/// Setters record the *first* invalid argument and [`Self::build`]
/// surfaces it as [`CoreError::InvalidConfig`], so call sites get one
/// `?` instead of a panic deep inside the service.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
    error: Option<CoreError>,
}

impl ServeConfigBuilder {
    fn invalid(&mut self, field: &str, message: String) {
        if self.error.is_none() {
            self.error = Some(CoreError::InvalidConfig {
                field: field.to_string(),
                message,
            });
        }
    }

    /// Worker threads per refresh epoch (inter-view parallelism); ≥ 1.
    pub fn workers(mut self, workers: usize) -> Self {
        if workers == 0 {
            self.invalid("workers", "must be at least 1".into());
        } else {
            self.cfg.workers = workers;
        }
        self
    }

    /// Number of hash shards for [`crate::ShardedService`]; ≥ 1
    /// (`1` = unsharded).
    pub fn shards(mut self, shards: usize) -> Self {
        if shards == 0 {
            self.invalid("shards", "must be at least 1 (1 = unsharded)".into());
        } else {
            self.cfg.sharding.shards = shards;
        }
        self
    }

    /// Delta-row frequency at which a key is promoted to the heavy
    /// shard; `0` disables promotion. See [`ShardConfig`].
    pub fn heavy_key_threshold(mut self, threshold: u64) -> Self {
        self.cfg.sharding.heavy_key_threshold = threshold;
        self
    }

    /// Backpressure watermark on the coalesced pending row count; ≥ 1.
    pub fn max_pending_rows(mut self, rows: u64) -> Self {
        if rows == 0 {
            self.invalid("max_pending_rows", "must be at least 1".into());
        } else {
            self.cfg.max_pending_rows = rows;
        }
        self
    }

    /// Transient-error refresh retries per view per epoch.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Initial retry backoff (doubles per attempt).
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.cfg.retry_backoff = backoff;
        self
    }

    /// Upper bound on the exponential retry backoff; validated ≥ the
    /// initial backoff at [`Self::build`].
    pub fn retry_backoff_cap(mut self, cap: Duration) -> Self {
        self.cfg.retry_backoff_cap = cap;
        self
    }

    /// Consecutive failed epochs before quarantine; ≥ 1.
    pub fn quarantine_after(mut self, epochs: u32) -> Self {
        if epochs == 0 {
            self.invalid("quarantine_after", "must be at least 1".into());
        } else {
            self.cfg.quarantine_after = epochs;
        }
        self
    }

    /// Intra-query executor threads; ≥ 1.
    pub fn exec_threads(mut self, threads: usize) -> Self {
        if threads == 0 {
            self.invalid("exec_threads", "must be at least 1".into());
        } else {
            self.cfg.exec_threads = threads;
        }
        self
    }

    /// Vectorized columnar kernels (`true`, default) or the row
    /// reference kernels (`false`).
    pub fn exec_columnar(mut self, columnar: bool) -> Self {
        self.cfg.exec_columnar = columnar;
        self
    }

    /// WAL fsync policy for durable services.
    pub fn wal_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.cfg.wal_fsync = policy;
        self
    }

    /// Auto-checkpoint cadence in committed epochs (`0` = manual).
    pub fn checkpoint_every_epochs(mut self, epochs: u64) -> Self {
        self.cfg.checkpoint_every_epochs = epochs;
        self
    }

    /// Finish: the validated config, or the first setter violation as
    /// [`CoreError::InvalidConfig`].
    pub fn build(self) -> Result<ServeConfig> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.cfg.retry_backoff_cap < self.cfg.retry_backoff {
            return Err(CoreError::InvalidConfig {
                field: "retry_backoff_cap".into(),
                message: format!(
                    "cap {:?} is below the initial backoff {:?}",
                    self.cfg.retry_backoff_cap, self.cfg.retry_backoff
                ),
            });
        }
        Ok(self.cfg)
    }
}

/// How an [`ViewService::ingest_with`] call waits for queue space when
/// the backpressure watermark is reached.
///
/// * [`IngestOptions::default`] (or [`IngestOptions::blocking`]) waits
///   until an epoch drains the queue.
/// * [`IngestOptions::non_blocking`] rejects immediately with
///   [`gpivot_core::CoreError::Backpressure`] — the safe choice for
///   single-threaded producers (which cannot both wait for space and
///   run the epoch that would create it).
/// * [`IngestOptions::bounded`] waits at most `timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Reject immediately instead of waiting when `false`.
    pub blocking: bool,
    /// Upper bound on a blocking wait; `None` waits indefinitely.
    /// Ignored when `blocking` is `false`.
    pub timeout: Option<Duration>,
}

impl Default for IngestOptions {
    /// Blocking with no timeout.
    fn default() -> Self {
        IngestOptions::blocking()
    }
}

impl IngestOptions {
    /// Wait for queue space indefinitely.
    pub fn blocking() -> Self {
        IngestOptions {
            blocking: true,
            timeout: None,
        }
    }

    /// Reject immediately at the watermark.
    pub fn non_blocking() -> Self {
        IngestOptions {
            blocking: false,
            timeout: None,
        }
    }

    /// Wait at most `timeout`.
    pub fn bounded(timeout: Duration) -> Self {
        IngestOptions {
            blocking: true,
            timeout: Some(timeout),
        }
    }

    fn wait(&self) -> Wait {
        match (self.blocking, self.timeout) {
            (false, _) => Wait::Never,
            (true, Some(t)) => Wait::Timeout(t),
            (true, None) => Wait::Block,
        }
    }
}

/// How long an ingest call is willing to wait for queue space.
enum Wait {
    Block,
    Never,
    Timeout(Duration),
}

struct Shared {
    cfg: ServeConfig,
    /// Serializes refresh epochs and registry changes with each other.
    /// Readers (queries, snapshots) never take it.
    gate: Mutex<()>,
    /// The catalog + views. Write-held only for the short install/commit
    /// critical section of an epoch and for registry changes.
    state: RwLock<ViewManager>,
    queue: Mutex<IngestQueue>,
    /// Signalled whenever the queue drains; `ingest` waits on it.
    space: Condvar,
    metrics: Mutex<MetricsSnapshot>,
    /// Epoch counter, bumped inside the state write-lock critical section
    /// so a read guard always observes a consistent (epoch, state) pair.
    epoch: AtomicU64,
    /// Phase/operator timing store. Installed as a *scoped* collector on
    /// every thread that does work for this service (epoch coordinator,
    /// refresh workers, registry calls) — never globally, so concurrent
    /// services and parallel tests stay isolated.
    tracer: Arc<tracing::TimingSubscriber>,
    /// Present iff the service was opened durably ([`ViewService::open`]):
    /// the WAL handle + checkpoint machinery. Lock order: the WAL mutex
    /// inside sits between the queue mutex and the metrics mutex.
    durability: Option<Durability>,
}

/// A long-lived, thread-safe view-maintenance service. Cheap to clone —
/// clones share the same underlying state (handle semantics).
#[derive(Clone)]
pub struct ViewService {
    shared: Arc<Shared>,
}

/// One view's refresh attempt sequence within an epoch.
struct ViewRefresh {
    result: Result<(MaterializedView, MaintenanceOutcome)>,
    retries: u32,
    panics: u32,
    took: Duration,
}

impl ViewService {
    /// Wrap a base-table catalog with an empty view registry.
    ///
    /// To run the service under fault injection, configure the catalog
    /// first: `catalog.set_fault_injector(injector.clone())` — the injector
    /// is a shared handle, so the test keeps arming/disarming control over
    /// the copy the service owns.
    pub fn new(catalog: Catalog, cfg: ServeConfig) -> Self {
        let exec = gpivot_exec::Executor::new()
            .with_threads(cfg.exec_threads())
            .with_columnar(cfg.exec_columnar());
        Self::assemble(
            ViewManager::new(catalog).with_exec(exec),
            IngestQueue::new(),
            MetricsSnapshot::default(),
            0,
            cfg,
            None,
        )
    }

    fn assemble(
        manager: ViewManager,
        queue: IngestQueue,
        metrics: MetricsSnapshot,
        epoch: u64,
        cfg: ServeConfig,
        durability: Option<Durability>,
    ) -> Self {
        ViewService {
            shared: Arc::new(Shared {
                cfg,
                gate: Mutex::new(()),
                state: RwLock::new(manager),
                queue: Mutex::new(queue),
                space: Condvar::new(),
                metrics: Mutex::new(metrics),
                epoch: AtomicU64::new(epoch),
                tracer: tracing::TimingSubscriber::shared(),
                durability,
            }),
        }
    }

    /// Open (or create) a **durable** service rooted at directory `dir`.
    ///
    /// On a fresh directory this writes an initial checkpoint of
    /// `seed_catalog` and starts WAL generation 1. On a directory with
    /// prior state it runs crash recovery — latest valid checkpoint plus
    /// log-tail replay (see `durable` module docs) — and `seed_catalog` is
    /// used only for its [`FaultInjector`] handle, which is transplanted
    /// onto the recovered catalog so tests keep arming control. Torn log
    /// tails are truncated, corrupt checkpoints skipped; neither panics.
    ///
    /// Recovery is exactly-once with respect to *acknowledged* commits: an
    /// epoch whose `refresh_epoch` returned `Ok` is always re-applied, and
    /// a drained-but-uncommitted batch is restored to the pending queue.
    /// An operation that was in flight (never acknowledged) when the crash
    /// hit may or may not be present — the caller decides whether to
    /// resubmit, like any client of a write-ahead-logged store.
    ///
    /// `parser` converts persisted view-definition SQL back into plans;
    /// the SQL frontend's `gpivot_sql::GpivotService::open` passes
    /// `gpivot_sql::parse_query`. The [`RecoveryReport`] says what was
    /// found and replayed (also surfaced as `recovery_*` metrics).
    pub fn open(
        dir: impl AsRef<Path>,
        seed_catalog: Catalog,
        cfg: ServeConfig,
        parser: &PlanParser,
    ) -> Result<(ViewService, RecoveryReport)> {
        let dir = dir.as_ref();
        let exec = Executor::new()
            .with_threads(cfg.exec_threads())
            .with_columnar(cfg.exec_columnar());
        let injector = seed_catalog.fault_injector().clone();
        match durable::recover(dir, parser, exec)? {
            Some(rec) => {
                let mut manager = rec.manager;
                manager.catalog_mut().set_fault_injector(injector.clone());
                let durability = Durability::open_at(dir, rec.gen, cfg.wal_fsync(), injector)?;
                let (raw_rows, batches) = rec.queue.watermarks();
                let metrics = MetricsSnapshot {
                    // Seed the ingest counters from the recovered queue
                    // watermarks so `rows_ingested − rows_drained_raw =
                    // pending` still reconciles after a restart.
                    rows_ingested: raw_rows,
                    batches_ingested: batches,
                    recoveries: 1,
                    recovery_replayed_records: rec.report.replayed_records,
                    recovery_replayed_epochs: rec.report.replayed_epochs,
                    recovery_torn_tails: rec.report.torn_tails_truncated,
                    recovery_corrupt_checkpoints: rec.report.corrupt_checkpoints_skipped,
                    ..MetricsSnapshot::default()
                };
                let svc = Self::assemble(
                    manager,
                    rec.queue,
                    metrics,
                    rec.epoch,
                    cfg,
                    Some(durability),
                );
                Ok((svc, rec.report))
            }
            None => {
                let durability =
                    Durability::bootstrap(dir, &seed_catalog, cfg.wal_fsync(), injector)?;
                let exec = Executor::new()
                    .with_threads(cfg.exec_threads())
                    .with_columnar(cfg.exec_columnar());
                let svc = Self::assemble(
                    ViewManager::new(seed_catalog).with_exec(exec),
                    IngestQueue::new(),
                    MetricsSnapshot::default(),
                    0,
                    cfg,
                    Some(durability),
                );
                Ok((svc, RecoveryReport::default()))
            }
        }
    }

    /// True iff this service write-ahead-logs and can checkpoint.
    pub fn is_durable(&self) -> bool {
        self.shared.durability.is_some()
    }

    /// Register a named view, compiling it through the normalize + strategy
    /// pipeline (auto-selected strategy, returned on success). Re-using a
    /// dropped view's name resets its health to [`ViewHealth::Healthy`]
    /// while keeping its cumulative counters.
    pub fn register_view(&self, name: impl Into<String>, definition: Plan) -> Result<Strategy> {
        self.register_view_with(name, definition, ViewOptions::new())
    }

    /// Register a named view with explicit [`ViewOptions`] — a forced
    /// [`Strategy`] (a bare one converts), or a cost-model hint; see
    /// [`gpivot_core::ViewManager::register_view_with`]. Returns the
    /// strategy the view was compiled with.
    pub fn register_view_with(
        &self,
        name: impl Into<String>,
        definition: Plan,
        options: impl Into<ViewOptions>,
    ) -> Result<Strategy> {
        let _gate = sync::lock(&self.shared.gate);
        let _trace = tracing::push_collector(self.shared.tracer.clone());
        let mut state = sync::write(&self.shared.state);
        let name = name.into();
        let strategy = state.register_view_with(name.clone(), definition, options)?;
        if let Some(d) = &self.shared.durability {
            // Log the registration (definition as dialect SQL) before
            // acknowledging; if the log write fails, unwind it so the
            // in-memory registry never runs ahead of the durable one.
            let definition_sql = state.view(&name).map(|v| v.definition().to_sql_dialect())?;
            let logged = d
                .append(&WalRecord::RegisterView {
                    name: name.clone(),
                    definition_sql,
                    strategy: strategy.id().to_string(),
                })
                .and_then(|()| {
                    if d.policy() == FsyncPolicy::Never {
                        Ok(())
                    } else {
                        d.sync("register-view")
                    }
                });
            if let Err(e) = logged {
                let _ = state.drop_view(&name);
                return Err(e);
            }
        }
        // Surface any non-fatal plan-lint findings in the dashboard.
        let lint_warnings: Vec<String> = state
            .view(&name)
            .map(|v| v.lint_warnings().iter().map(|d| d.to_string()).collect())
            .unwrap_or_default();
        drop(state);
        let mut m = sync::lock(&self.shared.metrics);
        let vm = m.per_view.entry(name).or_default();
        vm.health = ViewHealth::Healthy;
        vm.lint_warnings = lint_warnings;
        Ok(strategy)
    }

    /// Drop a view. Its cumulative metrics are retained in the snapshot.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        let _gate = sync::lock(&self.shared.gate);
        let mut state = sync::write(&self.shared.state);
        let removed = state.drop_view(name)?;
        if let Some(d) = &self.shared.durability {
            let logged = d
                .append(&WalRecord::DropView {
                    name: name.to_string(),
                })
                .and_then(|()| {
                    if d.policy() == FsyncPolicy::Never {
                        Ok(())
                    } else {
                        d.sync("drop-view")
                    }
                });
            if let Err(e) = logged {
                state.install_view(removed);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Names of all registered views.
    pub fn view_names(&self) -> Vec<String> {
        let state = sync::read(&self.shared.state);
        state.view_names().into_iter().map(String::from).collect()
    }

    /// The configuration this service was built with.
    pub(crate) fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Replace a base table wholesale, under the refresh gate + write
    /// lock. Sharded-tier hook: used when a table transitions
    /// replicated → partitioned on a shard worker. Callers must have
    /// drained the queue first so no pending delta was routed against
    /// the old contents.
    pub(crate) fn replace_table(&self, name: &str, table: Table) {
        let _gate = sync::lock(&self.shared.gate);
        let mut state = sync::write(&self.shared.state);
        state.catalog_mut().replace(name, table);
    }

    /// Submit a signed delta batch for one base table. The single ingest
    /// entry point: [`IngestOptions`] selects blocking (default),
    /// non-blocking, or bounded-wait behavior at the backpressure
    /// watermark. A blocked ingest still gets through when the queue is
    /// empty (one oversized batch never wedges a producer); see
    /// [`ServeConfig::max_pending_rows`] for the liveness contract.
    pub fn ingest_with(&self, table: &str, delta: Delta, options: IngestOptions) -> Result<()> {
        self.ingest_inner(table, delta, options.wait())
    }

    fn ingest_inner(&self, table: &str, delta: Delta, wait: Wait) -> Result<()> {
        if delta.is_empty() {
            return Ok(());
        }
        // Validate the table against the catalog, then release the state
        // lock *before* touching the queue (lock-order: state → queue, and
        // never queue-while-waiting-on-state).
        {
            let state = sync::read(&self.shared.state);
            state.catalog().table(table)?;
        }
        let rows = delta.total_multiplicity();
        let deadline = match wait {
            Wait::Timeout(d) => Some(Instant::now() + d),
            _ => None,
        };
        let mut waited = false;
        let mut rejected_at = None;
        {
            let mut q = sync::lock(&self.shared.queue);
            while q.pending_rows() >= self.shared.cfg.max_pending_rows() && !q.is_empty() {
                match (&wait, deadline) {
                    (Wait::Never, _) => {
                        rejected_at = Some(q.pending_rows());
                        break;
                    }
                    (_, Some(dl)) => {
                        let now = Instant::now();
                        if now >= dl {
                            rejected_at = Some(q.pending_rows());
                            break;
                        }
                        let (g, _) =
                            sync::wait_timeout(&self.shared.space, &self.shared.queue, q, dl - now);
                        q = g;
                        waited = true;
                    }
                    (_, None) => {
                        q = sync::wait(&self.shared.space, &self.shared.queue, q);
                        waited = true;
                    }
                }
            }
            if rejected_at.is_none() {
                // Durable services log the delta (and under
                // `FsyncPolicy::Always`, fsync it) *before* enqueueing —
                // still inside the queue lock, so WAL append order equals
                // queue merge order and replay reconstructs identical
                // batches. A failed log write acknowledges nothing: the
                // delta is neither enqueued nor counted.
                if let Some(d) = &self.shared.durability {
                    if let Err(e) = d.log_ingest(table, &delta) {
                        drop(q);
                        return Err(e);
                    }
                }
                q.ingest(table, delta);
            }
        }
        let mut m = sync::lock(&self.shared.metrics);
        if let Some(pending_rows) = rejected_at {
            m.ingest_rejects += 1;
            if waited {
                m.ingest_waits += 1;
            }
            return Err(CoreError::Backpressure {
                pending_rows,
                watermark: self.shared.cfg.max_pending_rows(),
            });
        }
        m.batches_ingested += 1;
        m.rows_ingested += rows;
        if waited {
            m.ingest_waits += 1;
        }
        Ok(())
    }

    /// Coalesced row changes currently waiting in the queue.
    pub fn pending_rows(&self) -> u64 {
        sync::lock(&self.shared.queue).pending_rows()
    }

    /// The epoch number currently visible to readers.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Run one refresh epoch: drain the queue, propagate + apply the batch
    /// to every affected view in parallel, then atomically commit the new
    /// view tables and base-table state. An empty queue is a cheap no-op
    /// (the epoch number does not advance).
    ///
    /// Fault tolerance (see DESIGN.md §"Fault tolerance"):
    ///
    /// * Each view refresh runs inside `catch_unwind` — a panicking worker
    ///   is converted into [`gpivot_core::CoreError::ViewPanic`] and can
    ///   never poison a service lock.
    /// * Transient failures (injected faults, caught panics) retry with
    ///   bounded exponential backoff ([`ServeConfig::max_retries`]).
    /// * A view that exhausts its retries fails the epoch and degrades;
    ///   after [`ServeConfig::quarantine_after`] consecutive failed epochs
    ///   it is quarantined and excluded from scheduling, so later epochs
    ///   commit without it.
    /// * Commits are all-or-nothing: base deltas are *staged* (fallibly,
    ///   off to the side) and only swapped in — together with every
    ///   refreshed view table — in an infallible write-lock critical
    ///   section. On any failure the epoch commits nothing and the drained
    ///   batch is restored to the queue, so no data is lost.
    pub fn refresh_epoch(&self) -> Result<EpochSummary> {
        let _gate = sync::lock(&self.shared.gate);
        let _trace = tracing::push_collector(self.shared.tracer.clone());
        let start = Instant::now();

        let (batch, drained) = {
            let _s = tracing::span("epoch.drain").enter();
            let mut q = sync::lock(&self.shared.queue);
            let (batch, drained) = q.drain();
            // Mark the epoch boundary in the log while still holding the
            // queue lock: replay re-drains a simulated queue at this exact
            // record, so no ingest may slip between the drain and the
            // marker. Empty drains write nothing (no epoch happens).
            if !batch.is_empty() {
                if let Some(d) = &self.shared.durability {
                    if let Err(e) = d.append(&WalRecord::EpochBegin {
                        epoch: self.epoch() + 1,
                    }) {
                        q.restore(&batch, drained);
                        self.shared.space.notify_all();
                        return Err(e);
                    }
                }
            }
            self.shared.space.notify_all();
            (batch, drained)
        };
        {
            let mut m = sync::lock(&self.shared.metrics);
            m.rows_drained_raw += drained.raw_rows;
            m.rows_drained_coalesced += drained.coalesced_rows;
        }
        if batch.is_empty() {
            return Ok(EpochSummary {
                epoch: self.epoch(),
                ..EpochSummary::default()
            });
        }

        let dirty: BTreeSet<&str> = batch.tables().collect();

        // Propagate phase: refresh clones of the affected, non-quarantined
        // views against the pre-epoch catalog, in parallel, under the read
        // lock (concurrent queries keep running).
        let state = sync::read(&self.shared.state);
        let quarantined: BTreeSet<String> = {
            let m = sync::lock(&self.shared.metrics);
            m.per_view
                .iter()
                .filter(|(_, v)| v.health.is_quarantined())
                .map(|(n, _)| n.clone())
                .collect()
        };
        let mut quarantined_skipped = 0usize;
        let affected: Vec<MaterializedView> = state
            .views()
            .filter(|v| v.dependencies().iter().any(|d| dirty.contains(d.as_str())))
            .filter(|v| {
                if quarantined.contains(v.name()) {
                    quarantined_skipped += 1;
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();
        let names: Vec<String> = affected.iter().map(|v| v.name().to_string()).collect();
        let catalog = state.catalog();
        let exec = state.executor();
        let workers = self.shared.cfg.workers().max(1).min(affected.len().max(1));
        let results = {
            let _s = tracing::span("epoch.propagate").enter();
            let tracer = &self.shared.tracer;
            // Holding the refresh gate and the registry read guard across
            // the pool is what serializes epochs; the workers only run
            // view-maintenance closures and never touch a service lock.
            // concurrency-lint: allow(GP033)
            run_on_pool(affected, workers, |view| {
                // Workers run on their own threads: re-install the
                // service's tracer so `view.attempt` spans and the
                // maintain-phase spans underneath land in the same store.
                let _c = tracing::push_collector(tracer.clone());
                maintain_with_retry(&self.shared.cfg, &view, catalog, &batch, exec)
            })
        };

        let mut ok: Vec<(MaterializedView, MaintenanceOutcome, Duration, u32)> = Vec::new();
        let mut failures: Vec<(String, CoreError)> = Vec::new();
        let mut per_view_retries: Vec<(String, u64)> = Vec::new();
        let mut total_retries = 0u64;
        let mut total_panics = 0u64;
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(vr) => {
                    total_retries += u64::from(vr.retries);
                    total_panics += u64::from(vr.panics);
                    per_view_retries.push((names[i].clone(), u64::from(vr.retries)));
                    match vr.result {
                        Ok((view, outcome)) => ok.push((view, outcome, vr.took, vr.retries)),
                        Err(e) => failures.push((names[i].clone(), e)),
                    }
                }
                // The whole worker bucket vanished: a panic escaped the
                // per-view catch_unwind boundary (should be impossible for
                // unwinding panics, but never trust a worker).
                None => failures.push((
                    names[i].clone(),
                    CoreError::ViewPanic {
                        view: names[i].clone(),
                        message: "refresh worker vanished".into(),
                    },
                )),
            }
        }

        if !failures.is_empty() {
            drop(state);
            let first_err = failures[0].1.clone();
            return self.roll_back_epoch(
                &batch,
                drained,
                first_err,
                failures,
                per_view_retries,
                total_panics,
            );
        }

        // Stage the base-table commit while still only holding the read
        // lock: every fallible step (key violations, injected commit
        // faults) happens here, against copies. Transient staging faults
        // retry like any other.
        let (staged_res, stage_retries) = {
            let _s = tracing::span("epoch.stage").enter();
            retry_transient(&self.shared.cfg, || state.stage_commit(&batch))
        };
        total_retries += u64::from(stage_retries);
        let staged = match staged_res {
            Ok(s) => s,
            Err(e) => {
                drop(state);
                // A commit-site fault is a base-table problem, not any one
                // view's: fail the epoch without degrading view health.
                return self.roll_back_epoch(
                    &batch,
                    drained,
                    e,
                    vec![],
                    per_view_retries,
                    total_panics,
                );
            }
        };
        drop(state);

        // Durable commit point: the `EpochCommit` marker (fsynced per
        // policy) goes to the log *before* the in-memory commit and before
        // the caller sees `Ok`. If it cannot be made durable, the epoch
        // rolls back exactly like a propagation failure — recovery then
        // treats the drained batch as still pending, which matches what
        // the caller was told.
        if let Some(d) = &self.shared.durability {
            if let Err(e) = d.log_commit(self.epoch() + 1) {
                return self.roll_back_epoch(
                    &batch,
                    drained,
                    e,
                    vec![],
                    per_view_retries,
                    total_panics,
                );
            }
        }

        // Commit phase: one short write-lock critical section swaps in the
        // staged base tables and every refreshed view table, then bumps the
        // epoch. Nothing in here can fail — readers see all of it or none
        // of it. (The gate is still held, so no registry change can slip in
        // between the read and write locks.)
        let mut committed: Vec<(String, MaintenanceOutcome, Duration, u32)> =
            Vec::with_capacity(ok.len());
        let (summary, epoch_time) = {
            let _s = tracing::span("epoch.commit").enter();
            let mut state = sync::write(&self.shared.state);
            state.apply_staged(staged);
            let mut summary = EpochSummary {
                batch_rows: drained.coalesced_rows,
                batches_drained: drained.batches,
                views_refreshed: ok.len(),
                quarantined_skipped,
                retries: total_retries,
                ..EpochSummary::default()
            };
            for (view, outcome, took, retries) in ok {
                summary.delta_rows += outcome.delta_rows as u64;
                summary.rows_propagated += outcome.rows_propagated as u64;
                summary.rows_applied +=
                    (outcome.stats.inserted + outcome.stats.updated + outcome.stats.deleted) as u64;
                committed.push((view.name().to_string(), outcome, took, retries));
                state.install_view(view);
            }
            summary.epoch = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let epoch_time = start.elapsed();
            summary.duration = epoch_time;
            (summary, epoch_time)
        };

        {
            let mut m = sync::lock(&self.shared.metrics);
            m.delta_rows += summary.delta_rows;
            m.rows_propagated += summary.rows_propagated;
            m.rows_applied += summary.rows_applied;
            m.panics_isolated += total_panics;
            // Per-view refresh work is charged only on committed epochs —
            // rolled-back work never reaches these counters. A successful
            // committed refresh also resets the view's health.
            for (name, outcome, took, retries) in committed {
                let vm: &mut ViewMetrics = m.per_view.entry(name).or_default();
                vm.refreshes += 1;
                vm.delta_rows += outcome.delta_rows as u64;
                vm.rows_propagated += outcome.rows_propagated as u64;
                vm.rows_applied +=
                    (outcome.stats.inserted + outcome.stats.updated + outcome.stats.deleted) as u64;
                vm.refresh_time += took;
                vm.retries += u64::from(retries);
                vm.health = ViewHealth::Healthy;
            }
        }
        self.finish_epoch_metrics(epoch_time);
        if self.shared.durability.is_some() {
            let every = self.shared.cfg.checkpoint_every_epochs();
            if every > 0 && summary.epoch % every == 0 {
                // The epoch above is already committed and durable; a
                // checkpoint failure here reports as the epoch's error but
                // loses nothing — recovery replays from the previous
                // checkpoint instead.
                self.checkpoint_locked()?;
            }
        }
        Ok(summary)
    }

    /// Write a checkpoint: snapshot the catalog, every view table, and the
    /// pending queue; rotate the WAL to a fresh generation; then prune log
    /// and checkpoint files made obsolete. Returns the checkpoint size in
    /// bytes. Errors if the service is not durable.
    ///
    /// Crash-safe at every step: the checkpoint file lands via temp-file +
    /// fsync + rename, and old generations are removed only after it does.
    pub fn checkpoint(&self) -> Result<u64> {
        let _gate = sync::lock(&self.shared.gate);
        self.checkpoint_locked()
    }

    /// Checkpoint with the refresh gate already held.
    fn checkpoint_locked(&self) -> Result<u64> {
        let Some(d) = &self.shared.durability else {
            return Err(CoreError::Storage(StorageError::Io {
                op: "checkpoint".into(),
                message: "service is not durable (constructed with ViewService::new; \
                          use ViewService::open or save_to)"
                    .into(),
            }));
        };
        let _s = tracing::span("checkpoint").enter();
        let state = sync::read(&self.shared.state);
        let epoch = self.epoch();
        // Step 1 (atomic wrt producers): snapshot the queue and rotate the
        // log under the queue lock, so every ingest is either inside the
        // snapshot (old generation, not replayed) or after the rotation
        // point (new generation, replayed). Epoch markers can't interleave
        // here — the gate is held.
        let (pending, raw_rows, batches, new_gen) = {
            let q = sync::lock(&self.shared.queue);
            let new_gen = d.rotate(epoch)?;
            let (raw_rows, batches) = q.watermarks();
            (q.snapshot_pending(), raw_rows, batches, new_gen)
        };
        let data = self.assemble_checkpoint(&state, epoch, new_gen, pending, raw_rows, batches)?;
        drop(state);
        // Steps 2 + 3: write the snapshot, then prune behind it.
        let bytes = d.write_checkpoint_file(&data)?;
        tracing::event("checkpoint", &format!("gen {new_gen}, {bytes} bytes"));
        Ok(bytes)
    }

    fn assemble_checkpoint(
        &self,
        state: &ViewManager,
        epoch: u64,
        wal_gen: u64,
        pending: Vec<(String, Delta)>,
        queue_raw_rows: u64,
        queue_batches: u64,
    ) -> Result<CheckpointData> {
        let quarantined: BTreeSet<String> = {
            let m = sync::lock(&self.shared.metrics);
            m.per_view
                .iter()
                .filter(|(_, v)| v.health.is_quarantined())
                .map(|(n, _)| n.clone())
                .collect()
        };
        let mut tables = Vec::new();
        for name in state.catalog().table_names() {
            tables.push((name.to_string(), state.catalog().table(name)?.clone()));
        }
        let views = state
            .views()
            .map(|v| ViewSnapshot {
                name: v.name().to_string(),
                definition_sql: v.definition().to_sql_dialect(),
                strategy: v.strategy().id().to_string(),
                // A quarantined view's table lags the base tables; mark it
                // so recovery recomputes instead of trusting the snapshot.
                stale: quarantined.contains(v.name()),
                table: v.table().clone(),
            })
            .collect();
        Ok(CheckpointData {
            epoch,
            wal_gen,
            tables,
            views,
            pending,
            queue_raw_rows,
            queue_batches,
        })
    }

    /// Export the current state as a fresh durable directory at `dir` (one
    /// checkpoint at generation 1 plus an empty log), regardless of whether
    /// this service is itself durable. [`ViewService::open`] on that
    /// directory restores the exact state — views, pending queue, epoch.
    /// Any prior gpivot files in `dir` are replaced. Returns the
    /// checkpoint size in bytes. Backs the SQL REPL's `:save`.
    pub fn save_to(&self, dir: impl AsRef<Path>) -> Result<u64> {
        let _gate = sync::lock(&self.shared.gate);
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            CoreError::Storage(StorageError::Io {
                op: "save_to".into(),
                message: e.to_string(),
            })
        })?;
        // Clear any previous export so stale higher generations can't
        // shadow this one.
        checkpoint::prune(dir, u64::MAX);
        let state = sync::read(&self.shared.state);
        let epoch = self.epoch();
        let (pending, raw_rows, batches) = {
            let q = sync::lock(&self.shared.queue);
            let (raw_rows, batches) = q.watermarks();
            (q.snapshot_pending(), raw_rows, batches)
        };
        let data = self.assemble_checkpoint(&state, epoch, 1, pending, raw_rows, batches)?;
        drop(state);
        let injector = FaultInjector::disabled();
        let bytes = checkpoint::write_checkpoint(dir, &data, &injector)?;
        let mut w = Wal::create(checkpoint::wal_path(dir, 1))?;
        w.append(&WalRecord::Checkpoint { epoch, wal_gen: 1 })?;
        w.sync("save")?;
        Ok(bytes)
    }

    /// Roll a failed epoch back: record per-view failures and health
    /// transitions, restore the drained batch to the queue (without
    /// re-counting producer submissions), and return `err`.
    fn roll_back_epoch(
        &self,
        batch: &gpivot_core::SourceDeltas,
        drained: crate::queue::DrainStats,
        err: CoreError,
        failures: Vec<(String, CoreError)>,
        per_view_retries: Vec<(String, u64)>,
        total_panics: u64,
    ) -> Result<EpochSummary> {
        let _s = tracing::span("epoch.rollback").enter();
        let epoch_now = self.epoch();
        {
            let mut m = sync::lock(&self.shared.metrics);
            m.epochs_failed += 1;
            m.panics_isolated += total_panics;
            // Undo the drained-row accounting: after rollback the rows are
            // pending again, and they will be re-counted at the next drain.
            m.rows_drained_raw -= drained.raw_rows;
            m.rows_drained_coalesced -= drained.coalesced_rows;
            for (name, retries) in per_view_retries {
                m.per_view.entry(name).or_default().retries += retries;
            }
            for (name, err) in &failures {
                let vm: &mut ViewMetrics = m.per_view.entry(name.clone()).or_default();
                vm.failures += 1;
                let was_quarantined = vm.health.is_quarantined();
                vm.health = match vm.health {
                    ViewHealth::Healthy => {
                        if self.shared.cfg.quarantine_after() <= 1 {
                            ViewHealth::Quarantined {
                                since_epoch: epoch_now,
                                reason: err.to_string(),
                            }
                        } else {
                            ViewHealth::Degraded {
                                consecutive_failures: 1,
                            }
                        }
                    }
                    ViewHealth::Degraded {
                        consecutive_failures,
                    } => {
                        let n = consecutive_failures + 1;
                        if n >= self.shared.cfg.quarantine_after() {
                            ViewHealth::Quarantined {
                                since_epoch: epoch_now,
                                reason: err.to_string(),
                            }
                        } else {
                            ViewHealth::Degraded {
                                consecutive_failures: n,
                            }
                        }
                    }
                    ViewHealth::Quarantined { .. } => vm.health.clone(),
                };
                if vm.health.is_quarantined() && !was_quarantined {
                    tracing::event("view.quarantine", name);
                }
            }
        }
        {
            let mut q = sync::lock(&self.shared.queue);
            q.restore(batch, drained);
        }
        Err(err)
    }

    fn finish_epoch_metrics(&self, took: Duration) {
        // The `epoch` histogram is fed the *same* measured duration as the
        // `refresh_time` counter, so the two reconcile exactly:
        // `phase_timings["epoch"].count() == epochs` and
        // `phase_timings["epoch"].total() == refresh_time`.
        self.shared.tracer.record("epoch", took);
        let mut m = sync::lock(&self.shared.metrics);
        m.epochs += 1;
        m.refresh_time += took;
        m.last_epoch_time = took;
    }

    /// The user-facing contents of a view (single consistent read).
    pub fn query_view(&self, name: &str) -> Result<Table> {
        let state = sync::read(&self.shared.state);
        state.query_view(name)
    }

    /// Where a view currently sits in the retry/quarantine state machine.
    pub fn view_health(&self, name: &str) -> Result<ViewHealth> {
        {
            let state = sync::read(&self.shared.state);
            if !state.view_names().contains(&name) {
                return Err(CoreError::UnknownView(name.to_string()));
            }
        }
        let m = sync::lock(&self.shared.metrics);
        Ok(m.per_view
            .get(name)
            .map(|v| v.health.clone())
            .unwrap_or_default())
    }

    /// Re-admit a quarantined (or degraded) view and reset its health to
    /// [`ViewHealth::Healthy`] so the next epoch schedules it again.
    ///
    /// On a durable service a quarantined view takes the **log-replay fast
    /// path**: its table is consistent as of the epoch it was quarantined
    /// at (failed epochs roll back whole, so nothing partial ever
    /// committed), and every epoch it missed is in the WAL. The service
    /// replays just those missed epochs against the stale table —
    /// incremental maintenance instead of a full recompute — verifies the
    /// replayed base matches the live base, installs the caught-up table,
    /// and fires a `view.replay` trace event (counted in
    /// `gpivot_view_replays_total`). If replay is not applicable (no log,
    /// checkpoint newer than the quarantine point, the view was
    /// re-registered in the interim, or the verification mismatches) it
    /// falls back to the recompute path below.
    ///
    /// The fallback recomputes the view from the current base tables and
    /// installs the fresh table. Recomputation executes the view plan, so
    /// with an armed fault injector this can itself fail transiently; the
    /// view then stays quarantined and the call can simply be retried.
    pub fn retry_view(&self, name: &str) -> Result<()> {
        let _gate = sync::lock(&self.shared.gate);
        let _trace = tracing::push_collector(self.shared.tracer.clone());
        let since_epoch = {
            let m = sync::lock(&self.shared.metrics);
            match m.per_view.get(name).map(|v| &v.health) {
                Some(ViewHealth::Quarantined { since_epoch, .. }) => Some(*since_epoch),
                _ => None,
            }
        };
        if let (Some(d), Some(since)) = (self.shared.durability.as_ref(), since_epoch) {
            if self.replay_view_from_log(d, name, since).unwrap_or(false) {
                let mut m = sync::lock(&self.shared.metrics);
                m.view_replays += 1;
                m.per_view.entry(name.to_string()).or_default().health = ViewHealth::Healthy;
                return Ok(());
            }
        }
        let mut state = sync::write(&self.shared.state);
        let (definition, strategy) = {
            let view = state
                .views()
                .find(|v| v.name() == name)
                .ok_or_else(|| CoreError::UnknownView(name.to_string()))?;
            (view.definition().clone(), view.strategy())
        };
        let fresh = MaterializedView::create_with(
            name,
            definition,
            strategy,
            state.catalog(),
            state.executor(),
        )?;
        state.install_view(fresh);
        drop(state);
        let mut m = sync::lock(&self.shared.metrics);
        m.per_view.entry(name.to_string()).or_default().health = ViewHealth::Healthy;
        Ok(())
    }

    /// The `retry_view` fast path: catch a quarantined view up by replaying
    /// the epochs it missed (those committed after `since_epoch`) from the
    /// checkpoint + log onto its stale table. Returns `Ok(false)` when
    /// replay is not applicable; the caller then recomputes instead.
    fn replay_view_from_log(&self, d: &Durability, name: &str, since_epoch: u64) -> Result<bool> {
        let Some(loaded) = checkpoint::load_latest(d.dir())? else {
            return Ok(false);
        };
        let ckpt = loaded.data;
        // The log only reaches back to the checkpoint: if that is already
        // past the quarantine point, the missed epochs are gone from the
        // log and only a recompute can catch up.
        if ckpt.epoch > since_epoch {
            return Ok(false);
        }
        let state = sync::read(&self.shared.state);
        let Ok(view) = state.view(name) else {
            return Ok(false);
        };
        let mut stale_view = view.clone();
        let deps = stale_view.dependencies();

        // Rebuild the base-table history in a scratch catalog (injector
        // disabled: replay re-executes already-decided epochs).
        let mut scratch = Catalog::new();
        for (table, data) in ckpt.tables {
            scratch.register(table, data)?;
        }
        let mut queue = IngestQueue::new();
        queue.restore_state(ckpt.pending, ckpt.queue_raw_rows, ckpt.queue_batches);

        let mut held: Option<(gpivot_core::SourceDeltas, crate::queue::DrainStats)> = None;
        for gen in checkpoint::list_wal_gens(d.dir())? {
            if gen < ckpt.wal_gen {
                continue;
            }
            let scan = gpivot_storage::wal::read_wal(&checkpoint::wal_path(d.dir(), gen))?;
            for record in scan.records {
                match record {
                    WalRecord::Checkpoint { .. } => {}
                    WalRecord::RegisterView { name: n, .. } | WalRecord::DropView { name: n } => {
                        // The view was dropped/re-registered since the
                        // checkpoint: its quarantine history no longer
                        // lines up with the log. Punt to recompute.
                        if n == name {
                            return Ok(false);
                        }
                    }
                    WalRecord::IngestDelta { table, delta } => queue.ingest(&table, delta),
                    WalRecord::EpochBegin { .. } => {
                        if let Some((batch, stats)) = held.take() {
                            queue.restore(&batch, stats);
                        }
                        let (batch, stats) = queue.drain();
                        if !batch.is_empty() {
                            held = Some((batch, stats));
                        }
                    }
                    WalRecord::EpochCommit { epoch } => {
                        if let Some((batch, _)) = held.take() {
                            // Epochs the view missed are maintained against
                            // the pre-commit scratch base; epochs it saw
                            // (≤ since_epoch) only advance the base.
                            let affected =
                                batch.tables().any(|t| deps.contains(t)) && epoch > since_epoch;
                            if affected {
                                stale_view.maintain_with(&scratch, &batch, state.executor())?;
                            }
                            for table in batch.tables().map(String::from).collect::<Vec<_>>() {
                                if let Some(delta) = batch.delta(&table) {
                                    scratch.apply_delta(&table, delta)?;
                                }
                            }
                        }
                    }
                }
            }
        }

        // Cross-check: the replayed base must agree with the live base on
        // every dependency table, or the log we replayed does not describe
        // the state we are installing into.
        for dep in &deps {
            let live = state.catalog().table(dep)?;
            match scratch.table(dep) {
                Ok(replayed) if replayed.schema() == live.schema() && replayed.bag_eq(live) => {}
                _ => return Ok(false),
            }
        }
        drop(state);
        let mut state = sync::write(&self.shared.state);
        state.install_view(stale_view);
        drop(state);
        tracing::event("view.replay", name);
        Ok(true)
    }

    /// A consistent multi-view read: while the [`Snapshot`] is held, no
    /// epoch can commit, so every query through it sees the same epoch.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let guard = sync::read(&self.shared.state);
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        Snapshot { guard, epoch }
    }

    /// Verify every registered view against full recomputation from the
    /// current base tables (the oracle check; testing/ops aid). Quarantined
    /// views are skipped — their tables are knowingly stale until
    /// [`ViewService::retry_view`] re-admits them.
    pub fn verify_all(&self) -> Result<bool> {
        let state = sync::read(&self.shared.state);
        let quarantined: BTreeSet<String> = {
            let m = sync::lock(&self.shared.metrics);
            m.per_view
                .iter()
                .filter(|(_, v)| v.health.is_quarantined())
                .map(|(n, _)| n.clone())
                .collect()
        };
        for name in state.view_names() {
            if quarantined.contains(name) {
                continue;
            }
            if !state.verify_view(name)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// A point-in-time copy of all service counters, including the span
    /// timing histograms split into maintenance/epoch *phases* and exec
    /// *operator* self-times (`op.*`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = sync::lock(&self.shared.metrics).clone();
        {
            let q = sync::lock(&self.shared.queue);
            m.pending_rows = q.pending_rows();
            m.pending_bytes = q.estimate_bytes();
        }
        if let Some(d) = &self.shared.durability {
            // Durability counters live as atomics on the Durability handle
            // (the WAL mutex sits above the metrics mutex in the lock
            // order, so they can't be folded in at write time).
            let (records, bytes, fsyncs, checkpoints, last_bytes) = d.counters();
            m.wal_records = records;
            m.wal_bytes = bytes;
            m.wal_fsyncs = fsyncs;
            m.checkpoints = checkpoints;
            m.last_checkpoint_bytes = last_bytes;
        }
        for (name, h) in self.shared.tracer.histograms() {
            if name.starts_with("op.") {
                m.operator_timings.insert(name, h);
            } else {
                m.phase_timings.insert(name, h);
            }
        }
        m.trace_events = self.shared.tracer.event_counts();
        m.lock_poisoned = sync::poisoned_total();
        m
    }

    /// Record that a view registration came in through the SQL frontend
    /// (`CREATE MATERIALIZED VIEW`). Called by `gpivot-sql` after a
    /// successful [`ViewService::register_view`].
    pub fn record_sql_registration(&self) {
        let mut m = sync::lock(&self.shared.metrics);
        m.sql_registrations += 1;
    }

    /// Record the outcome of a SQL `SELECT` through the view-matching
    /// rewriter: `Some(view)` if the query was answered from that
    /// materialized view, `None` if it fell back to base-table execution.
    /// Bumps `gpivot_sql_rewrites_total{outcome}` and fires a
    /// `rewrite.hit` / `rewrite.miss` tracing event.
    pub fn record_sql_rewrite(&self, used_view: Option<&str>) {
        {
            let mut m = sync::lock(&self.shared.metrics);
            match used_view {
                Some(_) => m.sql_rewrite_hits += 1,
                None => m.sql_rewrite_misses += 1,
            }
        }
        let _trace = tracing::push_collector(self.shared.tracer.clone());
        match used_view {
            Some(view) => tracing::event("rewrite.hit", view),
            None => tracing::event("rewrite.miss", "no registered view subsumes the query"),
        }
    }
}

/// A read guard over the whole service state pinned to one epoch.
pub struct Snapshot<'a> {
    guard: RwLockReadGuard<'a, ViewManager>,
    epoch: u64,
}

impl Snapshot<'_> {
    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The user-facing contents of a view at this epoch.
    pub fn query_view(&self, name: &str) -> Result<Table> {
        self.guard.query_view(name)
    }

    /// The underlying manager (views + catalog) at this epoch.
    pub fn manager(&self) -> &ViewManager {
        &self.guard
    }
}

/// Run `op`, retrying transient errors up to `cfg.max_retries` times with
/// bounded exponential backoff. Returns the final result and how many
/// retries were spent.
fn retry_transient<R>(cfg: &ServeConfig, mut op: impl FnMut() -> Result<R>) -> (Result<R>, u32) {
    let mut retries = 0u32;
    let mut backoff = cfg.retry_backoff();
    loop {
        match op() {
            Ok(r) => return (Ok(r), retries),
            Err(e) if e.is_transient() && retries < cfg.max_retries() => {
                retries += 1;
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                backoff = (backoff * 2).min(cfg.retry_backoff_cap());
            }
            Err(e) => return (Err(e), retries),
        }
    }
}

/// Refresh one view with panic isolation and transient-error retry.
///
/// `maintain` mutates the view's table in place and a failed attempt may
/// leave it partially applied, so every attempt starts from a fresh clone
/// of the pristine registered view — the caller's copy is never touched.
/// A panicking attempt is caught at this boundary (`catch_unwind`) and
/// converted into a transient [`CoreError::ViewPanic`]; since the panic
/// never crosses a lock acquisition, no service lock can be poisoned by it.
fn maintain_with_retry(
    cfg: &ServeConfig,
    pristine: &MaterializedView,
    catalog: &Catalog,
    batch: &gpivot_core::SourceDeltas,
    exec: &Executor,
) -> ViewRefresh {
    let t0 = Instant::now();
    let mut panics = 0u32;
    let mut attempts = 0u32;
    let (result, retries) = retry_transient(cfg, || {
        if attempts > 0 {
            tracing::event("view.retry", pristine.name());
        }
        attempts += 1;
        // One `view.attempt` span per attempt: a retried view shows up as
        // several attempt samples but one refresh.
        let _attempt = tracing::span("view.attempt").enter();
        // AssertUnwindSafe: on panic the only state touched is the local
        // clone, which is discarded; `catalog` and `batch` are read-only.
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut view = pristine.clone();
            view.maintain_with(catalog, batch, exec)
                .map(|outcome| (view, outcome))
        })) {
            Ok(r) => r,
            Err(payload) => {
                panics += 1;
                Err(CoreError::ViewPanic {
                    view: pristine.name().to_string(),
                    message: panic_message(&*payload),
                })
            }
        }
    });
    ViewRefresh {
        result,
        retries,
        panics,
        took: t0.elapsed(),
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// Run `f` over `items` on `workers` scoped threads (round-robin
/// distribution), preserving input order in the result vector. A slot is
/// `None` iff its worker thread died without delivering a result — `f` is
/// expected to catch panics itself, so `None` marks a panic that escaped
/// even that boundary; callers must treat it as a failure, never unwrap it.
pub(crate) fn run_on_pool<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(|item| Some(f(item))).collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push((i, item));
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                s.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // A bucket whose thread panicked leaves its slots as None.
            if let Ok(results) = h.join() {
                for (i, r) in results {
                    slots[i] = Some(r);
                }
            }
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, DataType, Schema, Value};
    use std::sync::Arc as StdArc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = StdArc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "facts",
            Table::from_rows(
                schema,
                vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn pivot_plan() -> Plan {
        PlanBuilder::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .build()
    }

    fn small_config() -> ServeConfig {
        ServeConfig::builder()
            .workers(1)
            .max_pending_rows(1)
            .max_retries(0)
            .retry_backoff(Duration::ZERO)
            .retry_backoff_cap(Duration::ZERO)
            .quarantine_after(3)
            .exec_threads(1)
            .wal_fsync(FsyncPolicy::OnCommit)
            .build()
            .unwrap()
    }

    #[test]
    fn register_refresh_query_drop_cycle() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        assert_eq!(svc.view_names(), vec!["pv".to_string()]);

        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![3, "b", 7]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        let summary = svc.refresh_epoch().unwrap();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.views_refreshed, 1);
        assert_eq!(summary.quarantined_skipped, 0);
        assert!(svc.verify_all().unwrap());
        assert_eq!(svc.query_view("pv").unwrap().len(), 3);
        assert_eq!(svc.view_health("pv").unwrap(), ViewHealth::Healthy);

        svc.drop_view("pv").unwrap();
        assert!(svc.view_names().is_empty());
        assert!(svc.query_view("pv").is_err());
        assert!(svc.view_health("pv").is_err());
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        let s = svc.refresh_epoch().unwrap();
        assert_eq!(s.epoch, 0);
        assert_eq!(s.views_refreshed, 0);
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn unaffected_views_are_skipped() {
        let mut c = catalog();
        let other = StdArc::new(Schema::from_pairs_keyed(&[("k", DataType::Int)], &["k"]).unwrap());
        c.register("other", Table::from_rows(other, vec![row![1]]).unwrap())
            .unwrap();
        let svc = ViewService::new(c, ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        svc.register_view(
            "ov",
            PlanBuilder::scan("other")
                .select(Expr::col("k").gt(Expr::lit(0)))
                .build(),
        )
        .unwrap();

        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![9, "a", 1]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        let s = svc.refresh_epoch().unwrap();
        // Only the pivot view depends on `facts`.
        assert_eq!(s.views_refreshed, 1);
        let m = svc.metrics();
        assert_eq!(m.per_view["pv"].refreshes, 1);
        assert_eq!(m.per_view["ov"].refreshes, 0);
        assert!(svc.verify_all().unwrap());
    }

    #[test]
    fn ingest_unknown_table_errors() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        assert!(svc
            .ingest_with(
                "nope",
                Delta::from_inserts(vec![row![1]]),
                IngestOptions::default()
            )
            .is_err());
    }

    #[test]
    fn oversized_batch_passes_when_queue_empty() {
        let svc = ViewService::new(catalog(), small_config());
        // 3 rows > watermark of 1, but the queue is empty: must not block.
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![7, "a", 1], row![8, "a", 1], row![9, "b", 2]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        assert_eq!(svc.pending_rows(), 3);
    }

    #[test]
    fn non_blocking_ingest_rejects_at_watermark() {
        let svc = ViewService::new(catalog(), small_config());
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![7, "a", 1]]),
            IngestOptions::non_blocking(),
        )
        .unwrap();
        // Queue is now at the watermark (1 pending >= 1): rejected, and
        // nothing enqueued.
        let err = svc
            .ingest_with(
                "facts",
                Delta::from_inserts(vec![row![8, "a", 1]]),
                IngestOptions::non_blocking(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Backpressure {
                pending_rows: 1,
                watermark: 1
            }
        ));
        assert!(err.is_transient());
        assert_eq!(svc.pending_rows(), 1);
        assert_eq!(svc.metrics().ingest_rejects, 1);
        assert_eq!(svc.metrics().rows_ingested, 1);
    }

    #[test]
    fn bounded_ingest_rejects_after_deadline() {
        let svc = ViewService::new(catalog(), small_config());
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![7, "a", 1]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        let err = svc
            .ingest_with(
                "facts",
                Delta::from_inserts(vec![row![8, "a", 1]]),
                IngestOptions::bounded(Duration::from_millis(5)),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Backpressure { .. }));
        assert_eq!(svc.metrics().ingest_rejects, 1);

        // After draining, the same call goes through.
        svc.register_view("pv", pivot_plan()).unwrap();
        svc.refresh_epoch().unwrap();
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![8, "a", 1]]),
            IngestOptions::bounded(Duration::from_millis(5)),
        )
        .unwrap();
    }

    #[test]
    fn queue_coalescing_reaches_metrics() {
        let svc = ViewService::new(catalog(), ServeConfig::default());
        svc.register_view("pv", pivot_plan()).unwrap();
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![5, "a", 1]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        svc.ingest_with(
            "facts",
            Delta::from_deletes(vec![row![5, "a", 1]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        svc.refresh_epoch().unwrap();
        let m = svc.metrics();
        assert_eq!(m.rows_ingested, 2);
        assert_eq!(m.rows_drained_raw, 2);
        assert_eq!(m.rows_drained_coalesced, 0);
        assert_eq!(m.coalescing_ratio(), Some(0.0));
        // Fully cancelled: no epoch work happened.
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn run_on_pool_preserves_order() {
        let out = run_on_pool((0..17).collect::<Vec<i32>>(), 4, |x| x * 2);
        assert_eq!(out, (0..17).map(|x| Some(x * 2)).collect::<Vec<_>>());
        let out1 = run_on_pool(vec![5], 8, |x: i32| x + 1);
        assert_eq!(out1, vec![Some(6)]);
        let empty = run_on_pool(Vec::<i32>::new(), 3, |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn config_builder_validates() {
        let cfg = ServeConfig::builder()
            .workers(3)
            .shards(4)
            .heavy_key_threshold(100)
            .build()
            .unwrap();
        assert_eq!(cfg.workers(), 3);
        assert_eq!(cfg.sharding().shards, 4);
        assert_eq!(cfg.sharding().heavy_key_threshold, 100);

        // Zero-valued knobs that require at least 1 are rejected.
        for build in [
            ServeConfig::builder().workers(0),
            ServeConfig::builder().shards(0),
            ServeConfig::builder().max_pending_rows(0),
            ServeConfig::builder().quarantine_after(0),
            ServeConfig::builder().exec_threads(0),
        ] {
            assert!(matches!(
                build.build(),
                Err(CoreError::InvalidConfig { .. })
            ));
        }

        // The first violation wins over later ones.
        let err = ServeConfig::builder()
            .workers(0)
            .exec_threads(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { ref field, .. } if field == "workers"));

        // Cross-field validation: cap must be >= the initial backoff.
        let err = ServeConfig::builder()
            .retry_backoff(Duration::from_millis(50))
            .retry_backoff_cap(Duration::from_millis(10))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidConfig { ref field, .. } if field == "retry_backoff_cap")
        );
    }

    #[test]
    fn ingest_options_map_to_wait_modes() {
        assert_eq!(IngestOptions::default(), IngestOptions::blocking());
        assert!(IngestOptions::blocking().blocking);
        assert!(IngestOptions::blocking().timeout.is_none());
        assert!(!IngestOptions::non_blocking().blocking);
        let bounded = IngestOptions::bounded(Duration::from_millis(7));
        assert!(bounded.blocking);
        assert_eq!(bounded.timeout, Some(Duration::from_millis(7)));
    }

    #[test]
    fn retry_transient_respects_classification() {
        let cfg = ServeConfig::builder()
            .max_retries(3)
            .retry_backoff(Duration::ZERO)
            .retry_backoff_cap(Duration::ZERO)
            .build()
            .unwrap();
        // Transient error that succeeds on the third attempt.
        let mut attempts = 0;
        let (res, retries) = retry_transient(&cfg, || {
            attempts += 1;
            if attempts < 3 {
                Err(CoreError::Backpressure {
                    pending_rows: 1,
                    watermark: 1,
                })
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(retries, 2);

        // Permanent errors never retry.
        let mut attempts = 0;
        let (res, retries) = retry_transient(&cfg, || -> Result<()> {
            attempts += 1;
            Err(CoreError::UnknownView("v".into()))
        });
        assert!(res.is_err());
        assert_eq!(retries, 0);
        assert_eq!(attempts, 1);
    }
}
