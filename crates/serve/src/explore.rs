//! Deterministic schedule exploration for the serve tier's concurrency
//! protocols (DESIGN.md §"Concurrency analysis").
//!
//! Each suite models one protocol as a set of logical threads taking
//! *atomic steps* — the granularity a lock-protected critical section
//! really has — and drives every interleaving of those steps through
//! [`shuttle::explore`]. The spaces are small-scope by design (tens to
//! low thousands of schedules), so exploration is exhaustive: a passing
//! suite means *no* interleaving of those steps violates the invariant,
//! not just the ones a racy test happened to hit. A failing schedule
//! panics with a `SHUTTLE_NAME=… SHUTTLE_SCHEDULE=…` reproducer that
//! replays exactly one interleaving.
//!
//! Suites 1 and 2 run against the real [`IngestQueue`]; suites 3 and 4
//! model the sharded router/promotion protocols (the real ones fan out
//! through whole `ViewService` instances, too heavy for thousands of
//! replays) with the same step structure as `shard.rs`. The
//! deliberately-broken variants assert the explorer *finds* a known bug
//! and that the reported schedule replays it — the analogue of the
//! injected-cycle fixture in `gpivot-concurrency`.
//!
//! Under `--features shuttle` the `sched_*` tests additionally run the
//! *real* service types on real threads under the cooperative token
//! scheduler (the `sync` helpers yield through `shuttle::sched`),
//! sweeping seeds; failures print a `SHUTTLE_SEED=…` reproducer.

use crate::queue::IngestQueue;
use gpivot_storage::{row, Delta, Row};
use shuttle::{explore, ExploreConfig, ExploreReport};
use std::collections::HashMap;

fn cfg() -> ExploreConfig {
    ExploreConfig::default()
}

fn print_report(r: &ExploreReport) {
    println!("{r}");
}

// ---------------------------------------------------------------------
// Suite 1: ingest vs refresh on the real IngestQueue
// ---------------------------------------------------------------------

/// Producer ingests (with cancellation) racing one failing and one
/// succeeding epoch. Checks after *every* step that the coalesced
/// watermark never exceeds raw submissions and that
/// `raw == submitted − drained(net)` counts every producer row exactly
/// once; at quiescence the committed multiset must equal the ingested one.
#[test]
fn queue_ingest_vs_refresh_is_exact_under_all_interleavings() {
    // Producer steps (signed deltas; step 2 cancels step 1's row 1, step 4
    // cancels step 1's row 2 — possibly across a drain/restore boundary).
    let producer: Vec<Delta> = vec![
        Delta::from_inserts(vec![row![1], row![2]]),
        Delta::from_deletes(vec![row![1]]),
        Delta::from_inserts(vec![row![3]]),
        Delta::from_deletes(vec![row![2]]),
    ];
    let counts = [producer.len(), 4];
    let report = explore("queue-ingest-vs-refresh", &cfg(), &counts, |schedule| {
        let mut q = IngestQueue::new();
        let mut model: HashMap<Row, i64> = HashMap::new(); // ingested net
        let mut committed: HashMap<Row, i64> = HashMap::new();
        let mut submitted: u64 = 0;
        let mut in_flight = None; // drained but not yet committed/restored
        let mut committed_raw: u64 = 0;
        let mut p_step = 0;
        let mut r_step = 0;
        for &t in schedule {
            match t {
                0 => {
                    let d = producer[p_step].clone();
                    p_step += 1;
                    submitted += d.total_multiplicity();
                    for (r, w) in d.iter() {
                        *model.entry(r.clone()).or_default() += w;
                    }
                    q.ingest("t", d);
                }
                _ => {
                    match r_step {
                        0 | 2 => in_flight = Some(q.drain()),
                        1 => {
                            // Epoch failed: roll the drained batch back.
                            if let Some((batch, stats)) = in_flight.take() {
                                q.restore(&batch, stats);
                            }
                        }
                        _ => {
                            // Epoch committed.
                            if let Some((batch, stats)) = in_flight.take() {
                                for table in batch.tables() {
                                    if let Some(d) = batch.delta(table) {
                                        for (r, w) in d.iter() {
                                            *committed.entry(r.clone()).or_default() += w;
                                        }
                                    }
                                }
                                committed_raw += stats.raw_rows;
                            }
                        }
                    }
                    r_step += 1;
                }
            }
            let in_flight_raw = in_flight.as_ref().map_or(0, |(_, s)| s.raw_rows);
            let (raw, _) = q.watermarks();
            if q.pending_rows() > raw {
                return Err(format!(
                    "watermark invariant broken: pending {} > raw {raw}",
                    q.pending_rows()
                ));
            }
            if raw != submitted - in_flight_raw - committed_raw {
                return Err(format!(
                    "row conservation broken: raw {raw} != submitted {submitted} \
                     − in-flight {in_flight_raw} − committed {committed_raw}"
                ));
            }
        }
        // Quiesce: commit whatever is left, then compare multisets.
        let (batch, _) = q.drain();
        for table in batch.tables() {
            if let Some(d) = batch.delta(table) {
                for (r, w) in d.iter() {
                    *committed.entry(r.clone()).or_default() += w;
                }
            }
        }
        for (r, want) in &model {
            let got = committed.get(r).copied().unwrap_or(0);
            if got != *want {
                return Err(format!("row {r:?}: committed {got}, ingested {want}"));
            }
        }
        Ok(())
    });
    print_report(&report);
    assert!(report.exhaustive, "space must be explored exhaustively");
    assert_eq!(report.explored as u128, report.total_space);
    assert_eq!(report.total_space, 70); // C(8,4)
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Suite 2: stage/commit vs rollback vs readers in the view registry
// ---------------------------------------------------------------------

/// The epoch protocol `ViewService::refresh_epoch` follows: drain, stage
/// new view tables *outside* the registry write lock, then swap them in
/// as one commit. `broken` stages in place instead (mutating committed
/// state before the commit point) — the bug the staging buffer exists to
/// prevent.
struct EpochModel {
    queue: Vec<i64>,
    committed: i64,
    staged: Option<i64>,
    epoch: u64,
    /// Committed value per epoch — what a consistent reader may observe.
    history: Vec<i64>,
    broken: bool,
}

impl EpochModel {
    fn new(broken: bool) -> Self {
        EpochModel {
            queue: Vec::new(),
            committed: 0,
            staged: None,
            epoch: 0,
            history: vec![0],
            broken,
        }
    }

    fn step_epoch(&mut self, phase: usize) -> Result<(), String> {
        match phase {
            0 => {
                let batch: i64 = self.queue.drain(..).sum();
                if self.broken {
                    // Bug: apply to live state at stage time.
                    self.committed += batch;
                    self.staged = Some(batch);
                } else {
                    self.staged = Some(self.committed + batch);
                }
            }
            _ => {
                if let Some(s) = self.staged.take() {
                    if !self.broken {
                        self.committed = s;
                    }
                    self.epoch += 1;
                    self.history.push(self.committed);
                }
            }
        }
        Ok(())
    }

    fn read(&self) -> Result<(), String> {
        let want = self.history[self.epoch as usize];
        if self.committed != want {
            return Err(format!(
                "reader saw epoch {} with value {} (expected {want}): \
                 staged state leaked before commit",
                self.epoch, self.committed
            ));
        }
        Ok(())
    }
}

fn run_epoch_model(schedule: &[usize], broken: bool) -> Result<(), String> {
    let mut m = EpochModel::new(broken);
    let ingests = [3i64, 5, 7];
    let mut phase = 0usize; // epoch thread: stage,commit,stage,commit
    let mut p = 0usize;
    for &t in schedule {
        match t {
            0 => {
                m.step_epoch(phase % 2)?;
                phase += 1;
            }
            1 => {
                m.queue.push(ingests[p]);
                p += 1;
            }
            _ => m.read()?,
        }
    }
    Ok(())
}

#[test]
fn epoch_commit_is_atomic_to_readers_under_all_interleavings() {
    // 4 epoch steps (two stage/commit pairs), 3 ingests, 3 reads.
    let counts = [4, 3, 3];
    let report = explore("epoch-stage-commit", &cfg(), &counts, |s| {
        run_epoch_model(s, false)
    });
    print_report(&report);
    assert!(report.exhaustive);
    assert_eq!(report.total_space, 4_200); // 10!/(4!·3!·3!)
    report.assert_ok();
}

/// The explorer must *find* the stage-in-place bug, and the schedule it
/// reports must replay the failure deterministically — the reproducer
/// contract behind the `SHUTTLE_SCHEDULE` environment variable.
#[test]
fn stage_in_place_bug_is_found_and_replays() {
    let counts = [4, 3, 3];
    let report = explore("epoch-stage-in-place", &cfg(), &counts, |s| {
        run_epoch_model(s, true)
    });
    print_report(&report);
    let failure = report.failure.expect("explorer must find the staged leak");
    // The reported schedule replays the same invariant violation.
    let replayed = run_epoch_model(&failure.schedule, true);
    assert_eq!(replayed.err().as_deref(), Some(failure.message.as_str()));
    // And the reproducer string round-trips through the parser.
    let s = shuttle::format_schedule(&failure.schedule);
    assert_eq!(shuttle::parse_schedule(&s).unwrap(), failure.schedule);
}

// ---------------------------------------------------------------------
// Suite 3: router replicated → partitioned publish
// ---------------------------------------------------------------------

/// `register_sharded_locked`'s transition protocol: (a) publish the new
/// layout under the router write lock, (b) flush queued broadcasts,
/// (c) filter committed tables down to hash slices. Ingests hold the
/// router read lock across their whole fan-out, so each is one atomic
/// step routing by the placement it observed.
struct RouterModel {
    partitioned: bool,
    queued: [Vec<u32>; 2],
    committed: [Vec<u32>; 2],
}

impl RouterModel {
    fn new() -> Self {
        RouterModel {
            partitioned: false,
            queued: [Vec::new(), Vec::new()],
            committed: [Vec::new(), Vec::new()],
        }
    }

    fn owner(key: u32) -> usize {
        (key % 2) as usize
    }

    fn ingest(&mut self, key: u32) {
        if self.partitioned {
            self.queued[Self::owner(key)].push(key);
        } else {
            self.queued[0].push(key);
            self.queued[1].push(key);
        }
    }

    fn flush(&mut self) {
        for j in 0..2 {
            let drained: Vec<u32> = self.queued[j].drain(..).collect();
            self.committed[j].extend(drained);
        }
    }

    fn filter(&mut self) {
        for j in 0..2 {
            self.committed[j].retain(|k| Self::owner(*k) == j);
        }
    }

    fn check_exact(&self, keys: &[u32]) -> Result<(), String> {
        for &k in keys {
            let own = Self::owner(k);
            let on_owner = self.committed[own].iter().filter(|&&x| x == k).count();
            let elsewhere = self.committed[1 - own].iter().filter(|&&x| x == k).count();
            if on_owner != 1 || elsewhere != 0 {
                return Err(format!(
                    "key {k}: {on_owner} copies on owner shard {own}, \
                     {elsewhere} on the other — transition lost or duplicated rows"
                ));
            }
        }
        Ok(())
    }
}

fn run_router_model(schedule: &[usize], flush_before_filter: bool) -> Result<(), String> {
    let keys = [1u32, 2, 3];
    let mut m = RouterModel::new();
    let mut pub_step = 0;
    let mut p = 0;
    for &t in schedule {
        match t {
            0 => {
                match (pub_step, flush_before_filter) {
                    (0, _) => m.partitioned = true,
                    (1, true) => m.flush(),
                    (1, false) => m.filter(), // bug: filter sees stale tables
                    (_, true) => m.filter(),
                    (_, false) => m.flush(),
                }
                pub_step += 1;
            }
            _ => {
                m.ingest(keys[p]);
                p += 1;
            }
        }
    }
    m.flush(); // quiesce: commit any still-queued routed deltas
    m.check_exact(&keys)
}

#[test]
fn router_publish_transition_is_exact_under_all_interleavings() {
    let counts = [3, 3];
    let report = explore("router-publish", &cfg(), &counts, |s| {
        run_router_model(s, true)
    });
    print_report(&report);
    assert!(report.exhaustive);
    assert_eq!(report.total_space, 20); // C(6,3)
    report.assert_ok();
}

/// Reordering the transition (filter before flush) double-commits any
/// broadcast that was queued before the layout published — the explorer
/// must catch it and its schedule must replay.
#[test]
fn router_filter_before_flush_bug_is_found_and_replays() {
    let counts = [3, 3];
    let report = explore("router-filter-first", &cfg(), &counts, |s| {
        run_router_model(s, false)
    });
    print_report(&report);
    let failure = report
        .failure
        .expect("explorer must find the double-commit");
    let replayed = run_router_model(&failure.schedule, false);
    assert_eq!(replayed.err().as_deref(), Some(failure.message.as_str()));
}

// ---------------------------------------------------------------------
// Suite 4: heavy-key promotion vs concurrent ingest
// ---------------------------------------------------------------------

/// `promote_heavy_locked`'s exactly-once protocol. One hot key; rows are
/// numbered ingests of that key. Steps mirror the real sequence: scan
/// freq → mark heavy (router write lock) → park in `pending_promotions` →
/// flush → migrate (re-scan *committed* owner rows) → flush → unpark.
/// A failed flush leaves the key parked; the retry flushes *before*
/// re-scanning, which is what makes retries never double-move rows.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    Ins(u32),
    Del(u32),
}

struct PromotionModel {
    freq: u64,
    heavy: bool,
    parked: bool,
    owner_q: Vec<Op>,
    heavy_q: Vec<Op>,
    owner: Vec<u32>,
    heavy_rows: Vec<u32>,
}

impl PromotionModel {
    const THRESHOLD: u64 = 1;

    fn new() -> Self {
        PromotionModel {
            freq: 0,
            heavy: false,
            parked: false,
            owner_q: Vec::new(),
            heavy_q: Vec::new(),
            owner: Vec::new(),
            heavy_rows: Vec::new(),
        }
    }

    /// Atomic ingest of one row of the hot key: routed by the placement
    /// observed under the router read lock, frequency counted.
    fn ingest(&mut self, id: u32) {
        self.freq += 1;
        if self.heavy {
            self.heavy_q.push(Op::Ins(id));
        } else {
            self.owner_q.push(Op::Ins(id));
        }
    }

    fn apply(committed: &mut Vec<u32>, ops: Vec<Op>) {
        for op in ops {
            match op {
                Op::Ins(id) => committed.push(id),
                Op::Del(id) => {
                    if let Some(i) = committed.iter().position(|&x| x == id) {
                        committed.remove(i);
                    }
                }
            }
        }
    }

    fn flush(&mut self) {
        let o: Vec<Op> = self.owner_q.drain(..).collect();
        Self::apply(&mut self.owner, o);
        let h: Vec<Op> = self.heavy_q.drain(..).collect();
        Self::apply(&mut self.heavy_rows, h);
    }

    fn scan_and_mark(&mut self) {
        if self.parked || (self.freq >= Self::THRESHOLD && !self.heavy) {
            self.heavy = true;
            self.parked = true;
        }
    }

    /// Re-scan *committed* owner rows and enqueue the move. Scanning
    /// committed (not queued) state is what makes retries idempotent.
    fn migrate(&mut self) {
        if !self.parked {
            return;
        }
        for &id in &self.owner.clone() {
            self.heavy_q.push(Op::Ins(id));
            self.owner_q.push(Op::Del(id));
        }
    }

    fn unpark(&mut self) {
        if self.parked {
            self.parked = false;
            self.freq = 0;
        }
    }

    /// One full promoter round, as `refresh_epoch` would run it.
    fn promoter_round(&mut self) {
        self.scan_and_mark();
        self.flush();
        self.migrate();
        self.flush();
        self.unpark();
    }

    fn check_exactly_once(&self, ingested: u32) -> Result<(), String> {
        if !self.owner.is_empty() {
            return Err(format!(
                "{} promoted-key rows still on the hash shard after migration",
                self.owner.len()
            ));
        }
        for id in 0..ingested {
            let n = self.heavy_rows.iter().filter(|&&x| x == id).count();
            if n != 1 {
                return Err(format!(
                    "row {id} committed {n} times on the heavy shard (want exactly 1)"
                ));
            }
        }
        if !self.parked {
            Ok(())
        } else {
            Err("promotion left parked after quiescence".into())
        }
    }
}

fn quiesce_and_check(mut m: PromotionModel, ingested: u32) -> Result<(), String> {
    // Producers have stopped; run promoter rounds to a fixed point, as a
    // real deployment's trailing refresh epochs would.
    m.promoter_round();
    m.promoter_round();
    m.check_exactly_once(ingested)
}

#[test]
fn promotion_vs_ingest_applies_exactly_once_under_all_interleavings() {
    // Promoter: scan+mark, flush, migrate, flush, unpark (one epoch's
    // promotion pass, each phase atomic under its documented lock).
    let counts = [5, 3];
    let report = explore("promotion-vs-ingest", &cfg(), &counts, |schedule| {
        let mut m = PromotionModel::new();
        let mut phase = 0;
        let mut p = 0u32;
        for &t in schedule {
            match t {
                0 => {
                    match phase {
                        0 => m.scan_and_mark(),
                        1 | 3 => m.flush(),
                        2 => m.migrate(),
                        _ => m.unpark(),
                    }
                    phase += 1;
                }
                _ => {
                    m.ingest(p);
                    p += 1;
                }
            }
        }
        quiesce_and_check(m, p)
    });
    print_report(&report);
    assert!(report.exhaustive);
    assert_eq!(report.total_space, 56); // C(8,3)
    report.assert_ok();
}

/// A promotion epoch whose final flush fails leaves the key parked in
/// `pending_promotions`; the retry round must not double-move rows. The
/// failed flush is modeled faithfully: the drained batch is restored, so
/// the queued move ops survive to the retry (which flushes them *before*
/// re-scanning committed state).
#[test]
fn promotion_retry_after_failed_epoch_never_double_moves() {
    // Promoter: scan+mark, flush, migrate, [flush FAILS → still parked],
    // then the retry round: flush, migrate, flush, unpark.
    let counts = [8, 2];
    let report = explore("promotion-retry", &cfg(), &counts, |schedule| {
        let mut m = PromotionModel::new();
        let mut phase = 0;
        let mut p = 0u32;
        for &t in schedule {
            match t {
                0 => {
                    match phase {
                        0 => m.scan_and_mark(),
                        1 | 4 | 6 => m.flush(),
                        2 => m.migrate(),
                        3 => {} // flush fails: batch restored, queues intact
                        5 => m.migrate(),
                        _ => m.unpark(),
                    }
                    phase += 1;
                }
                _ => {
                    m.ingest(p);
                    p += 1;
                }
            }
        }
        quiesce_and_check(m, p)
    });
    print_report(&report);
    assert!(report.exhaustive);
    assert_eq!(report.total_space, 45); // C(10,2)
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Real-thread scheduling: the actual service under the token scheduler
// ---------------------------------------------------------------------

#[cfg(feature = "shuttle")]
mod sched {
    use crate::{IngestOptions, ServeConfig, ShardedService, ViewService};
    use gpivot_algebra::{PivotSpec, Plan, PlanBuilder};
    use gpivot_storage::{row, Catalog, DataType, Delta, Schema, Table, Value};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        c.register(
            "facts",
            Table::from_rows(schema, vec![row![1, "a", 10], row![2, "b", 20]]).unwrap(),
        )
        .unwrap();
        c
    }

    fn pivot_plan() -> Plan {
        PlanBuilder::scan("facts")
            .gpivot(PivotSpec::simple(
                "attr",
                "val",
                vec![Value::str("a"), Value::str("b")],
            ))
            .build()
    }

    // `workers(1)` keeps refresh on the calling (scheduled) thread: the
    // pool inlines single-worker runs, so every lock acquisition in the
    // run happens on a token-holding thread.
    fn cfg() -> ServeConfig {
        ServeConfig::builder()
            .workers(1)
            .exec_threads(1)
            .build()
            .unwrap()
    }

    fn deltas() -> Vec<Delta> {
        vec![
            Delta::from_inserts(vec![row![3, "a", 1], row![4, "b", 2]]),
            Delta::from_deletes(vec![row![1, "a", 10]]),
            Delta::from_inserts(vec![row![5, "a", 3]]),
        ]
    }

    /// Ingest vs refresh on a real `ViewService`, all lock acquisitions
    /// serialized by the seeded token scheduler. Every seed must converge
    /// to the single-threaded oracle after a trailing refresh.
    #[test]
    fn sched_ingest_vs_refresh_converges_for_every_seed() {
        let oracle = ViewService::new(catalog(), cfg());
        oracle.register_view("pv", pivot_plan()).unwrap();
        for d in deltas() {
            oracle
                .ingest_with("facts", d, IngestOptions::blocking())
                .unwrap();
        }
        oracle.refresh_epoch().unwrap();
        let want = oracle.query_view("pv").unwrap();

        let seeds = shuttle::sched::seeds(0..24);
        let mut total_yields = 0;
        for seed in seeds {
            let svc = ViewService::new(catalog(), cfg());
            svc.register_view("pv", pivot_plan()).unwrap();
            let opts = shuttle::sched::RunOptions {
                seed,
                ..Default::default()
            };
            let report = shuttle::sched::run(
                &opts,
                vec![
                    Box::new(|| {
                        for d in deltas() {
                            svc.ingest_with("facts", d, IngestOptions::blocking())
                                .unwrap();
                        }
                    }),
                    Box::new(|| {
                        svc.refresh_epoch().unwrap();
                        svc.refresh_epoch().unwrap();
                    }),
                ],
            );
            total_yields += report.yields;
            svc.refresh_epoch().unwrap();
            let got = svc.query_view("pv").unwrap();
            assert!(
                got.bag_eq(&want),
                "seed {seed}: diverged from oracle\n got: {:?}\nwant: {:?}",
                got.sorted_rows(),
                want.sorted_rows()
            );
        }
        println!("sched[ingest-vs-refresh]: swept seeds, {total_yields} total yields");
    }

    /// Heavy-key promotion racing `ingest_with` on a real sharded
    /// service: the hot key's rows must stay exact (vs the oracle) and
    /// the key must end up promoted, for every scheduler seed.
    #[test]
    fn sched_promotion_vs_ingest_with_stays_exact_for_every_seed() {
        fn shard_cfg() -> ServeConfig {
            ServeConfig::builder()
                .workers(1)
                .exec_threads(1)
                .shards(2)
                .heavy_key_threshold(2)
                .build()
                .unwrap()
        }
        fn hot_deltas() -> Vec<Delta> {
            // Updates of the hot key (1): delete+insert pairs keep the
            // (id, attr) primary key unique while driving the key's
            // delta-row frequency over the promotion threshold.
            let mut d1 = Delta::from_deletes(vec![row![1, "a", 10]]);
            d1.merge(&Delta::from_inserts(vec![row![1, "a", 11]]));
            let mut d2 = Delta::from_deletes(vec![row![1, "a", 11]]);
            d2.merge(&Delta::from_inserts(vec![row![1, "a", 12]]));
            vec![d1, d2, Delta::from_inserts(vec![row![5, "b", 9]])]
        }

        let oracle = ViewService::new(catalog(), cfg());
        oracle.register_view("pv", pivot_plan()).unwrap();
        for d in hot_deltas() {
            oracle
                .ingest_with("facts", d, IngestOptions::blocking())
                .unwrap();
        }
        oracle.refresh_epoch().unwrap();
        let want = oracle.query_view("pv").unwrap();

        for seed in shuttle::sched::seeds(0..16) {
            let svc = ShardedService::new(catalog(), shard_cfg());
            svc.register_view("pv", pivot_plan()).unwrap();
            let opts = shuttle::sched::RunOptions {
                seed,
                ..Default::default()
            };
            shuttle::sched::run(
                &opts,
                vec![
                    Box::new(|| {
                        for d in hot_deltas() {
                            svc.ingest_with("facts", d, IngestOptions::blocking())
                                .unwrap();
                        }
                    }),
                    Box::new(|| {
                        // Promotion runs inside refresh_epoch once freq
                        // crosses the threshold.
                        svc.refresh_epoch().unwrap();
                        svc.refresh_epoch().unwrap();
                    }),
                ],
            );
            svc.refresh_epoch().unwrap();
            svc.refresh_epoch().unwrap();
            let got = svc.query_view("pv").unwrap();
            assert!(
                got.bag_eq(&want),
                "seed {seed}: sharded diverged from oracle\n got: {:?}\nwant: {:?}",
                got.sorted_rows(),
                want.sorted_rows()
            );
            assert!(
                svc.verify_all().unwrap(),
                "seed {seed}: full recompute check"
            );
            assert!(
                svc.heavy_keys()
                    .iter()
                    .any(|(t, c, v)| t == "facts" && c == "id" && *v == Value::Int(1)),
                "seed {seed}: hot key must be promoted after quiescence"
            );
        }
    }
}
