//! The coalescing ingestion queue: per-table signed-multiset accumulators
//! with incremental row accounting, drained once per epoch.

use gpivot_core::SourceDeltas;
use gpivot_storage::Delta;
use std::collections::HashMap;

/// What one epoch drained out of the queue.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DrainStats {
    /// Row changes as submitted by producers (before cancellation).
    pub raw_rows: u64,
    /// Row changes actually handed to the refresh (after cancellation).
    pub coalesced_rows: u64,
    /// Producer batches folded into this epoch.
    pub batches: u64,
}

/// Pending source deltas, coalesced per table.
///
/// Coalescing is the signed-multiset merge: multiplicities add, and a +1/−1
/// pair for the same row cancels to nothing. `pending_rows` is maintained
/// incrementally (per-row `|m+w| − |m|` adjustments during the merge), so
/// the backpressure check in `ViewService::ingest` is O(1).
#[derive(Debug, Default)]
pub(crate) struct IngestQueue {
    pending: HashMap<String, Delta>,
    pending_rows: u64,
    raw_rows: u64,
    batches: u64,
}

impl IngestQueue {
    pub fn new() -> Self {
        IngestQueue::default()
    }

    /// Fold a producer batch into the per-table accumulator.
    pub fn ingest(&mut self, table: &str, delta: Delta) {
        self.raw_rows += delta.total_multiplicity();
        self.batches += 1;
        self.merge(table, delta);
    }

    /// Put a drained batch back, as if the drain never happened (epoch
    /// rollback). The per-row merge is identical to [`IngestQueue::ingest`],
    /// but the raw-row/batch counters are restored from the drain's own
    /// [`DrainStats`] rather than re-counted — producer submissions must be
    /// counted exactly once no matter how many times an epoch rolls back,
    /// or the `rows_ingested − rows_drained_raw = pending` reconciliation
    /// in [`crate::MetricsSnapshot`] drifts.
    pub fn restore(&mut self, batch: &gpivot_core::SourceDeltas, stats: DrainStats) {
        let tables: Vec<String> = batch.tables().map(String::from).collect();
        for t in tables {
            if let Some(d) = batch.delta(&t) {
                self.merge(&t, d.clone());
            }
        }
        self.raw_rows += stats.raw_rows;
        self.batches += stats.batches;
    }

    /// Signed-multiset merge with incremental `pending_rows` accounting.
    fn merge(&mut self, table: &str, delta: Delta) {
        let entry = self.pending.entry(table.to_string()).or_default();
        let mut change: i64 = 0;
        for (row, w) in delta.into_counts() {
            let m = entry.multiplicity(&row);
            change += (m + w).abs() - m.abs();
            entry.add(row, w);
        }
        // `change` may be negative (cancellation), but never below
        // `-pending_rows`: each per-row adjustment is bounded by that row's
        // current |m|. A bare `as u64` cast would wrap a violation of this
        // invariant into ~2^64 pending rows and jam backpressure forever,
        // so check in debug builds and saturate in release.
        let next = self.pending_rows as i64 + change;
        debug_assert!(
            next >= 0,
            "pending_rows underflow: {} + {change} < 0",
            self.pending_rows
        );
        self.pending_rows = u64::try_from(next).unwrap_or(0);
    }

    /// Coalesced row changes currently pending (the watermark quantity).
    pub fn pending_rows(&self) -> u64 {
        self.pending_rows
    }

    /// True iff nothing is pending (fully-cancelled tables count as empty).
    pub fn is_empty(&self) -> bool {
        self.pending_rows == 0
    }

    /// Estimated bytes held by pending deltas (observability only).
    pub fn estimate_bytes(&self) -> usize {
        self.pending.values().map(Delta::estimate_bytes).sum()
    }

    /// Move everything out as one refresh batch, resetting the counters.
    pub fn drain(&mut self) -> (SourceDeltas, DrainStats) {
        let stats = DrainStats {
            raw_rows: self.raw_rows,
            coalesced_rows: self.pending_rows,
            batches: self.batches,
        };
        let mut batch = SourceDeltas::new();
        for (table, delta) in self.pending.drain() {
            if !delta.is_empty() {
                batch.absorb_delta(table, delta);
            }
        }
        self.pending_rows = 0;
        self.raw_rows = 0;
        self.batches = 0;
        (batch, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::row;

    #[test]
    fn coalescing_cancels_and_accounts() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2]]));
        assert_eq!(q.pending_rows(), 2);
        q.ingest("t", Delta::from_deletes(vec![row![1]]));
        // +1 and −1 of row 1 cancel: only row 2 remains pending.
        assert_eq!(q.pending_rows(), 1);
        assert!(!q.is_empty());

        let (batch, stats) = q.drain();
        assert_eq!(stats.raw_rows, 3);
        assert_eq!(stats.coalesced_rows, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(batch.delta("t").unwrap().multiplicity(&row![2]), 1);
        assert_eq!(batch.delta("t").unwrap().multiplicity(&row![1]), 0);
        assert!(q.is_empty());
        assert_eq!(q.pending_rows(), 0);
    }

    #[test]
    fn fully_cancelled_batch_drains_empty() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![7]]));
        q.ingest("t", Delta::from_deletes(vec![row![7]]));
        assert!(q.is_empty());
        let (batch, stats) = q.drain();
        assert!(batch.is_empty());
        assert_eq!(stats.raw_rows, 2);
        assert_eq!(stats.coalesced_rows, 0);
    }

    #[test]
    fn restore_round_trips_drain() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2]]));
        q.ingest("t", Delta::from_deletes(vec![row![1]]));
        let (batch, stats) = q.drain();
        assert!(q.is_empty());

        q.restore(&batch, stats);
        assert_eq!(q.pending_rows(), 1);
        // A second drain reports the same raw/coalesced/batch totals as the
        // first: rollback does not double-count producer submissions.
        let (batch2, stats2) = q.drain();
        assert_eq!(stats2.raw_rows, stats.raw_rows);
        assert_eq!(stats2.coalesced_rows, stats.coalesced_rows);
        assert_eq!(stats2.batches, stats.batches);
        assert_eq!(batch2.delta("t").unwrap().multiplicity(&row![2]), 1);
    }

    /// Regression: a rollback-restore followed by cancelling ingests used
    /// to drive the `as u64` cast in `merge` through a negative
    /// intermediate, wrapping `pending_rows` to ~2^64 and jamming
    /// backpressure. The sequence below exercises every negative-`change`
    /// path: cancellation against restored rows, then full cancellation
    /// down to exactly zero.
    #[test]
    fn restore_then_cancel_never_wraps_pending_rows() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2], row![3]]));
        let (batch, stats) = q.drain();
        assert_eq!(q.pending_rows(), 0);

        // Epoch fails → rollback puts the batch back.
        q.restore(&batch, stats);
        assert_eq!(q.pending_rows(), 3);

        // Producers cancel the restored rows one table-batch at a time;
        // every step shrinks the watermark without wrapping.
        q.ingest("t", Delta::from_deletes(vec![row![1], row![2]]));
        assert_eq!(q.pending_rows(), 1);
        assert!(q.pending_rows() < u64::MAX / 2, "pending_rows wrapped");
        q.ingest("t", Delta::from_deletes(vec![row![3]]));
        assert_eq!(q.pending_rows(), 0);
        assert!(q.is_empty());

        // And the queue still works after hitting the floor.
        q.ingest("t", Delta::from_inserts(vec![row![9]]));
        assert_eq!(q.pending_rows(), 1);
        let (batch2, _) = q.drain();
        assert_eq!(batch2.delta("t").unwrap().multiplicity(&row![9]), 1);
    }

    #[test]
    fn tables_accumulate_independently() {
        let mut q = IngestQueue::new();
        q.ingest("a", Delta::from_inserts(vec![row![1]]));
        q.ingest("b", Delta::from_deletes(vec![row![1]]));
        assert_eq!(q.pending_rows(), 2);
        let (batch, _) = q.drain();
        assert_eq!(batch.delta("a").unwrap().multiplicity(&row![1]), 1);
        assert_eq!(batch.delta("b").unwrap().multiplicity(&row![1]), -1);
    }
}
