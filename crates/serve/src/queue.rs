//! The coalescing ingestion queue: per-table signed-multiset accumulators
//! with incremental row accounting, drained once per epoch.

use gpivot_core::SourceDeltas;
use gpivot_storage::Delta;
use std::collections::HashMap;

/// What one epoch drained out of the queue.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DrainStats {
    /// Row changes as submitted by producers (before cancellation).
    pub raw_rows: u64,
    /// Row changes actually handed to the refresh (after cancellation).
    pub coalesced_rows: u64,
    /// Producer batches folded into this epoch.
    pub batches: u64,
}

/// Pending source deltas, coalesced per table.
///
/// Coalescing is the signed-multiset merge: multiplicities add, and a +1/−1
/// pair for the same row cancels to nothing. `pending_rows` is maintained
/// incrementally (per-row `|m+w| − |m|` adjustments during the merge), so
/// the backpressure check in `ViewService::ingest` is O(1).
#[derive(Debug, Default)]
pub(crate) struct IngestQueue {
    pending: HashMap<String, Delta>,
    pending_rows: u64,
    raw_rows: u64,
    batches: u64,
}

impl IngestQueue {
    pub fn new() -> Self {
        IngestQueue::default()
    }

    /// Fold a producer batch into the per-table accumulator.
    pub fn ingest(&mut self, table: &str, delta: Delta) {
        self.raw_rows += delta.total_multiplicity();
        self.batches += 1;
        self.merge(table, delta);
    }

    /// Put a drained batch back, as if the drain never happened (epoch
    /// rollback). The per-row merge is identical to [`IngestQueue::ingest`],
    /// but the raw-row/batch counters are restored from the drain's own
    /// [`DrainStats`] rather than re-counted — producer submissions must be
    /// counted exactly once no matter how many times an epoch rolls back,
    /// or the `rows_ingested − rows_drained_raw = pending` reconciliation
    /// in [`crate::MetricsSnapshot`] drifts.
    ///
    /// This holds even for a *partial* drain history: producers may keep
    /// ingesting between the drain and the restore (the queue lock is not
    /// held across an epoch), so at every point
    /// `raw_rows == Σ ingested − Σ drained + Σ restored` counts each
    /// producer row exactly once, and `pending_rows ≤ raw_rows` — the
    /// coalesced watermark can only shrink submissions, never invent them.
    /// Both invariants are debug-asserted here and checked exhaustively by
    /// the `proptest` interleaving test below.
    pub fn restore(&mut self, batch: &gpivot_core::SourceDeltas, stats: DrainStats) {
        let tables: Vec<String> = batch.tables().map(String::from).collect();
        for t in tables {
            if let Some(d) = batch.delta(&t) {
                self.merge(&t, d.clone());
            }
        }
        self.raw_rows += stats.raw_rows;
        self.batches += stats.batches;
        debug_assert!(
            stats.coalesced_rows <= stats.raw_rows,
            "drain stats corrupt: coalesced {} > raw {}",
            stats.coalesced_rows,
            stats.raw_rows
        );
        debug_assert!(
            self.pending_rows <= self.raw_rows,
            "restore broke the watermark invariant: pending {} > raw {}",
            self.pending_rows,
            self.raw_rows
        );
    }

    /// Signed-multiset merge with incremental `pending_rows` accounting.
    fn merge(&mut self, table: &str, delta: Delta) {
        let entry = self.pending.entry(table.to_string()).or_default();
        let mut change: i64 = 0;
        for (row, w) in delta.into_counts() {
            let m = entry.multiplicity(&row);
            change += (m + w).abs() - m.abs();
            entry.add(row, w);
        }
        // `change` may be negative (cancellation), but never below
        // `-pending_rows`: each per-row adjustment is bounded by that row's
        // current |m|. A bare `as u64` cast would wrap a violation of this
        // invariant into ~2^64 pending rows and jam backpressure forever,
        // so check in debug builds and saturate in release.
        let next = self.pending_rows as i64 + change;
        debug_assert!(
            next >= 0,
            "pending_rows underflow: {} + {change} < 0",
            self.pending_rows
        );
        self.pending_rows = u64::try_from(next).unwrap_or(0);
    }

    /// Coalesced row changes currently pending (the watermark quantity).
    pub fn pending_rows(&self) -> u64 {
        self.pending_rows
    }

    /// True iff nothing is pending (fully-cancelled tables count as empty).
    pub fn is_empty(&self) -> bool {
        self.pending_rows == 0
    }

    /// Estimated bytes held by pending deltas (observability only).
    pub fn estimate_bytes(&self) -> usize {
        self.pending.values().map(Delta::estimate_bytes).sum()
    }

    /// Clone the pending per-table deltas, in table-name order, skipping
    /// fully-cancelled tables. This is what a checkpoint persists.
    pub fn snapshot_pending(&self) -> Vec<(String, Delta)> {
        let mut out: Vec<(String, Delta)> = self
            .pending
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(t, d)| (t.clone(), d.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The lifetime watermarks `(raw_rows, batches)`: producer row changes
    /// and batches submitted but not yet drained into a committed epoch.
    pub fn watermarks(&self) -> (u64, u64) {
        (self.raw_rows, self.batches)
    }

    /// Rebuild the queue from recovered state (checkpoint + WAL replay).
    /// Replaces everything; `raw_rows`/`batches` are the recovered
    /// watermarks, which must dominate the coalesced pending size.
    pub fn restore_state(&mut self, pending: Vec<(String, Delta)>, raw_rows: u64, batches: u64) {
        self.pending.clear();
        self.pending_rows = 0;
        for (table, delta) in pending {
            self.merge(&table, delta);
        }
        self.raw_rows = raw_rows;
        self.batches = batches;
        debug_assert!(
            self.pending_rows <= self.raw_rows,
            "recovered state inconsistent: pending {} > raw {}",
            self.pending_rows,
            self.raw_rows
        );
    }

    /// Move everything out as one refresh batch, resetting the counters.
    pub fn drain(&mut self) -> (SourceDeltas, DrainStats) {
        let stats = DrainStats {
            raw_rows: self.raw_rows,
            coalesced_rows: self.pending_rows,
            batches: self.batches,
        };
        let mut batch = SourceDeltas::new();
        for (table, delta) in self.pending.drain() {
            if !delta.is_empty() {
                batch.absorb_delta(table, delta);
            }
        }
        self.pending_rows = 0;
        self.raw_rows = 0;
        self.batches = 0;
        (batch, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::row;

    #[test]
    fn coalescing_cancels_and_accounts() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2]]));
        assert_eq!(q.pending_rows(), 2);
        q.ingest("t", Delta::from_deletes(vec![row![1]]));
        // +1 and −1 of row 1 cancel: only row 2 remains pending.
        assert_eq!(q.pending_rows(), 1);
        assert!(!q.is_empty());

        let (batch, stats) = q.drain();
        assert_eq!(stats.raw_rows, 3);
        assert_eq!(stats.coalesced_rows, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(batch.delta("t").unwrap().multiplicity(&row![2]), 1);
        assert_eq!(batch.delta("t").unwrap().multiplicity(&row![1]), 0);
        assert!(q.is_empty());
        assert_eq!(q.pending_rows(), 0);
    }

    #[test]
    fn fully_cancelled_batch_drains_empty() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![7]]));
        q.ingest("t", Delta::from_deletes(vec![row![7]]));
        assert!(q.is_empty());
        let (batch, stats) = q.drain();
        assert!(batch.is_empty());
        assert_eq!(stats.raw_rows, 2);
        assert_eq!(stats.coalesced_rows, 0);
    }

    #[test]
    fn restore_round_trips_drain() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2]]));
        q.ingest("t", Delta::from_deletes(vec![row![1]]));
        let (batch, stats) = q.drain();
        assert!(q.is_empty());

        q.restore(&batch, stats);
        assert_eq!(q.pending_rows(), 1);
        // A second drain reports the same raw/coalesced/batch totals as the
        // first: rollback does not double-count producer submissions.
        let (batch2, stats2) = q.drain();
        assert_eq!(stats2.raw_rows, stats.raw_rows);
        assert_eq!(stats2.coalesced_rows, stats.coalesced_rows);
        assert_eq!(stats2.batches, stats.batches);
        assert_eq!(batch2.delta("t").unwrap().multiplicity(&row![2]), 1);
    }

    /// Regression: a rollback-restore followed by cancelling ingests used
    /// to drive the `as u64` cast in `merge` through a negative
    /// intermediate, wrapping `pending_rows` to ~2^64 and jamming
    /// backpressure. The sequence below exercises every negative-`change`
    /// path: cancellation against restored rows, then full cancellation
    /// down to exactly zero.
    #[test]
    fn restore_then_cancel_never_wraps_pending_rows() {
        let mut q = IngestQueue::new();
        q.ingest("t", Delta::from_inserts(vec![row![1], row![2], row![3]]));
        let (batch, stats) = q.drain();
        assert_eq!(q.pending_rows(), 0);

        // Epoch fails → rollback puts the batch back.
        q.restore(&batch, stats);
        assert_eq!(q.pending_rows(), 3);

        // Producers cancel the restored rows one table-batch at a time;
        // every step shrinks the watermark without wrapping.
        q.ingest("t", Delta::from_deletes(vec![row![1], row![2]]));
        assert_eq!(q.pending_rows(), 1);
        assert!(q.pending_rows() < u64::MAX / 2, "pending_rows wrapped");
        q.ingest("t", Delta::from_deletes(vec![row![3]]));
        assert_eq!(q.pending_rows(), 0);
        assert!(q.is_empty());

        // And the queue still works after hitting the floor.
        q.ingest("t", Delta::from_inserts(vec![row![9]]));
        assert_eq!(q.pending_rows(), 1);
        let (batch2, _) = q.drain();
        assert_eq!(batch2.delta("t").unwrap().multiplicity(&row![9]), 1);
    }

    #[test]
    fn tables_accumulate_independently() {
        let mut q = IngestQueue::new();
        q.ingest("a", Delta::from_inserts(vec![row![1]]));
        q.ingest("b", Delta::from_deletes(vec![row![1]]));
        assert_eq!(q.pending_rows(), 2);
        let (batch, _) = q.drain();
        assert_eq!(batch.delta("a").unwrap().multiplicity(&row![1]), 1);
        assert_eq!(batch.delta("b").unwrap().multiplicity(&row![1]), -1);
    }

    #[test]
    fn snapshot_and_restore_state_round_trip() {
        let mut q = IngestQueue::new();
        q.ingest("a", Delta::from_inserts(vec![row![1], row![2]]));
        q.ingest("b", Delta::from_deletes(vec![row![5]]));
        q.ingest("a", Delta::from_deletes(vec![row![2]])); // cancels
        let snap = q.snapshot_pending();
        let (raw, batches) = q.watermarks();
        assert_eq!((raw, batches), (4, 3));
        // Sorted by table, cancelled rows dropped.
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[0].1.multiplicity(&row![1]), 1);
        assert_eq!(snap[0].1.multiplicity(&row![2]), 0);
        assert_eq!(snap[1].1.multiplicity(&row![5]), -1);

        let mut q2 = IngestQueue::new();
        q2.restore_state(snap, raw, batches);
        assert_eq!(q2.pending_rows(), q.pending_rows());
        assert_eq!(q2.watermarks(), q.watermarks());
        assert_eq!(q2.estimate_bytes(), q.estimate_bytes());
    }

    mod conservation {
        //! Satellite of PR 7: exhaustive check that interleaved
        //! ingest/drain/restore sequences keep the service-level
        //! reconciliation `rows_ingested − rows_drained(net) = pending raw`
        //! exact, and the incremental coalesced accounting equal to a
        //! from-scratch recount.
        use super::*;
        use gpivot_core::SourceDeltas;
        use gpivot_storage::Row;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            /// Ingest into table index 0/1 a batch of (value, sign) rows.
            Ingest(u8, Vec<(u8, u8)>),
            Drain,
            /// Restore the n-th (mod len) outstanding drained batch.
            Restore(u8),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0..2u8, prop::collection::vec((0..4u8, 0..2u8), 0..6))
                    .prop_map(|(t, rows)| Op::Ingest(t, rows)),
                Just(Op::Drain),
                (0..8u8).prop_map(Op::Restore),
            ]
        }

        fn table_name(i: u8) -> &'static str {
            if i == 0 {
                "a"
            } else {
                "b"
            }
        }

        /// Recount the coalesced pending size from a reference multiset.
        fn recount(model: &HashMap<(String, Row), i64>) -> u64 {
            model.values().map(|m| m.unsigned_abs()).sum()
        }

        /// An outstanding drain: (batch, stats, model at drain time).
        type Drained = (SourceDeltas, DrainStats, HashMap<(String, Row), i64>);

        proptest! {
            #[test]
            fn interleaved_drain_restore_conserves_rows(
                ops in prop::collection::vec(arb_op(), 1..40)
            ) {
                let mut q = IngestQueue::new();
                // Reference multiset maintained naively.
                let mut model: HashMap<(String, Row), i64> = HashMap::new();
                let mut outstanding: Vec<Drained> = Vec::new();
                let mut submitted: u64 = 0; // all producer rows ever ingested
                let mut drained_net: i64 = 0; // drains minus restores, raw rows

                for op in ops {
                    match op {
                        Op::Ingest(t, rows) => {
                            let table = table_name(t);
                            let mut delta = Delta::new();
                            for (v, sign) in rows {
                                let w = if sign == 0 { 1 } else { -1 };
                                delta.add(row![i64::from(v)], w);
                                *model.entry((table.to_string(), row![i64::from(v)])).or_default() += w;
                            }
                            submitted += delta.total_multiplicity();
                            q.ingest(table, delta);
                        }
                        Op::Drain => {
                            let (batch, stats) = q.drain();
                            drained_net += stats.raw_rows as i64;
                            // Drained batch content must match the model's
                            // nonzero entries.
                            for ((table, r), m) in &model {
                                let got = batch.delta(table).map_or(0, |d| d.multiplicity(r));
                                prop_assert_eq!(got, *m, "drain mismatch for {}/{:?}", table, r);
                            }
                            outstanding.push((batch, stats, std::mem::take(&mut model)));
                        }
                        Op::Restore(n) => {
                            if outstanding.is_empty() {
                                continue;
                            }
                            let idx = usize::from(n) % outstanding.len();
                            let (batch, stats, drained_model) = outstanding.remove(idx);
                            drained_net -= stats.raw_rows as i64;
                            for (k, m) in drained_model {
                                *model.entry(k).or_default() += m;
                            }
                            q.restore(&batch, stats);
                        }
                    }
                    // Conservation: every producer row is counted exactly
                    // once, no matter how drains and restores interleave.
                    prop_assert_eq!(
                        i64::try_from(q.watermarks().0).unwrap(),
                        i64::try_from(submitted).unwrap() - drained_net
                    );
                    // Incremental coalesced accounting == full recount.
                    prop_assert_eq!(q.pending_rows(), recount(&model));
                    // The coalesced watermark never exceeds raw submissions.
                    prop_assert!(q.pending_rows() <= q.watermarks().0);
                }
            }
        }
    }
}
