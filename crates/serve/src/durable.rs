//! The durability layer: write-ahead logging, checkpointing, and crash
//! recovery for [`crate::ViewService`].
//!
//! ## On-disk layout
//!
//! A durable service owns a directory containing generation-numbered files:
//!
//! ```text
//! wal-0000000001.log          append-only record log (gpivot_storage::wal)
//! checkpoint-0000000001.ckpt  full snapshot: catalog + views + queue
//! wal-0000000002.log          log continuing after checkpoint 2
//! ...
//! ```
//!
//! A checkpoint at generation *g* snapshots everything (base tables, view
//! tables + definitions, the pending ingest queue and its watermarks) and
//! declares that recovery replays WAL generations `>= g` on top of it.
//! Rotation order makes every crash window safe:
//!
//! 1. Under the queue lock: snapshot the queue, create `wal-(g+1)` (head
//!    record: [`WalRecord::Checkpoint`]) and switch appends to it.
//! 2. Write `checkpoint-(g+1)` via temp-file + fsync + rename.
//! 3. Only after the rename succeeds, prune generations `< g+1`.
//!
//! A crash before (2) completes leaves the previous checkpoint in place;
//! recovery then replays both the old and the new log generation in order,
//! which reproduces exactly the same state.
//!
//! ## Replay-from-queue recovery
//!
//! Recovery does not trust epoch markers to carry data — it rebuilds each
//! epoch's batch by *simulating the ingest queue*: `IngestDelta` records
//! feed a scratch queue, `EpochBegin` drains it, and `EpochCommit` applies
//! the drained batch (maintaining non-stale views incrementally against the
//! pre-commit base, exactly like a live epoch). This makes replay
//! self-healing against the duplicate `EpochBegin`/`EpochCommit` sequences
//! a crash-and-retry can legitimately leave behind, because what commits is
//! always what the queue actually held at that point in the record order.
//! A drained-but-uncommitted batch at end-of-log is restored to the pending
//! queue (the epoch never acked, so its rows are still "pending").
//!
//! Torn or corrupt log tails are truncated at the last valid record — never
//! a panic — and corrupt checkpoints are skipped in favor of older valid
//! ones (both surfaced in [`RecoveryReport`]).

use crate::queue::IngestQueue;
use crate::sync;
use gpivot_algebra::plan::Plan;
use gpivot_core::{CoreError, MaterializedView, Result, SourceDeltas, Strategy, ViewManager};
use gpivot_exec::Executor;
use gpivot_storage::checkpoint::{self, CheckpointData};
use gpivot_storage::wal::{self, Wal, WalRecord};
use gpivot_storage::{Catalog, Delta, FaultInjector, FsyncPolicy, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Parses persisted view-definition SQL back into a [`Plan`].
///
/// The WAL and checkpoints persist view definitions as dialect SQL text
/// (`Plan::to_sql_dialect`, a fixed point of parse∘render) rather than a
/// binary plan encoding, so the serve layer needs a parser at recovery time
/// without depending on the SQL frontend crate. `gpivot_sql::GpivotService`
/// supplies `gpivot_sql::parse_query` here.
pub type PlanParser = dyn Fn(&str) -> std::result::Result<Plan, String> + Send + Sync;

/// What crash recovery found and did while opening a durable service.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True iff prior state was found and recovered (false = fresh
    /// directory, nothing to replay).
    pub recovered: bool,
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Epoch counter after log replay (what readers now see).
    pub recovered_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Committed epochs re-applied during replay.
    pub replayed_epochs: u64,
    /// Torn log tails truncated at the last valid record.
    pub torn_tails_truncated: u64,
    /// Corrupt checkpoint files skipped (an older valid one was used).
    pub corrupt_checkpoints_skipped: u64,
    /// Epochs that had drained a batch but never committed; their rows were
    /// restored to the pending queue, not lost.
    pub uncommitted_epochs_dropped: u64,
    /// Views restored directly from snapshot tables.
    pub views_recovered: usize,
    /// Views recomputed from recovered base tables (stale-at-checkpoint or
    /// snapshot-schema mismatch).
    pub views_recomputed: usize,
    /// Coalesced row changes sitting in the queue after recovery.
    pub pending_rows: u64,
}

fn io_err(op: &str, e: std::io::Error) -> CoreError {
    CoreError::Storage(StorageError::Io {
        op: op.to_string(),
        message: e.to_string(),
    })
}

fn corrupt(what: impl Into<String>) -> CoreError {
    CoreError::Storage(StorageError::Corrupt { what: what.into() })
}

fn parse_plan(parser: &PlanParser, sql: &str, what: &str) -> Result<Plan> {
    parser(sql).map_err(|e| corrupt(format!("{what}: persisted view SQL failed to parse: {e}")))
}

fn parse_strategy(id: &str) -> Result<Strategy> {
    Strategy::from_id(id).ok_or_else(|| corrupt(format!("unknown persisted strategy id {id:?}")))
}

/// The live durability handle a [`crate::ViewService`] carries: the current
/// WAL generation plus cumulative counters that survive log rotation.
///
/// Lock order: the WAL mutex sits *below* the ingest-queue mutex and above
/// the metrics mutex (gate → state → queue → wal → metrics). Counters are
/// atomics precisely so `metrics()` never needs the WAL lock.
pub(crate) struct Durability {
    dir: PathBuf,
    policy: FsyncPolicy,
    injector: FaultInjector,
    wal: Mutex<Wal>,
    gen: AtomicU64,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    last_checkpoint_bytes: AtomicU64,
}

impl Durability {
    /// Initialize a fresh durable directory: checkpoint generation 1 holds
    /// the seed catalog (no views, empty queue, epoch 0), and WAL
    /// generation 1 starts with its [`WalRecord::Checkpoint`] head record.
    /// Every later replay therefore always starts from a checkpoint.
    pub fn bootstrap(
        dir: &Path,
        catalog: &Catalog,
        policy: FsyncPolicy,
        injector: FaultInjector,
    ) -> Result<Durability> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create durable dir", e))?;
        let mut tables = Vec::new();
        for name in catalog.table_names() {
            tables.push((name.to_string(), catalog.table(name)?.clone()));
        }
        let data = CheckpointData {
            epoch: 0,
            wal_gen: 1,
            tables,
            views: Vec::new(),
            pending: Vec::new(),
            queue_raw_rows: 0,
            queue_batches: 0,
        };
        let ckpt_bytes = checkpoint::write_checkpoint(dir, &data, &injector)?;
        let mut w = Wal::create(checkpoint::wal_path(dir, 1))?;
        w.set_fault_injector(injector.clone());
        w.append(&WalRecord::Checkpoint {
            epoch: 0,
            wal_gen: 1,
        })?;
        if policy != FsyncPolicy::Never {
            w.sync("bootstrap")?;
        }
        let d = Durability {
            dir: dir.to_path_buf(),
            policy,
            injector,
            gen: AtomicU64::new(1),
            records: AtomicU64::new(w.records_appended()),
            bytes: AtomicU64::new(w.bytes_written()),
            fsyncs: AtomicU64::new(w.fsyncs()),
            checkpoints: AtomicU64::new(1),
            last_checkpoint_bytes: AtomicU64::new(ckpt_bytes),
            wal: Mutex::new(w),
        };
        Ok(d)
    }

    /// Attach to an existing directory after recovery: continue appending
    /// to generation `gen` (creating the file if a crash erased it between
    /// checkpoint and log creation).
    pub fn open_at(
        dir: &Path,
        gen: u64,
        policy: FsyncPolicy,
        injector: FaultInjector,
    ) -> Result<Durability> {
        let path = checkpoint::wal_path(dir, gen);
        let mut w = if path.exists() {
            Wal::open_append(&path)?
        } else {
            Wal::create(&path)?
        };
        w.set_fault_injector(injector.clone());
        Ok(Durability {
            dir: dir.to_path_buf(),
            policy,
            injector,
            gen: AtomicU64::new(gen),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(w.bytes_written()),
            fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            last_checkpoint_bytes: AtomicU64::new(0),
            wal: Mutex::new(w),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    pub fn current_gen(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Append one record to the current log generation.
    pub fn append(&self, record: &WalRecord) -> Result<()> {
        let mut w = sync::lock(&self.wal);
        let before = w.bytes_written();
        w.append(record)?;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(w.bytes_written() - before, Ordering::Relaxed);
        Ok(())
    }

    /// fsync the current log generation.
    pub fn sync(&self, context: &str) -> Result<()> {
        sync::lock(&self.wal).sync(context)?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Log one producer ingest. Under [`FsyncPolicy::Always`] the record is
    /// also fsynced, so an acknowledged ingest survives any crash; the
    /// caller must not enqueue (or ack) the delta if this fails.
    pub fn log_ingest(&self, table: &str, delta: &Delta) -> Result<()> {
        self.append(&WalRecord::IngestDelta {
            table: table.to_string(),
            delta: delta.clone(),
        })?;
        if self.policy == FsyncPolicy::Always {
            self.sync("ingest")?;
        }
        Ok(())
    }

    /// Log an epoch's commit marker and make it durable per policy. After
    /// this returns `Ok`, recovery is guaranteed to re-apply the epoch
    /// (under `Always`/`OnCommit`; `Never` trades that for speed).
    pub fn log_commit(&self, epoch: u64) -> Result<()> {
        self.append(&WalRecord::EpochCommit { epoch })?;
        if self.policy != FsyncPolicy::Never {
            self.sync("epoch-commit")?;
        }
        Ok(())
    }

    /// Rotate the log: create generation `current + 1` with its
    /// [`WalRecord::Checkpoint`] head record and switch appends to it.
    /// Must be called with the ingest-queue lock held (step 1 of the
    /// checkpoint protocol) so the queue snapshot and the rotation point
    /// agree on what is "before" vs "after" the checkpoint.
    pub fn rotate(&self, epoch: u64) -> Result<u64> {
        let new_gen = self.current_gen() + 1;
        let mut new_wal = Wal::create(checkpoint::wal_path(&self.dir, new_gen))?;
        new_wal.set_fault_injector(self.injector.clone());
        new_wal.append(&WalRecord::Checkpoint {
            epoch,
            wal_gen: new_gen,
        })?;
        if self.policy != FsyncPolicy::Never {
            new_wal.sync("rotate")?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(new_wal.bytes_written(), Ordering::Relaxed);
        *sync::lock(&self.wal) = new_wal;
        self.gen.store(new_gen, Ordering::Release);
        Ok(new_gen)
    }

    /// Write the checkpoint file for `data` (step 2) and prune generations
    /// behind it (step 3, best-effort). Returns the checkpoint size.
    pub fn write_checkpoint_file(&self, data: &CheckpointData) -> Result<u64> {
        let bytes = checkpoint::write_checkpoint(&self.dir, data, &self.injector)?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.last_checkpoint_bytes.store(bytes, Ordering::Relaxed);
        checkpoint::prune(&self.dir, data.wal_gen);
        Ok(bytes)
    }

    /// Cumulative counters `(records, bytes, fsyncs, checkpoints,
    /// last_checkpoint_bytes)` for the metrics snapshot.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.records.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.fsyncs.load(Ordering::Relaxed),
            self.checkpoints.load(Ordering::Relaxed),
            self.last_checkpoint_bytes.load(Ordering::Relaxed),
        )
    }
}

/// Everything `ViewService::open` needs from a completed recovery.
pub(crate) struct Recovered {
    pub manager: ViewManager,
    pub queue: IngestQueue,
    pub epoch: u64,
    /// The newest log generation on disk; appends continue here.
    pub gen: u64,
    pub report: RecoveryReport,
}

/// Re-apply one committed epoch's batch: maintain affected views against
/// the pre-commit base, then commit base deltas and refreshed views
/// together — the sequential twin of `ViewService::refresh_epoch`.
fn apply_commit(manager: &mut ViewManager, batch: &SourceDeltas) -> Result<()> {
    let dirty: BTreeSet<String> = batch.tables().map(String::from).collect();
    let affected: Vec<MaterializedView> = manager
        .views()
        .filter(|v| !v.dependencies().is_disjoint(&dirty))
        .cloned()
        .collect();
    let mut refreshed = Vec::with_capacity(affected.len());
    for mut view in affected {
        view.maintain_with(manager.catalog(), batch, manager.executor())?;
        refreshed.push(view);
    }
    let staged = manager.stage_commit(batch)?;
    manager.apply_staged(staged);
    for v in refreshed {
        manager.install_view(v);
    }
    Ok(())
}

/// Recover service state from `dir`: latest valid checkpoint + log-tail
/// replay. `Ok(None)` means the directory holds no checkpoint (fresh).
///
/// Recovery runs with a *disabled* fault injector (the caller re-arms the
/// catalog afterwards): replay re-executes already-acknowledged work, so
/// injecting faults into it would only re-litigate decided epochs.
pub(crate) fn recover(
    dir: &Path,
    parser: &PlanParser,
    exec: Executor,
) -> Result<Option<Recovered>> {
    let Some(loaded) = checkpoint::load_latest(dir)? else {
        return Ok(None);
    };
    let ckpt = loaded.data;
    let mut report = RecoveryReport {
        recovered: true,
        checkpoint_epoch: ckpt.epoch,
        corrupt_checkpoints_skipped: loaded.skipped_corrupt,
        ..RecoveryReport::default()
    };

    // Rebuild the catalog; recovery itself never injects faults.
    let mut catalog = Catalog::new();
    for (name, table) in ckpt.tables {
        catalog
            .register(name.clone(), table)
            .map_err(|_| corrupt(format!("checkpoint lists table {name:?} twice")))?;
    }
    let mut manager = ViewManager::new(catalog).with_exec(exec);

    // Views: non-stale snapshots install now (their tables are consistent
    // with the checkpointed base, so replay maintains them incrementally);
    // stale ones (quarantined at checkpoint time) recompute at the end,
    // from the fully-replayed base.
    let mut stale: BTreeMap<String, (String, String)> = BTreeMap::new();
    for vs in ckpt.views {
        if vs.stale {
            stale.insert(vs.name, (vs.definition_sql, vs.strategy));
            continue;
        }
        let plan = parse_plan(parser, &vs.definition_sql, &vs.name)?;
        let strategy = parse_strategy(&vs.strategy)?;
        let (view, used_snapshot) = MaterializedView::from_snapshot(
            vs.name,
            plan,
            strategy,
            vs.table,
            manager.catalog(),
            manager.executor(),
        )?;
        if used_snapshot {
            report.views_recovered += 1;
        } else {
            report.views_recomputed += 1;
        }
        manager.install_view(view);
    }

    let mut queue = IngestQueue::new();
    queue.restore_state(ckpt.pending, ckpt.queue_raw_rows, ckpt.queue_batches);

    // Replay log generations >= the checkpoint's, in order. Only these
    // matter: older generations (left behind by a failed prune) were
    // already folded into the checkpoint.
    let mut epoch = ckpt.epoch;
    let mut held: Option<(SourceDeltas, crate::queue::DrainStats)> = None;
    let gens: Vec<u64> = checkpoint::list_wal_gens(dir)?
        .into_iter()
        .filter(|g| *g >= ckpt.wal_gen)
        .collect();
    for &gen in &gens {
        let path = checkpoint::wal_path(dir, gen);
        let scan = wal::read_wal(&path)?;
        if scan.torn {
            wal::truncate_wal(&path, scan.valid_len)?;
            report.torn_tails_truncated += 1;
        }
        for record in scan.records {
            report.replayed_records += 1;
            match record {
                WalRecord::Checkpoint { .. } => {}
                WalRecord::RegisterView {
                    name,
                    definition_sql,
                    strategy,
                } => {
                    stale.remove(&name);
                    let plan = parse_plan(parser, &definition_sql, &name)?;
                    let strategy = parse_strategy(&strategy)?;
                    let view = MaterializedView::create_with(
                        name,
                        plan,
                        strategy,
                        manager.catalog(),
                        manager.executor(),
                    )?;
                    manager.install_view(view);
                }
                WalRecord::DropView { name } => {
                    stale.remove(&name);
                    let _ = manager.drop_view(&name);
                }
                WalRecord::IngestDelta { table, delta } => {
                    queue.ingest(&table, delta);
                }
                WalRecord::EpochBegin { .. } => {
                    // A Begin while a batch is already held means the
                    // previous epoch's commit marker never became durable
                    // and the epoch was rolled back live: put the batch
                    // back and re-drain, exactly as the live retry did.
                    if let Some((batch, stats)) = held.take() {
                        queue.restore(&batch, stats);
                    }
                    let (batch, stats) = queue.drain();
                    if !batch.is_empty() {
                        held = Some((batch, stats));
                    }
                }
                WalRecord::EpochCommit { epoch: committed } => {
                    if let Some((batch, _)) = held.take() {
                        apply_commit(&mut manager, &batch)?;
                        report.replayed_epochs += 1;
                    }
                    epoch = epoch.max(committed);
                }
            }
        }
    }
    // A batch drained but never committed belongs to an epoch that never
    // acknowledged: its rows go back to pending, invisible to readers.
    if let Some((batch, stats)) = held.take() {
        queue.restore(&batch, stats);
        report.uncommitted_epochs_dropped += 1;
    }

    // Stale (quarantined-at-checkpoint) views recompute from the replayed
    // base — the durable analogue of `retry_view`'s recompute path.
    for (name, (sql, strategy)) in stale {
        let plan = parse_plan(parser, &sql, &name)?;
        let strategy = parse_strategy(&strategy)?;
        let view = MaterializedView::create_with(
            name,
            plan,
            strategy,
            manager.catalog(),
            manager.executor(),
        )?;
        manager.install_view(view);
        report.views_recomputed += 1;
    }

    report.recovered_epoch = epoch;
    report.pending_rows = queue.pending_rows();
    let gen = gens.last().copied().unwrap_or(ckpt.wal_gen);
    Ok(Some(Recovered {
        manager,
        queue,
        epoch,
        gen,
        report,
    }))
}
