//! # gpivot-serve
//!
//! A long-lived, thread-safe **view-maintenance service** layered over the
//! engine's [`gpivot_core::ViewManager`]. Where `ViewManager` is the paper's
//! single-threaded compile/refresh cycle, this crate is the operational
//! wrapper a warehouse would actually run:
//!
//! * **View registry** ([`ViewService::register_view`] /
//!   [`ViewService::drop_view`]) — named views compiled through the existing
//!   normalize + strategy pipeline, owned behind an `RwLock` so queries and
//!   refreshes can proceed concurrently.
//! * **Delta ingestion queue** ([`ViewService::ingest`]) — producers submit
//!   signed-multiset [`gpivot_storage::Delta`] batches per base table. The
//!   queue coalesces them additively (an insert and a delete of the same row
//!   cancel before any propagation work happens) and applies backpressure
//!   once the pending row count crosses a configurable watermark.
//! * **Epoch-based refresh** ([`ViewService::refresh_epoch`]) — each epoch
//!   drains the coalesced batch, propagates it to every *affected* view
//!   (dependency = the view's base tables; clean views are skipped) in
//!   parallel on a bounded pool of `std` threads, then commits the new view
//!   tables **and** the base-table deltas in one write-lock critical
//!   section. Readers holding a [`Snapshot`] always see a consistent
//!   pre-epoch or post-epoch state, never a mix — the service-level analogue
//!   of the paper's §6 two-phase propagate/apply contract.
//! * **Observability** ([`ViewService::metrics`]) — per-view and per-epoch
//!   counters (rows ingested, coalescing ratio, rows propagated, refresh
//!   latency) as a [`MetricsSnapshot`], plus wall-clock timing histograms
//!   for every maintenance phase (`epoch`, `epoch.propagate`,
//!   `maintain.apply`, …) and exec operator (`op.Join`, `op.GPivot`, …)
//!   collected through the vendored `tracing` span layer. Exported as a
//!   human-readable report ([`MetricsSnapshot::report`]) and Prometheus
//!   text exposition ([`MetricsSnapshot::prometheus`]). See DESIGN.md
//!   §"Observability".
//! * **Fault tolerance** — worker panics are caught at the view-task
//!   boundary (never poisoning a lock; locks are acquired only through the
//!   poison-recovering helpers in `sync`), transient failures retry with
//!   bounded exponential backoff, repeatedly failing views are quarantined
//!   ([`ViewHealth`]) so they stop blocking epochs, and every epoch commits
//!   all-or-nothing: a mid-epoch failure rolls back to the pre-epoch state
//!   and restores the drained batch to the queue. See DESIGN.md §"Fault
//!   tolerance".
//!
//! Lock order (outermost first): refresh gate → view state (`RwLock`) →
//! ingest queue (`Mutex` + condvar) → metrics (`Mutex`, leaf). No code path
//! acquires them in any other order, and the queue lock is never held while
//! waiting on the state lock.

// A service that promises panic isolation must not panic on its own error
// paths: `unwrap`/`expect` are denied outside unit tests, and lock
// acquisition goes through `sync`'s poison-recovering helpers.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod durable;
#[cfg(test)]
mod explore;
mod metrics;
mod queue;
mod service;
mod shard;
mod sync;

pub use durable::{PlanParser, RecoveryReport};
pub use gpivot_storage::FsyncPolicy;
pub use metrics::{EpochSummary, MetricsSnapshot, ViewHealth, ViewMetrics};
pub use service::{IngestOptions, ServeConfig, ServeConfigBuilder, Snapshot, ViewService};
pub use shard::{ShardConfig, ShardSnapshot, ShardedService, ViewPlacement};
