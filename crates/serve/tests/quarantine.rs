//! Quarantine lifecycle: a view whose propagation always fails degrades,
//! gets quarantined, stops blocking epochs (others keep committing), and is
//! re-admitted by `retry_view` with its table recomputed to match the
//! oracle.

use gpivot_core::CoreError;
use gpivot_exec::Executor;
use gpivot_serve::{IngestOptions, ServeConfig, ViewHealth, ViewService};
use gpivot_storage::{
    row, Catalog, DataType, Delta, FaultInjector, FaultSite, Schema, Table, Value,
};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Int),
            ],
            &["id", "attr"],
        )
        .unwrap(),
    );
    c.register(
        "facts",
        Table::from_rows(
            schema,
            vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn pivot_plan() -> gpivot_algebra::Plan {
    gpivot_algebra::PlanBuilder::scan("facts")
        .gpivot(gpivot_algebra::PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ))
        .build()
}

#[test]
fn quarantine_lifecycle_and_readmission() {
    // Every propagate of `flaky` fails with an injected (transient) error;
    // `steady` and the base tables are never touched by the injector.
    let injector =
        FaultInjector::seeded(3).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
    injector.disarm();
    let mut cat = catalog();
    let mut mirror = cat.clone();
    mirror.set_fault_injector(FaultInjector::disabled());
    cat.set_fault_injector(injector.clone());

    let svc = ViewService::new(
        cat,
        ServeConfig::builder()
            .workers(2)
            .max_retries(0) // one attempt per epoch: each failed epoch = one strike
            .retry_backoff(Duration::ZERO)
            .quarantine_after(2)
            .build()
            .unwrap(),
    );
    svc.register_view("flaky", pivot_plan()).unwrap();
    svc.register_view("steady", pivot_plan()).unwrap();
    injector.arm();

    let ingest_row = |id: i64, mirror: &mut Catalog| {
        let d = Delta::from_inserts(vec![row![id, "a", id]]);
        svc.ingest_with("facts", d.clone(), IngestOptions::blocking())
            .unwrap();
        mirror.apply_delta("facts", &d).unwrap();
    };

    // Strike one: the epoch fails (flaky's error rolls everything back),
    // nothing commits, the batch is restored.
    ingest_row(10, &mut mirror);
    let err = svc.refresh_epoch().unwrap_err();
    assert!(matches!(
        err,
        CoreError::Storage(gpivot_storage::StorageError::FaultInjected { .. })
    ));
    assert_eq!(svc.epoch(), 0);
    assert_eq!(svc.pending_rows(), 1, "rolled-back delta must be re-queued");
    assert_eq!(
        svc.view_health("flaky").unwrap(),
        ViewHealth::Degraded {
            consecutive_failures: 1
        }
    );
    assert_eq!(svc.view_health("steady").unwrap(), ViewHealth::Healthy);
    // Steady's work was rolled back too: refresh effort is only charged on
    // committed epochs.
    assert_eq!(svc.metrics().per_view["steady"].refreshes, 0);

    // Strike two: quarantined.
    let err = svc.refresh_epoch().unwrap_err();
    assert!(err.is_transient());
    assert!(svc.view_health("flaky").unwrap().is_quarantined());
    let m = svc.metrics();
    assert_eq!(m.epochs_failed, 2);
    assert_eq!(m.per_view["flaky"].failures, 2);
    assert_eq!(m.quarantined_views(), vec!["flaky"]);

    // With flaky out of the way, epochs commit again — the quarantined
    // view no longer blocks anyone.
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.epoch, 1);
    assert_eq!(s.views_refreshed, 1);
    assert_eq!(s.quarantined_skipped, 1);
    assert_eq!(svc.pending_rows(), 0);

    ingest_row(11, &mut mirror);
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.epoch, 2);
    assert_eq!(s.quarantined_skipped, 1);

    // Steady matches the oracle; flaky is stale (still the initial
    // materialization) and `verify_all` knowingly skips it.
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("steady").unwrap().bag_eq(&oracle));
    assert!(!svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // Re-admission: recomputes flaky from the current base tables (its
    // plan execution hits only Scan sites, which aren't configured) and
    // resets its health, so the next epoch schedules it again.
    svc.retry_view("flaky").unwrap();
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // The injector still targets flaky, so the next refresh strikes again —
    // back to Degraded(1), proving re-admission fully reset the counter.
    ingest_row(12, &mut mirror);
    assert!(svc.refresh_epoch().is_err());
    assert_eq!(
        svc.view_health("flaky").unwrap(),
        ViewHealth::Degraded {
            consecutive_failures: 1
        }
    );

    // Cease fire: the epoch commits with both views, everything converges.
    injector.disarm();
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.views_refreshed, 2);
    assert_eq!(s.quarantined_skipped, 0);
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.query_view("steady").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // Health renders in the human-readable report while degraded/quarantined
    // states were live; final report shows healthy views again.
    let report = svc.metrics().report();
    assert!(report.contains("view flaky"));
    assert!(!report.contains("QUARANTINED"));
}

/// Satellite invariant: a view quarantined while producers keep ingesting
/// loses nothing. Epochs commit around it, `retry_view` re-admits it
/// mid-stream, and once the queue drains the re-admitted view has caught
/// up with every delta ingested before, during, and after the quarantine.
#[test]
fn quarantine_readmission_under_concurrent_ingest() {
    let injector =
        FaultInjector::seeded(5).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
    injector.disarm();
    let mut cat = catalog();
    let mirror_base = cat.clone();
    cat.set_fault_injector(injector.clone());

    let svc = ViewService::new(
        cat,
        ServeConfig::builder()
            .workers(2)
            .max_retries(0)
            .retry_backoff(Duration::ZERO)
            .quarantine_after(2)
            .build()
            .unwrap(),
    );
    svc.register_view("flaky", pivot_plan()).unwrap();
    svc.register_view("steady", pivot_plan()).unwrap();
    injector.arm();

    // Two strikes put flaky in quarantine; the striking delta stays queued.
    svc.ingest_with(
        "facts",
        Delta::from_inserts(vec![row![50, "a", 50]]),
        IngestOptions::blocking(),
    )
    .unwrap();
    assert!(svc.refresh_epoch().is_err());
    assert!(svc.refresh_epoch().is_err());
    assert!(svc.view_health("flaky").unwrap().is_quarantined());

    const PRODUCERS: i64 = 2;
    const ROWS_PER_PRODUCER: i64 = 20;
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..ROWS_PER_PRODUCER {
                    let id = 100 * (p + 1) + i;
                    svc.ingest_with(
                        "facts",
                        Delta::from_inserts(vec![row![id, "a", id]]),
                        IngestOptions::blocking(),
                    )
                    .unwrap();
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        // Epochs keep committing while quarantined (flaky is skipped)...
        for _ in 0..3 {
            svc.refresh_epoch().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...and re-admission happens mid-stream, with producers still
        // running. Cease fire first so the next epoch doesn't re-strike.
        injector.disarm();
        svc.retry_view("flaky").unwrap();
        assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
        for _ in 0..2 {
            svc.refresh_epoch().unwrap();
        }
    });

    while svc.pending_rows() > 0 {
        svc.refresh_epoch().unwrap();
    }

    // Oracle: the base plus every delta any producer ever submitted.
    let mut mirror = mirror_base;
    mirror
        .apply_delta("facts", &Delta::from_inserts(vec![row![50, "a", 50]]))
        .unwrap();
    for p in 0..PRODUCERS {
        for i in 0..ROWS_PER_PRODUCER {
            let id = 100 * (p + 1) + i;
            mirror
                .apply_delta("facts", &Delta::from_inserts(vec![row![id, "a", id]]))
                .unwrap();
        }
    }
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(
        svc.query_view("flaky").unwrap().bag_eq(&oracle),
        "re-admitted view dropped deltas"
    );
    assert!(svc.query_view("steady").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
}

/// On a durable service, `retry_view` replays the quarantined view's missed
/// epochs from the log instead of recomputing, and emits the `view.replay`
/// trace event plus the `view_replays` metric.
#[test]
fn retry_view_replays_missed_epochs_from_log() {
    fn parse(sql: &str) -> std::result::Result<gpivot_algebra::Plan, String> {
        gpivot_sql::parse_query(sql).map_err(|e| e.to_string())
    }
    let dir = std::env::temp_dir().join(format!("gpivot-quarantine-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let injector =
        FaultInjector::seeded(11).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
    injector.disarm();
    let mut cat = catalog();
    let mut mirror = cat.clone();
    mirror.set_fault_injector(FaultInjector::disabled());
    cat.set_fault_injector(injector.clone());

    let (svc, _) = ViewService::open(
        &dir,
        cat,
        ServeConfig::builder()
            .workers(2)
            .max_retries(0)
            .retry_backoff(Duration::ZERO)
            .quarantine_after(2)
            .build()
            .unwrap(),
        &parse,
    )
    .unwrap();
    svc.register_view("flaky", pivot_plan()).unwrap();
    svc.register_view("steady", pivot_plan()).unwrap();

    let ingest_row = |id: i64, mirror: &mut Catalog| {
        let d = Delta::from_inserts(vec![row![id, "a", id]]);
        svc.ingest_with("facts", d.clone(), IngestOptions::blocking())
            .unwrap();
        mirror.apply_delta("facts", &d).unwrap();
    };

    // One healthy epoch, then a checkpoint: the log tail now starts past
    // flaky's registration, which keeps it eligible for replay.
    ingest_row(10, &mut mirror);
    svc.refresh_epoch().unwrap();
    svc.checkpoint().unwrap();

    // Quarantine at since_epoch = 1.
    injector.arm();
    ingest_row(11, &mut mirror);
    assert!(svc.refresh_epoch().is_err());
    assert!(svc.refresh_epoch().is_err());
    assert!(svc.view_health("flaky").unwrap().is_quarantined());

    // Missed epochs 2 and 3 commit while flaky sits out.
    svc.refresh_epoch().unwrap();
    ingest_row(12, &mut mirror);
    svc.refresh_epoch().unwrap();
    assert_eq!(svc.epoch(), 3);

    injector.disarm();
    svc.retry_view("flaky").unwrap();
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);

    let m = svc.metrics();
    assert_eq!(m.view_replays, 1, "expected the log-replay fast path");
    assert_eq!(m.trace_events.get("view.replay"), Some(&1));

    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // The replayed view keeps up in subsequent epochs.
    ingest_row(13, &mut mirror);
    svc.refresh_epoch().unwrap();
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    let _ = std::fs::remove_dir_all(&dir);
}
