//! Quarantine lifecycle: a view whose propagation always fails degrades,
//! gets quarantined, stops blocking epochs (others keep committing), and is
//! re-admitted by `retry_view` with its table recomputed to match the
//! oracle.

use gpivot_core::CoreError;
use gpivot_exec::Executor;
use gpivot_serve::{ServeConfig, ViewHealth, ViewService};
use gpivot_storage::{
    row, Catalog, DataType, Delta, FaultInjector, FaultSite, Schema, Table, Value,
};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Int),
            ],
            &["id", "attr"],
        )
        .unwrap(),
    );
    c.register(
        "facts",
        Table::from_rows(
            schema,
            vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn pivot_plan() -> gpivot_algebra::Plan {
    gpivot_algebra::PlanBuilder::scan("facts")
        .gpivot(gpivot_algebra::PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ))
        .build()
}

#[test]
fn quarantine_lifecycle_and_readmission() {
    // Every propagate of `flaky` fails with an injected (transient) error;
    // `steady` and the base tables are never touched by the injector.
    let injector =
        FaultInjector::seeded(3).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
    injector.disarm();
    let mut cat = catalog();
    let mut mirror = cat.clone();
    mirror.set_fault_injector(FaultInjector::disabled());
    cat.set_fault_injector(injector.clone());

    let svc = ViewService::new(
        cat,
        ServeConfig {
            workers: 2,
            max_retries: 0, // one attempt per epoch: each failed epoch = one strike
            retry_backoff: Duration::ZERO,
            quarantine_after: 2,
            ..ServeConfig::default()
        },
    );
    svc.register_view("flaky", pivot_plan()).unwrap();
    svc.register_view("steady", pivot_plan()).unwrap();
    injector.arm();

    let ingest_row = |id: i64, mirror: &mut Catalog| {
        let d = Delta::from_inserts(vec![row![id, "a", id]]);
        svc.ingest("facts", d.clone()).unwrap();
        mirror.apply_delta("facts", &d).unwrap();
    };

    // Strike one: the epoch fails (flaky's error rolls everything back),
    // nothing commits, the batch is restored.
    ingest_row(10, &mut mirror);
    let err = svc.refresh_epoch().unwrap_err();
    assert!(matches!(
        err,
        CoreError::Storage(gpivot_storage::StorageError::FaultInjected { .. })
    ));
    assert_eq!(svc.epoch(), 0);
    assert_eq!(svc.pending_rows(), 1, "rolled-back delta must be re-queued");
    assert_eq!(
        svc.view_health("flaky").unwrap(),
        ViewHealth::Degraded {
            consecutive_failures: 1
        }
    );
    assert_eq!(svc.view_health("steady").unwrap(), ViewHealth::Healthy);
    // Steady's work was rolled back too: refresh effort is only charged on
    // committed epochs.
    assert_eq!(svc.metrics().per_view["steady"].refreshes, 0);

    // Strike two: quarantined.
    let err = svc.refresh_epoch().unwrap_err();
    assert!(err.is_transient());
    assert!(svc.view_health("flaky").unwrap().is_quarantined());
    let m = svc.metrics();
    assert_eq!(m.epochs_failed, 2);
    assert_eq!(m.per_view["flaky"].failures, 2);
    assert_eq!(m.quarantined_views(), vec!["flaky"]);

    // With flaky out of the way, epochs commit again — the quarantined
    // view no longer blocks anyone.
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.epoch, 1);
    assert_eq!(s.views_refreshed, 1);
    assert_eq!(s.quarantined_skipped, 1);
    assert_eq!(svc.pending_rows(), 0);

    ingest_row(11, &mut mirror);
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.epoch, 2);
    assert_eq!(s.quarantined_skipped, 1);

    // Steady matches the oracle; flaky is stale (still the initial
    // materialization) and `verify_all` knowingly skips it.
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("steady").unwrap().bag_eq(&oracle));
    assert!(!svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // Re-admission: recomputes flaky from the current base tables (its
    // plan execution hits only Scan sites, which aren't configured) and
    // resets its health, so the next epoch schedules it again.
    svc.retry_view("flaky").unwrap();
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // The injector still targets flaky, so the next refresh strikes again —
    // back to Degraded(1), proving re-admission fully reset the counter.
    ingest_row(12, &mut mirror);
    assert!(svc.refresh_epoch().is_err());
    assert_eq!(
        svc.view_health("flaky").unwrap(),
        ViewHealth::Degraded {
            consecutive_failures: 1
        }
    );

    // Cease fire: the epoch commits with both views, everything converges.
    injector.disarm();
    let s = svc.refresh_epoch().unwrap();
    assert_eq!(s.views_refreshed, 2);
    assert_eq!(s.quarantined_skipped, 0);
    assert_eq!(svc.view_health("flaky").unwrap(), ViewHealth::Healthy);
    let oracle = Executor::new().run(&pivot_plan(), &mirror).unwrap();
    assert!(svc.query_view("flaky").unwrap().bag_eq(&oracle));
    assert!(svc.query_view("steady").unwrap().bag_eq(&oracle));
    assert!(svc.verify_all().unwrap());

    // Health renders in the human-readable report while degraded/quarantined
    // states were live; final report shows healthy views again.
    let report = svc.metrics().report();
    assert!(report.contains("view flaky"));
    assert!(!report.contains("QUARANTINED"));
}
