//! Crash-recovery harness: a seeded TPC-H ingest schedule run against a
//! durable [`ViewService`], killed at **every** injected WAL/checkpoint
//! point, reopened, and driven to completion — the recovered state must be
//! bag-identical to an uncrashed oracle.
//!
//! Invariants proved by the kill matrix:
//! * **no committed epoch is lost** — immediately after every recovery the
//!   base tables equal the acked-commit mirror (or mirror + the in-flight
//!   batch, when the killed commit record reached the log before the crash:
//!   standard WAL semantics for unacknowledged writes);
//! * **no partial epoch is visible** — after every recovery `verify_all`
//!   holds: each view equals recomputation over the recovered base;
//! * **resume converges** — re-running the killed operation (ingest appends
//!   are torn, so never durable under `OnCommit`; refresh / checkpoint /
//!   register are idempotent after recovery) ends bag-identical to a run
//!   that never crashed.
//!
//! The matrix is sized by a dry run: an armed injector with no faults
//! counts the checks at each site ([`FaultInjector::site_checks`]), then
//! the schedule re-runs once per (site, ordinal) with a one-shot kill
//! point. Determinism of the schedule makes the ordinal spaces line up.

use gpivot_algebra::Plan;
use gpivot_exec::Executor;
use gpivot_serve::{FsyncPolicy, IngestOptions, ServeConfig, ViewService};
use gpivot_storage::checkpoint::{checkpoint_path, list_wal_gens, wal_path};
use gpivot_storage::{Catalog, Delta, FaultInjector, FaultSite};
use gpivot_tpch::gen::{generate, TpchConfig};
use gpivot_tpch::views::{view1, view3};
use gpivot_tpch::workload;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---- harness ---------------------------------------------------------------

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gpivot-crash-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn parse(sql: &str) -> std::result::Result<Plan, String> {
    gpivot_sql::parse_query(sql).map_err(|e| e.to_string())
}

fn durable_config(policy: FsyncPolicy) -> ServeConfig {
    ServeConfig::builder()
        .workers(2)
        .exec_threads(1)
        .wal_fsync(policy)
        .build()
        .unwrap()
}

fn small_catalog() -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.01)
    })
}

fn views() -> [(&'static str, Plan); 2] {
    [("view1", view1()), ("view3", view3())]
}

fn is_kill(e: &gpivot_core::CoreError) -> bool {
    e.to_string().contains("kill point")
}

fn disabled_clone(base: &Catalog) -> Catalog {
    let mut c = base.clone();
    c.set_fault_injector(FaultInjector::disabled());
    c
}

/// True iff every base table of the service equals `oracle`'s.
fn base_matches(svc: &ViewService, oracle: &Catalog) -> bool {
    let snap = svc.snapshot();
    let cat = snap.manager().catalog();
    oracle.table_names().into_iter().all(|t| {
        let got = cat.table(t).expect("recovered catalog lost a table");
        got.bag_eq(oracle.table(t).unwrap())
    })
}

fn assert_views_match(svc: &ViewService, oracle: &Catalog, context: &str) {
    let snap = svc.snapshot();
    for (name, plan) in views() {
        let got = snap.query_view(name).unwrap();
        let expected = Executor::new().run(&plan, oracle).unwrap();
        assert!(
            got.bag_eq(&expected),
            "{context}: view {name} diverged ({} rows, want {})",
            got.len(),
            expected.len(),
        );
    }
}

// ---- seeded schedule -------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    /// Register the nth entry of [`views`] (skipped on resume if present).
    Register(usize),
    /// Ingest one (table, delta) item — the unit of ack.
    Ingest(usize),
    Refresh,
    Checkpoint,
}

struct Schedule {
    ops: Vec<Op>,
    items: Vec<(String, Delta)>,
    /// Base tables after every batch: the uncrashed oracle.
    oracle: Catalog,
}

/// A fixed, seeded schedule: register both views, then three workload
/// batches (mixed churn, order churn, lineitem deletes) with refreshes and
/// a mid-run checkpoint. Deletes are generated against a shadow that has
/// already absorbed earlier batches, so they always hit live rows.
fn build_schedule(base: &Catalog) -> Schedule {
    let mut shadow = disabled_clone(base);
    let mut ops = vec![Op::Register(0), Op::Register(1)];
    let mut items: Vec<(String, Delta)> = Vec::new();

    // Each batch is generated against the shadow *after* the previous one
    // applied, so deletes always target rows that still exist.
    for i in 0..3 {
        let batch = match i {
            0 => workload::mixed_batch(&shadow, 0.02, 1101),
            1 => workload::order_churn(&shadow, 0.015, 1102),
            _ => workload::delete_fraction(&shadow, "lineitem", 0.01, 1103),
        };
        for table in batch.tables().map(str::to_string).collect::<Vec<_>>() {
            let delta = batch.delta(&table).unwrap().clone();
            shadow.apply_delta(&table, &delta).unwrap();
            ops.push(Op::Ingest(items.len()));
            items.push((table, delta));
        }
        ops.push(Op::Refresh);
        if i == 1 {
            ops.push(Op::Checkpoint);
        }
    }
    Schedule {
        ops,
        items,
        oracle: shadow,
    }
}

fn apply_items(base: &Catalog, idxs: &[usize], items: &[(String, Delta)]) -> Catalog {
    let mut c = base.clone();
    for &i in idxs {
        let (t, d) = &items[i];
        c.apply_delta(t, d).unwrap();
    }
    c
}

/// Drive `schedule` on a durable service rooted at `dir`, treating every
/// kill-point error as a crash: drop the service, reopen, check the
/// recovery invariants, and resume from the killed operation. Returns the
/// number of kills observed.
fn run_schedule(dir: &Path, base: &Catalog, schedule: &Schedule, injector: FaultInjector) -> u64 {
    let defs = views();
    let cfg = durable_config(FsyncPolicy::OnCommit);
    let mut kills = 0u64;

    // Bootstrap itself is in the kill matrix: retry until open succeeds
    // (kill points are one-shot, so the retry runs fault-free).
    let mut seed = base.clone();
    seed.set_fault_injector(injector);
    let mut svc = loop {
        match ViewService::open(dir, seed.clone(), cfg.clone(), &parse) {
            Ok((svc, _)) => break svc,
            Err(e) => {
                assert!(is_kill(&e), "open failed with a non-kill error: {e}");
                kills += 1;
            }
        }
    };

    // Mirror of acked state: `committed` = base tables as of the last acked
    // refresh; `inflight` = acked ingest items not yet covered by one.
    let mut committed = disabled_clone(base);
    let mut inflight: Vec<usize> = Vec::new();

    let mut cursor = 0usize;
    while cursor < schedule.ops.len() {
        let op = &schedule.ops[cursor];
        let outcome = match op {
            Op::Register(i) => {
                let (name, plan) = &defs[*i];
                if svc.view_names().iter().any(|n| n == name) {
                    Ok(()) // survived the crash via a durable register record
                } else {
                    svc.register_view(*name, plan.clone()).map(|_| ())
                }
            }
            Op::Ingest(i) => {
                let (table, delta) = &schedule.items[*i];
                svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
            }
            Op::Refresh => svc.refresh_epoch().map(|_| ()),
            Op::Checkpoint => svc.checkpoint().map(|_| ()),
        };
        match outcome {
            Ok(()) => {
                match op {
                    Op::Ingest(i) => inflight.push(*i),
                    Op::Refresh => {
                        committed = apply_items(&committed, &inflight, &schedule.items);
                        inflight.clear();
                    }
                    _ => {}
                }
                cursor += 1;
            }
            Err(e) => {
                assert!(
                    is_kill(&e),
                    "op {cursor} ({op:?}) failed with a non-kill error: {e}"
                );
                kills += 1;
                drop(svc); // simulated crash: abandon all live state

                let (recovered, report) =
                    ViewService::open(dir, disabled_clone(base), cfg.clone(), &parse)
                        .expect("recovery after a kill must succeed");
                assert!(report.recovered, "op {cursor}: recovery found no state");
                // No partial epoch visible: every recovered view equals
                // recomputation over the recovered base.
                assert!(
                    recovered.verify_all().unwrap(),
                    "op {cursor} ({op:?}): recovered views inconsistent with base"
                );
                // No committed epoch lost: the base is exactly the acked
                // mirror, or mirror + in-flight batch when the killed
                // commit record reached the log before the crash.
                if !base_matches(&recovered, &committed) {
                    let with_inflight = apply_items(&committed, &inflight, &schedule.items);
                    assert!(
                        base_matches(&recovered, &with_inflight),
                        "op {cursor} ({op:?}): committed epoch lost or partial epoch applied"
                    );
                    committed = with_inflight;
                    inflight.clear();
                }
                svc = recovered;
                // Resume at the killed op: a killed ingest append is torn
                // (never durable under OnCommit) so re-running it is
                // exactly-once; refresh/checkpoint/register are idempotent.
            }
        }
    }

    while svc.pending_rows() > 0 {
        svc.refresh_epoch().unwrap();
    }
    assert_views_match(&svc, &schedule.oracle, "after schedule");
    assert!(base_matches(&svc, &schedule.oracle), "base diverged");
    assert!(svc.verify_all().unwrap());
    kills
}

// ---- the kill matrix -------------------------------------------------------

/// The tentpole proof: dry-run the schedule to count injected points, then
/// kill at every (site, ordinal) and require recovery + resume to land
/// bag-identical to the uncrashed oracle.
#[test]
fn kill_matrix_every_injected_point_recovers() {
    let base = small_catalog();
    let schedule = build_schedule(&base);

    // Dry run: armed injector, no faults configured — counts the ordinal
    // space per site and doubles as the uncrashed control run.
    let probe = FaultInjector::seeded(7);
    let dir = tmp_dir("dry");
    let kills = run_schedule(&dir, &base, &schedule, probe.clone());
    assert_eq!(kills, 0, "dry run must not kill");
    let _ = fs::remove_dir_all(&dir);

    let sites = [
        FaultSite::WalAppend,
        FaultSite::WalFsync,
        FaultSite::CheckpointWrite,
    ];
    let mut matrix = 0u64;
    for site in sites {
        let checks = probe.site_checks(site);
        assert!(checks > 0, "{site:?} never exercised by the schedule");
        for nth in 1..=checks {
            let dir = tmp_dir("kill");
            let injector = FaultInjector::seeded(7).with_kill_point(site, nth);
            let kills = run_schedule(&dir, &base, &schedule, injector);
            assert_eq!(
                kills, 1,
                "{site:?} ordinal {nth}/{checks}: expected exactly one kill"
            );
            matrix += 1;
            let _ = fs::remove_dir_all(&dir);
        }
    }
    assert!(matrix >= 12, "kill matrix too small ({matrix} points)");
}

// ---- targeted recovery properties ------------------------------------------

/// Plain restart: register, ingest, refresh, checkpoint, more epochs,
/// reopen — everything (views, epoch counter, metrics seed) survives.
#[test]
fn restart_roundtrip_preserves_views_and_epoch() {
    let base = small_catalog();
    let dir = tmp_dir("roundtrip");
    let cfg = durable_config(FsyncPolicy::OnCommit);
    let mut oracle = disabled_clone(&base);

    let epoch_before = {
        let (svc, report) = ViewService::open(&dir, base.clone(), cfg.clone(), &parse).unwrap();
        assert!(!report.recovered);
        assert!(svc.is_durable());
        for (name, plan) in views() {
            svc.register_view(name, plan).unwrap();
        }
        for seed in [21, 22] {
            let batch = workload::mixed_batch(&oracle, 0.02, seed);
            for table in batch.tables() {
                let delta = batch.delta(table).unwrap();
                oracle.apply_delta(table, delta).unwrap();
                svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                    .unwrap();
            }
            svc.refresh_epoch().unwrap();
        }
        svc.checkpoint().unwrap();
        let batch = workload::order_churn(&oracle, 0.015, 23);
        for table in batch.tables() {
            let delta = batch.delta(table).unwrap();
            oracle.apply_delta(table, delta).unwrap();
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .unwrap();
        }
        svc.refresh_epoch().unwrap();
        svc.epoch()
    };

    let (svc, report) = ViewService::open(&dir, disabled_clone(&base), cfg, &parse).unwrap();
    assert!(report.recovered);
    assert_eq!(report.views_recovered + report.views_recomputed, 2);
    assert_eq!(svc.epoch(), epoch_before, "epoch counter not restored");
    assert_views_match(&svc, &oracle, "after restart");
    assert!(base_matches(&svc, &oracle));

    let m = svc.metrics();
    assert_eq!(m.recoveries, 1);
    assert!(m.report().contains("recovery:"));
    assert!(m.prometheus().contains("gpivot_recovery_runs_total 1"));
    let _ = fs::remove_dir_all(&dir);
}

/// Unrefreshed ingests ride the log: the pending queue survives a restart
/// and the first refresh after reopen applies them.
#[test]
fn pending_queue_survives_restart() {
    let base = small_catalog();
    let dir = tmp_dir("pending");
    let cfg = durable_config(FsyncPolicy::OnCommit);
    let mut oracle = disabled_clone(&base);

    let pending_before = {
        let (svc, _) = ViewService::open(&dir, base.clone(), cfg.clone(), &parse).unwrap();
        for (name, plan) in views() {
            svc.register_view(name, plan).unwrap();
        }
        let batch = workload::insert_new_rows(&oracle, 0.02, 31);
        for table in batch.tables() {
            let delta = batch.delta(table).unwrap();
            oracle.apply_delta(table, delta).unwrap();
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .unwrap();
        }
        let pending = svc.pending_rows();
        assert!(pending > 0, "workload produced no pending rows");
        pending
        // dropped without refresh: the rows exist only as log records
    };

    let (svc, report) = ViewService::open(&dir, disabled_clone(&base), cfg, &parse).unwrap();
    assert_eq!(svc.pending_rows(), pending_before, "pending rows lost");
    assert_eq!(report.pending_rows, pending_before);
    svc.refresh_epoch().unwrap();
    assert_views_match(&svc, &oracle, "after replayed refresh");
    let _ = fs::remove_dir_all(&dir);
}

/// A torn tail (half-written record at the end of the log) is truncated at
/// the last valid record — recovery proceeds and counts it.
#[test]
fn torn_log_tail_is_truncated_not_fatal() {
    let base = small_catalog();
    let dir = tmp_dir("torn");
    let cfg = durable_config(FsyncPolicy::OnCommit);
    let mut oracle = disabled_clone(&base);

    {
        let (svc, _) = ViewService::open(&dir, base.clone(), cfg.clone(), &parse).unwrap();
        for (name, plan) in views() {
            svc.register_view(name, plan).unwrap();
        }
        let batch = workload::mixed_batch(&oracle, 0.02, 41);
        for table in batch.tables() {
            let delta = batch.delta(table).unwrap();
            oracle.apply_delta(table, delta).unwrap();
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .unwrap();
        }
        svc.refresh_epoch().unwrap();
    }

    // Simulate a crash mid-append: garbage bytes after the last record.
    let gen = *list_wal_gens(&dir).unwrap().last().unwrap();
    let path = wal_path(&dir, gen);
    let mut bytes = fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0x42, 0x00, 0x00, 0x00, 0xde, 0xad]);
    fs::write(&path, bytes).unwrap();

    let (svc, report) = ViewService::open(&dir, disabled_clone(&base), cfg, &parse).unwrap();
    assert_eq!(report.torn_tails_truncated, 1);
    assert_eq!(svc.metrics().recovery_torn_tails, 1);
    assert_views_match(&svc, &oracle, "after torn-tail recovery");
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupt (or bogus newer) checkpoint file is skipped and recovery
/// falls back to the older valid one plus full log replay.
#[test]
fn corrupt_checkpoint_falls_back_to_older() {
    let base = small_catalog();
    let dir = tmp_dir("ckpt");
    let cfg = durable_config(FsyncPolicy::OnCommit);
    let mut oracle = disabled_clone(&base);

    {
        let (svc, _) = ViewService::open(&dir, base.clone(), cfg.clone(), &parse).unwrap();
        for (name, plan) in views() {
            svc.register_view(name, plan).unwrap();
        }
        let batch = workload::mixed_batch(&oracle, 0.02, 51);
        for table in batch.tables() {
            let delta = batch.delta(table).unwrap();
            oracle.apply_delta(table, delta).unwrap();
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .unwrap();
        }
        svc.refresh_epoch().unwrap();
    }

    // A newer checkpoint that never finished: load_latest must skip it and
    // use the bootstrap checkpoint + the full gen-1 log.
    fs::write(checkpoint_path(&dir, 9), b"GARBAGE-NOT-A-CHECKPOINT").unwrap();

    let (svc, report) = ViewService::open(&dir, disabled_clone(&base), cfg, &parse).unwrap();
    assert_eq!(report.corrupt_checkpoints_skipped, 1);
    assert_eq!(svc.metrics().recovery_corrupt_checkpoints, 1);
    assert_views_match(&svc, &oracle, "after corrupt-checkpoint fallback");
    let _ = fs::remove_dir_all(&dir);
}

/// `FsyncPolicy::Always`: a kill at the ingest fsync leaves the record
/// durable but unacknowledged. Recovery must surface it exactly once — the
/// client checks the pending watermark before deciding to resubmit.
#[test]
fn always_policy_unacked_ingest_is_exactly_once() {
    let base = small_catalog();
    let cfg = durable_config(FsyncPolicy::Always);
    let mut oracle = disabled_clone(&base);
    let batch = workload::insert_new_rows(&oracle, 0.02, 61);
    let items: Vec<(String, Delta)> = batch
        .tables()
        .map(|t| (t.to_string(), batch.delta(t).unwrap().clone()))
        .collect();
    for (t, d) in &items {
        oracle.apply_delta(t, d).unwrap();
    }

    // Dry run counts the fsyncs this schedule performs.
    let probe = FaultInjector::seeded(9);
    {
        let dir = tmp_dir("always-dry");
        let mut seed = base.clone();
        seed.set_fault_injector(probe.clone());
        let (svc, _) = ViewService::open(&dir, seed, cfg.clone(), &parse).unwrap();
        svc.register_view("view3", view3()).unwrap();
        for (t, d) in &items {
            svc.ingest_with(t, d.clone(), IngestOptions::blocking())
                .unwrap();
        }
        svc.refresh_epoch().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    for nth in 1..=probe.site_checks(FaultSite::WalFsync) {
        let dir = tmp_dir("always");
        let injector = FaultInjector::seeded(9).with_kill_point(FaultSite::WalFsync, nth);
        let mut seed = base.clone();
        seed.set_fault_injector(injector);

        let mut acked = 0usize;
        let crashed = 'run: {
            let svc = match ViewService::open(&dir, seed.clone(), cfg.clone(), &parse) {
                Ok((svc, _)) => svc,
                Err(e) => {
                    assert!(is_kill(&e));
                    break 'run true;
                }
            };
            if svc.register_view("view3", view3()).is_err() {
                break 'run true;
            }
            for (t, d) in &items {
                match svc.ingest_with(t, d.clone(), IngestOptions::blocking()) {
                    Ok(()) => acked += 1,
                    Err(e) => {
                        assert!(is_kill(&e));
                        break 'run true;
                    }
                }
            }
            match svc.refresh_epoch() {
                Ok(_) => false,
                Err(e) => {
                    assert!(is_kill(&e));
                    break 'run true;
                }
            }
        };

        let (svc, _) = ViewService::open(&dir, disabled_clone(&base), cfg.clone(), &parse)
            .expect("recovery must succeed");
        if crashed {
            assert!(svc.verify_all().unwrap(), "fsync kill {nth}: partial state");
            if svc.view_names().is_empty() {
                svc.register_view("view3", view3()).unwrap();
            }
            // Resubmit only what recovery did not surface: an unacked item
            // is in the recovered pending queue iff its append + fsync both
            // reached the file before the kill.
            let committed_rows = if svc.epoch() > 0 {
                items.iter().map(|(_, d)| d.total_multiplicity()).sum()
            } else {
                0u64
            };
            let durable_rows = svc.metrics().rows_ingested + committed_rows;
            let mut seen = 0u64;
            for (t, d) in &items {
                if seen + d.total_multiplicity() > durable_rows {
                    svc.ingest_with(t, d.clone(), IngestOptions::blocking())
                        .unwrap();
                }
                seen += d.total_multiplicity();
            }
            let _ = acked;
        }
        while svc.pending_rows() > 0 {
            svc.refresh_epoch().unwrap();
        }
        let snap = svc.snapshot();
        let got = snap.query_view("view3").unwrap();
        let expected = Executor::new().run(&view3(), &oracle).unwrap();
        assert!(
            got.bag_eq(&expected),
            "fsync kill {nth}: not exactly-once ({} rows, want {})",
            got.len(),
            expected.len(),
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// `save_to` exports a non-durable service; `open` on the export serves
/// the same views.
#[test]
fn save_to_then_open_round_trips() {
    let base = small_catalog();
    let mut oracle = disabled_clone(&base);
    let svc = ViewService::new(base.clone(), durable_config(FsyncPolicy::OnCommit));
    assert!(!svc.is_durable());
    for (name, plan) in views() {
        svc.register_view(name, plan).unwrap();
    }
    let batch = workload::mixed_batch(&oracle, 0.02, 71);
    for table in batch.tables() {
        let delta = batch.delta(table).unwrap();
        oracle.apply_delta(table, delta).unwrap();
        svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
            .unwrap();
    }
    svc.refresh_epoch().unwrap();

    let dir = tmp_dir("save");
    svc.save_to(&dir).unwrap();
    let (reopened, report) = ViewService::open(
        &dir,
        disabled_clone(&base),
        durable_config(FsyncPolicy::OnCommit),
        &parse,
    )
    .unwrap();
    assert!(report.recovered);
    assert!(reopened.is_durable());
    assert_eq!(reopened.epoch(), svc.epoch());
    assert_views_match(&reopened, &oracle, "after save_to/open");
    let _ = fs::remove_dir_all(&dir);
}
