//! Shard-equivalence tests: an N-shard [`ShardedService`] must be
//! observationally identical to the unsharded engine for every plan the
//! analyzer proves shard-safe — the paper's three TPC-H evaluation views
//! — across seeded insert/delete schedules, including heavy-key
//! promotions forced mid-schedule.
//!
//! Shard counts come from `GPIVOT_SHARDS` (comma-separated, e.g.
//! `GPIVOT_SHARDS=1,4`), defaulting to `1,2,4`; CI runs the matrix.

use gpivot_core::SourceDeltas;
use gpivot_exec::Executor;
use gpivot_serve::{IngestOptions, ServeConfig, ShardedService, ViewPlacement};
use gpivot_storage::Catalog;
use gpivot_tpch::gen::{generate, TpchConfig};
use gpivot_tpch::views::{view1, view2, view3, VIEW2_THRESHOLD};
use gpivot_tpch::workload;
use proptest::prelude::*;

fn small_catalog() -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.02)
    })
}

/// Shard counts under test: `GPIVOT_SHARDS=a,b,...` or the default 1,2,4.
fn shard_counts() -> Vec<usize> {
    std::env::var("GPIVOT_SHARDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn sharded_service(catalog: Catalog, shards: usize, heavy_threshold: u64) -> ShardedService {
    let cfg = ServeConfig::builder()
        .workers(4)
        .shards(shards)
        .heavy_key_threshold(heavy_threshold)
        .build()
        .unwrap();
    let svc = ShardedService::new(catalog, cfg);
    svc.register_view("view1", view1()).unwrap();
    svc.register_view("view2", view2(VIEW2_THRESHOLD)).unwrap();
    svc.register_view("view3", view3()).unwrap();
    svc
}

/// One batch of the §7 delta workloads, picked by `kind`.
fn batch_for(kind: u8, mirror: &Catalog, seed: u64) -> SourceDeltas {
    match kind % 4 {
        0 => workload::mixed_batch(mirror, 0.02, seed),
        1 => workload::order_churn(mirror, 0.015, seed),
        2 => workload::delete_fraction(mirror, "lineitem", 0.01, seed),
        _ => workload::insert_new_rows(mirror, 0.015, seed),
    }
}

/// Every view must equal its definition recomputed from scratch over the
/// mirror catalog — for every shard count, so all shardings are
/// transitively bag-equal to each other too.
fn assert_all_match_oracle(services: &[(usize, ShardedService)], mirror: &Catalog) {
    for (shards, svc) in services {
        let snap = svc.snapshot();
        for (name, plan) in [
            ("view1", view1()),
            ("view2", view2(VIEW2_THRESHOLD)),
            ("view3", view3()),
        ] {
            let got = snap.query_view(name).unwrap();
            let expected = Executor::new().run(&plan, mirror).unwrap();
            assert!(
                got.bag_eq(&expected),
                "{name} with {shards} shard(s) diverged at epoch {}: \
                 got {} rows, want {}",
                snap.epoch(),
                got.len(),
                expected.len(),
            );
        }
        drop(snap);
        assert!(svc.verify_all().unwrap(), "{shards}-shard self-check");
    }
}

#[test]
fn all_three_views_prove_shard_safe_and_place_sharded() {
    let n = shard_counts().into_iter().max().unwrap_or(4).max(2);
    let svc = sharded_service(small_catalog(), n, 0);
    for name in ["view1", "view2", "view3"] {
        let placement = svc.placement(name).unwrap();
        match placement {
            ViewPlacement::Sharded { diagnostic, .. } => {
                assert!(diagnostic.contains("GP024"), "{name}: {diagnostic}");
            }
            other => panic!("{name} must place sharded, got {other:?}"),
        }
    }
    // The direct analyzer verdict agrees with the placement decision.
    let catalog = small_catalog();
    for plan in [view1(), view2(VIEW2_THRESHOLD), view3()] {
        assert!(gpivot_analyze::shard_safety(&plan, &catalog).is_safe());
    }
}

#[test]
fn unprovable_plan_registers_single_shard_with_info_diagnostic() {
    use gpivot_algebra::{AggSpec, PlanBuilder};
    let svc = sharded_service(small_catalog(), 2, 0);
    // A global aggregate has no group key to partition on: unprovable,
    // but it must still register (on the root) rather than error.
    let global = PlanBuilder::scan("lineitem")
        .group_by(&[], vec![AggSpec::sum("l_extendedprice", "revenue")])
        .build();
    svc.register_view("revenue_total", global).unwrap();
    let placement = svc.placement("revenue_total").unwrap();
    assert!(!placement.is_sharded());
    let diag = placement.diagnostic().unwrap().to_string();
    assert!(diag.contains("GP023"), "{diag}");
    assert!(diag.contains("info"), "GP023 must be Info severity: {diag}");
    // It refreshes and serves alongside the sharded views.
    let batch = workload::mixed_batch(&small_catalog(), 0.02, 7);
    for table in batch.tables() {
        svc.ingest_with(
            table,
            batch.delta(table).unwrap().clone(),
            IngestOptions::blocking(),
        )
        .unwrap();
    }
    svc.refresh_epoch().unwrap();
    assert_eq!(svc.query_view("revenue_total").unwrap().len(), 1);
    assert!(svc.verify_all().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The core equivalence property: for a random seeded schedule of §7
    /// workload batches, every shard count in the matrix refreshes to
    /// exactly the unsharded oracle's contents for all three views —
    /// with the heavy-key threshold set low enough that churned custkeys
    /// are promoted to the heavy shard mid-schedule.
    #[test]
    fn n_shard_refresh_is_bag_equal_to_unsharded_oracle(
        schedule in prop::collection::vec((0u8..4, 0u64..10_000), 2..4),
        promote_seed in 0u64..10_000,
    ) {
        let catalog = small_catalog();
        let mut mirror = catalog.clone();
        // Threshold 2: one churn round (delete+insert) on a custkey is
        // enough to promote it, so promotions fire mid-schedule.
        let services: Vec<(usize, ShardedService)> = shard_counts()
            .into_iter()
            .map(|n| (n, sharded_service(catalog.clone(), n, 2)))
            .collect();
        assert_all_match_oracle(&services, &mirror); // initial materialization

        // Force at least one promotion-heavy batch into the middle.
        let mut rounds: Vec<(u8, u64)> = schedule.clone();
        rounds.insert(rounds.len() / 2, (1, promote_seed));

        for (kind, seed) in rounds {
            let batch = batch_for(kind, &mirror, seed);
            for table in batch.tables() {
                let delta = batch.delta(table).unwrap();
                for (_, svc) in &services {
                    svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                        .unwrap();
                }
                mirror.apply_delta(table, delta).unwrap();
            }
            for (_, svc) in &services {
                svc.refresh_epoch().unwrap();
            }
            assert_all_match_oracle(&services, &mirror);
        }

        // The promotion machinery actually engaged on the sharded runs
        // (order churn always touches partitioned custkeys).
        for (shards, svc) in &services {
            if *shards > 1 {
                prop_assert!(
                    !svc.heavy_keys().is_empty(),
                    "{shards}-shard run should have promoted at least one key"
                );
            }
        }
    }
}
