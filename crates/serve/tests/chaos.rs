//! Chaos harness: the TPC-H evaluation views maintained under seeded fault
//! schedules — injected scan/propagate/apply/commit failures and worker
//! panics — with an oracle catalog tracking exactly what each *committed*
//! epoch should contain.
//!
//! Invariants exercised:
//! * every committed epoch is all-or-nothing (service state always equals
//!   the oracle built from successful epochs only);
//! * a failed epoch loses nothing (restored deltas commit later);
//! * injected panics are isolated — no lock is ever poisoned, the service
//!   stays fully operational afterwards;
//! * once the fault budget is spent the system drains clean and every view
//!   table equals recomputation on a mirror catalog.
//!
//! Seeds are fixed for CI; set `GPIVOT_CHAOS_SEED` to probe a single
//! alternative schedule.

use gpivot_core::SourceDeltas;
use gpivot_exec::Executor;
use gpivot_serve::{IngestOptions, ServeConfig, ViewHealth, ViewService};
use gpivot_storage::{Catalog, FaultInjector, FaultSite};
use gpivot_tpch::gen::{generate, TpchConfig};
use gpivot_tpch::views::{view1, view2, view3};
use gpivot_tpch::workload;
use std::sync::Once;

const ROUNDS: u64 = 8;
const MAX_ATTEMPTS_PER_ROUND: usize = 16;
const FAULT_BUDGET: u64 = 80;
const MIN_FAULTS: u64 = 20;

static SILENCE_INJECTED_PANICS: Once = Once::new();

/// Keep test output readable: suppress the default panic report for
/// *injected* panics (they are expected by the dozen) while leaving every
/// other panic — including assertion failures — fully reported.
fn install_panic_filter() {
    SILENCE_INJECTED_PANICS.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

fn small_catalog() -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.02)
    })
}

fn views() -> [(&'static str, gpivot_algebra::Plan); 3] {
    [
        ("view1", view1()),
        ("view2", view2(30_000.0)),
        ("view3", view3()),
    ]
}

/// Compare every non-quarantined view against recomputation on `oracle`.
fn assert_matches_oracle(svc: &ViewService, oracle: &Catalog, context: &str) {
    let quarantined: Vec<String> = svc
        .metrics()
        .quarantined_views()
        .into_iter()
        .map(String::from)
        .collect();
    let snap = svc.snapshot();
    for (name, plan) in views() {
        if quarantined.iter().any(|q| q == name) {
            continue;
        }
        let got = snap.query_view(name).unwrap();
        let expected = Executor::new().run(&plan, oracle).unwrap();
        assert!(
            got.bag_eq(&expected),
            "{context}: view {name} diverged at epoch {} ({} rows, want {})",
            snap.epoch(),
            got.len(),
            expected.len(),
        );
    }
}

fn chaos_run(seed: u64) {
    install_panic_filter();

    // Random faults at every site; a fraction of propagate/scan faults are
    // full worker panics. The budget guarantees the run drains clean.
    let injector = FaultInjector::seeded(seed)
        .with_site(FaultSite::Scan, 0.12, 0.25)
        .with_site(FaultSite::Propagate, 0.35, 0.30)
        .with_site(FaultSite::Apply, 0.25, 0.0)
        .with_site(FaultSite::Commit, 0.10, 0.0)
        .with_budget(FAULT_BUDGET);
    injector.disarm();

    let mut catalog = small_catalog();
    // `shadow` sees every ingested delta immediately — workload generators
    // sample it so deletes always target rows that will eventually exist.
    // `committed` mirrors only successful epochs — the all-or-nothing
    // oracle. Clones share the injector handle, so both mirrors get a
    // disabled one.
    let mut shadow = catalog.clone();
    shadow.set_fault_injector(FaultInjector::disabled());
    let mut committed = catalog.clone();
    committed.set_fault_injector(FaultInjector::disabled());
    catalog.set_fault_injector(injector.clone());

    let svc = ViewService::new(
        catalog,
        ServeConfig::builder()
            .workers(4)
            .max_retries(2)
            .retry_backoff(std::time::Duration::ZERO)
            .quarantine_after(4)
            .build()
            .unwrap(),
    );
    for (name, plan) in views() {
        svc.register_view(name, plan).unwrap();
    }
    assert_matches_oracle(&svc, &committed, "initial materialization");

    // Everything after this point runs under fire.
    injector.arm();

    let mut pending: Vec<SourceDeltas> = Vec::new();
    let mut failed_epochs = 0u64;
    for round in 0..ROUNDS {
        let ws = seed.wrapping_mul(100) + round;
        let batch = match round % 4 {
            0 => workload::mixed_batch(&shadow, 0.015, ws),
            1 => workload::order_churn(&shadow, 0.01, ws),
            2 => workload::delete_fraction(&shadow, "lineitem", 0.008, ws),
            _ => workload::insert_new_rows(&shadow, 0.015, ws),
        };
        for table in batch.tables() {
            let delta = batch.delta(table).unwrap();
            shadow.apply_delta(table, delta).unwrap();
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .unwrap();
        }
        pending.push(batch);

        let mut succeeded = false;
        for _ in 0..MAX_ATTEMPTS_PER_ROUND {
            match svc.refresh_epoch() {
                Ok(_) => {
                    succeeded = true;
                    break;
                }
                Err(e) => {
                    assert!(
                        e.is_transient(),
                        "chaos must only surface transient errors, got: {e}"
                    );
                    failed_epochs += 1;
                }
            }
        }
        if succeeded {
            // The epoch committed, so every pending delta is now in the
            // base tables — all-or-nothing means the oracle absorbs them
            // all at once.
            for batch in pending.drain(..) {
                for table in batch.tables() {
                    committed
                        .apply_delta(table, batch.delta(table).unwrap())
                        .unwrap();
                }
            }
            assert_matches_oracle(&svc, &committed, "after committed round");
        }
        // A round that never committed keeps its deltas pending (restored
        // to the queue by rollback); later rounds pile on top.
    }

    // Epoch counting is exact: only committed (non-empty) epochs advanced
    // the counter, every failed attempt left it alone.
    let m = svc.metrics();
    assert_eq!(m.epochs, svc.epoch());
    assert_eq!(m.epochs_failed, failed_epochs);

    // Cease fire and drain whatever rolled-back deltas remain.
    injector.disarm();
    while svc.pending_rows() > 0 {
        svc.refresh_epoch().unwrap();
    }
    for batch in pending.drain(..) {
        for table in batch.tables() {
            committed
                .apply_delta(table, batch.delta(table).unwrap())
                .unwrap();
        }
    }

    // Re-admit anything the schedule quarantined: recomputes from current
    // base state and rejoins scheduling.
    for name in svc.metrics().quarantined_views() {
        let name = name.to_string();
        assert!(svc.view_health(&name).unwrap().is_quarantined());
        svc.retry_view(&name).unwrap();
        assert_eq!(svc.view_health(&name).unwrap(), ViewHealth::Healthy);
    }

    // Final oracle: every view byte-equal to recomputation, and the
    // service's own self-check agrees. The committed mirror and the
    // service's base tables must be identical by now.
    assert_matches_oracle(&svc, &committed, "after drain + re-admission");
    assert!(svc.verify_all().unwrap());
    {
        let snap = svc.snapshot();
        for table in committed.table_names() {
            assert!(
                snap.manager()
                    .catalog()
                    .table(table)
                    .unwrap()
                    .bag_eq(committed.table(table).unwrap()),
                "base table {table} diverged from the committed mirror"
            );
        }
    }

    // The schedule actually did something: enough faults fired, and the
    // service survived every one of them without poisoning a lock (every
    // call above would have panicked otherwise).
    assert!(
        injector.faults_injected() >= MIN_FAULTS,
        "seed {seed}: only {} faults fired (want >= {MIN_FAULTS}); checks: {}",
        injector.faults_injected(),
        injector.checks(),
    );
    assert!(
        failed_epochs > 0,
        "seed {seed}: chaos never failed an epoch"
    );
    println!(
        "seed {seed}: {} checks, {} faults ({} panics), {} committed / {} failed epochs, {} retries",
        injector.checks(),
        injector.faults_injected(),
        injector.panics_injected(),
        svc.epoch(),
        failed_epochs,
        svc.metrics().per_view.values().map(|v| v.retries).sum::<u64>(),
    );
}

#[test]
fn chaos_seeded_schedules() {
    if let Ok(seed) = std::env::var("GPIVOT_CHAOS_SEED") {
        chaos_run(seed.parse().expect("GPIVOT_CHAOS_SEED must be a u64"));
        return;
    }
    for seed in [11, 23, 47] {
        chaos_run(seed);
    }
}

/// Deterministic panic drill: the first propagate of `view1` is a
/// guaranteed worker panic (probability 1, panic fraction 1, budget 1).
/// The panic must be isolated at the task boundary, converted into a
/// transient error, retried within the same epoch, and the epoch must
/// commit — with no lock poisoned anywhere.
#[test]
fn injected_worker_panic_is_isolated_and_retried() {
    install_panic_filter();

    let injector = FaultInjector::seeded(7)
        .with_targeted_site(FaultSite::Propagate, 1.0, 1.0, "view1")
        .with_budget(1);
    injector.disarm();

    let mut catalog = small_catalog();
    let mut mirror = catalog.clone();
    mirror.set_fault_injector(FaultInjector::disabled());
    catalog.set_fault_injector(injector.clone());

    let svc = ViewService::new(
        catalog,
        ServeConfig::builder()
            .workers(2)
            .max_retries(2)
            .retry_backoff(std::time::Duration::ZERO)
            .build()
            .unwrap(),
    );
    for (name, plan) in views() {
        svc.register_view(name, plan).unwrap();
    }

    injector.arm();
    let batch = workload::mixed_batch(&mirror, 0.02, 99);
    for table in batch.tables() {
        let delta = batch.delta(table).unwrap();
        mirror.apply_delta(table, delta).unwrap();
        svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
            .unwrap();
    }
    // One epoch: view1's first attempt panics (the budget's single fault),
    // the retry succeeds, the epoch commits.
    let summary = svc.refresh_epoch().unwrap();
    assert_eq!(summary.epoch, 1);
    assert!(summary.retries >= 1, "the panicked attempt must be retried");
    assert_eq!(injector.panics_injected(), 1);

    let m = svc.metrics();
    assert_eq!(m.panics_isolated, 1);
    assert_eq!(m.epochs_failed, 0);
    assert!(m.per_view["view1"].retries >= 1);
    assert_eq!(m.per_view["view1"].health, ViewHealth::Healthy);

    // No poisoned lock anywhere: every lock class is exercised again.
    injector.disarm();
    assert!(svc.verify_all().unwrap());
    assert_matches_oracle(&svc, &mirror, "after panic drill");
}
