//! Concurrency test: 4 producer threads ingesting interleaved insert/delete
//! batches under a tight backpressure watermark, two concurrent refresher
//! threads running epochs, and a snapshot reader checking for torn reads —
//! all while the metrics must reconcile exactly with what was sent.

use gpivot_serve::{IngestOptions, ServeConfig, ViewService};
use gpivot_storage::{row, Catalog, DataType, Delta, Row, Schema, Table, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const PRODUCERS: usize = 4;
const BATCHES_PER_PRODUCER: i64 = 40;
const INSERTS_PER_BATCH: i64 = 4;
const DELETES_PER_BATCH: i64 = 2;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Int),
            ],
            &["id", "attr"],
        )
        .unwrap(),
    );
    c.register("facts", Table::from_rows(schema, vec![]).unwrap())
        .unwrap();
    c
}

fn pivot_plan() -> gpivot_algebra::Plan {
    gpivot_algebra::PlanBuilder::scan("facts")
        .gpivot(gpivot_algebra::PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ))
        .build()
}

/// The deterministic row a producer writes: unique key per (producer,
/// batch, slot), value derived from the id so deletes can re-derive it.
fn fact_row(producer: i64, batch: i64, slot: i64) -> Row {
    let id = producer * 1_000_000 + batch * 100 + slot;
    let attr = if slot % 2 == 0 { "a" } else { "b" };
    row![id, attr, id % 97]
}

#[test]
fn producers_refreshers_and_readers_dont_tear() {
    let svc = ViewService::new(
        catalog(),
        ServeConfig::builder()
            .workers(4)
            // Tight watermark so backpressure actually engages.
            .max_pending_rows(16)
            .build()
            .unwrap(),
    );
    // Two views with identical definitions: any torn snapshot shows up as
    // the pair disagreeing under a single read guard.
    svc.register_view("torn_a", pivot_plan()).unwrap();
    svc.register_view("torn_b", pivot_plan()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let rows_sent = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // 4 producers: each batch inserts new rows and deletes some rows
        // from its previous batch (which may still be queued — cancelling —
        // or already committed — a real base-table delete).
        for p in 0..PRODUCERS as i64 {
            let svc = svc.clone();
            let rows_sent = Arc::clone(&rows_sent);
            s.spawn(move || {
                for b in 0..BATCHES_PER_PRODUCER {
                    let mut d = Delta::new();
                    for k in 0..INSERTS_PER_BATCH {
                        d.add(fact_row(p, b, k), 1);
                    }
                    if b > 0 {
                        for k in 0..DELETES_PER_BATCH {
                            d.add(fact_row(p, b - 1, k), -1);
                        }
                    }
                    rows_sent.fetch_add(d.total_multiplicity(), Ordering::SeqCst);
                    svc.ingest_with("facts", d, IngestOptions::blocking())
                        .unwrap();
                }
            });
        }

        // 2 concurrent refreshers (the gate serializes actual epochs).
        for _ in 0..2 {
            let svc = svc.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) || svc.pending_rows() > 0 {
                    svc.refresh_epoch().unwrap();
                    std::thread::yield_now();
                }
            });
        }

        // Snapshot reader: both views must agree under one guard, always.
        {
            let svc = svc.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut epochs_seen = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let snap = svc.snapshot();
                    let a = snap.query_view("torn_a").unwrap();
                    let b = snap.query_view("torn_b").unwrap();
                    assert!(
                        a.bag_eq(&b),
                        "torn snapshot at epoch {}: {} vs {} rows",
                        snap.epoch(),
                        a.len(),
                        b.len(),
                    );
                    epochs_seen = epochs_seen.max(snap.epoch());
                    drop(snap);
                    std::thread::yield_now();
                }
                epochs_seen
            });
        }

        // Producers are the threads that terminate on their own; everything
        // else runs until we flip the stop flag. Scoped threads join at the
        // end of the scope — completing it at all proves no deadlock.
        // (Producer handles are the first PRODUCERS spawns; easiest is to
        // wait for the queue to settle.)
        loop {
            let m = svc.metrics();
            let target = (PRODUCERS as u64)
                * (INSERTS_PER_BATCH as u64 * BATCHES_PER_PRODUCER as u64
                    + DELETES_PER_BATCH as u64 * (BATCHES_PER_PRODUCER as u64 - 1));
            if m.rows_ingested == target {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // Drain whatever the refreshers left behind.
    svc.refresh_epoch().unwrap();
    assert_eq!(svc.pending_rows(), 0);

    // No torn state at rest either, and the views match recomputation.
    assert!(svc.verify_all().unwrap());
    let a = svc.query_view("torn_a").unwrap();
    let b = svc.query_view("torn_b").unwrap();
    assert!(a.bag_eq(&b));

    // Metrics reconcile exactly with what the producers sent.
    let m = svc.metrics();
    assert_eq!(m.rows_ingested, rows_sent.load(Ordering::SeqCst));
    assert_eq!(m.rows_drained_raw, m.rows_ingested);
    assert_eq!(m.pending_rows, 0);
    assert_eq!(
        m.batches_ingested,
        (PRODUCERS as u64) * (BATCHES_PER_PRODUCER as u64),
    );
    assert!(m.epochs >= 1);
    assert_eq!(m.epochs_failed, 0);
    // The tight watermark must have made at least one producer wait.
    assert!(m.ingest_waits > 0, "backpressure never engaged");
    // Both views were refreshed the same number of times (same dependency).
    assert_eq!(
        m.per_view["torn_a"].refreshes,
        m.per_view["torn_b"].refreshes,
    );
}

#[test]
fn registry_changes_interleave_with_refreshes() {
    // Register/drop while epochs are running: the gate serializes them, so
    // nothing tears and late registrations see committed base state.
    let svc = ViewService::new(catalog(), ServeConfig::default());
    svc.register_view("v0", pivot_plan()).unwrap();

    std::thread::scope(|s| {
        let writer = svc.clone();
        s.spawn(move || {
            for b in 0..20 {
                let mut d = Delta::new();
                for k in 0..4 {
                    d.add(fact_row(9, b, k), 1);
                }
                writer
                    .ingest_with("facts", d, IngestOptions::blocking())
                    .unwrap();
                writer.refresh_epoch().unwrap();
            }
        });
        let churner = svc.clone();
        s.spawn(move || {
            for i in 0..10 {
                let name = format!("tmp{i}");
                churner.register_view(name.clone(), pivot_plan()).unwrap();
                assert!(churner.verify_all().unwrap());
                churner.drop_view(&name).unwrap();
            }
        });
    });

    assert!(svc.verify_all().unwrap());
    assert_eq!(svc.view_names(), vec!["v0".to_string()]);
}
