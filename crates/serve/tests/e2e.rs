//! End-to-end service test: the paper's three TPC-H evaluation views
//! registered in one service, fed interleaved insert/delete batches over
//! several epochs, and oracle-checked against full recomputation on an
//! independently-maintained mirror catalog.

use gpivot_core::SourceDeltas;
use gpivot_exec::Executor;
use gpivot_serve::{IngestOptions, ServeConfig, ViewService};
use gpivot_storage::Catalog;
use gpivot_tpch::gen::{generate, TpchConfig};
use gpivot_tpch::views::{view1, view2, view3};
use gpivot_tpch::workload;

fn small_catalog() -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.02)
    })
}

/// Feed every per-table delta of a workload batch to the service as its own
/// producer batch, and mirror it onto the oracle catalog.
fn ingest_and_mirror(svc: &ViewService, mirror: &mut Catalog, batch: &SourceDeltas) {
    for table in batch.tables() {
        let delta = batch.delta(table).unwrap();
        svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
            .unwrap();
        mirror.apply_delta(table, delta).unwrap();
    }
}

/// Every registered view must equal its definition recomputed from scratch
/// on the mirror catalog (the `oracle.rs` approach, service-level).
fn assert_oracle(svc: &ViewService, mirror: &Catalog) {
    let snap = svc.snapshot();
    for (name, plan) in [
        ("view1", view1()),
        ("view2", view2(30_000.0)),
        ("view3", view3()),
    ] {
        let got = snap.query_view(name).unwrap();
        let expected = Executor::new().run(&plan, mirror).unwrap();
        assert!(
            got.bag_eq(&expected),
            "view {name} diverged from recomputation at epoch {}:\n got {} rows, want {}",
            snap.epoch(),
            got.len(),
            expected.len(),
        );
    }
    drop(snap);
    // And the service's own self-check agrees.
    assert!(svc.verify_all().unwrap());
}

#[test]
fn three_views_interleaved_batches_over_epochs() {
    let catalog = small_catalog();
    let mut mirror = catalog.clone();
    let svc = ViewService::new(catalog, ServeConfig::builder().workers(4).build().unwrap());

    svc.register_view("view1", view1()).unwrap();
    svc.register_view("view2", view2(30_000.0)).unwrap();
    svc.register_view("view3", view3()).unwrap();
    assert_eq!(svc.view_names().len(), 3);
    assert_oracle(&svc, &mirror); // initial materialization

    // Epoch 1: mixed insert/update/delete lineitem batch plus order churn —
    // interleaved inserts and deletes across two base tables.
    let mut sent_rows = 0;
    let b1 = workload::mixed_batch(&mirror, 0.02, 11);
    let b2 = workload::order_churn(&mirror, 0.01, 12);
    for b in [&b1, &b2] {
        sent_rows += b.total_changes();
        ingest_and_mirror(&svc, &mut mirror, b);
    }
    let s1 = svc.refresh_epoch().unwrap();
    assert_eq!(s1.epoch, 1);
    assert_eq!(svc.epoch(), 1);
    assert!(
        s1.views_refreshed >= 2,
        "lineitem+orders touch at least v1/v2/v3"
    );
    assert_oracle(&svc, &mirror);

    // Epoch 2: pure deletes plus customer churn (delete+insert pairs).
    let b3 = workload::delete_fraction(&mirror, "lineitem", 0.01, 13);
    let b4 = workload::customer_churn(&mirror, 0.02, 14);
    for b in [&b3, &b4] {
        sent_rows += b.total_changes();
        ingest_and_mirror(&svc, &mut mirror, b);
    }
    let s2 = svc.refresh_epoch().unwrap();
    assert_eq!(s2.epoch, 2);
    assert_oracle(&svc, &mirror);

    // Epoch 3: inserts of brand-new orders/lineitems.
    let b5 = workload::insert_new_rows(&mirror, 0.02, 15);
    sent_rows += b5.total_changes();
    ingest_and_mirror(&svc, &mut mirror, &b5);
    let s3 = svc.refresh_epoch().unwrap();
    assert_eq!(s3.epoch, 3);
    assert_oracle(&svc, &mirror);

    // Metrics reconcile with what was actually sent.
    let m = svc.metrics();
    assert_eq!(m.rows_ingested, sent_rows);
    assert_eq!(m.rows_drained_raw, sent_rows);
    assert_eq!(m.pending_rows, 0);
    assert_eq!(m.epochs, 3);
    assert_eq!(m.epochs_failed, 0);
    assert!(m.coalescing_ratio().unwrap() <= 1.0);
    assert!(m.per_view["view1"].refreshes >= 1);
    assert!(m.per_view["view3"].rows_applied > 0);
    assert!(m.report().contains("view view2"));
}

#[test]
fn worker_pool_sizes_agree() {
    // The same batch refreshed with 1 worker and with 8 workers must yield
    // identical view contents (parallelism is invisible).
    let catalog = small_catalog();
    let batch = workload::mixed_batch(&catalog, 0.02, 21);

    let mut tables = Vec::new();
    for workers in [1usize, 8] {
        let svc = ViewService::new(
            catalog.clone(),
            ServeConfig::builder().workers(workers).build().unwrap(),
        );
        svc.register_view("view1", view1()).unwrap();
        svc.register_view("view2", view2(30_000.0)).unwrap();
        svc.register_view("view3", view3()).unwrap();
        for t in batch.tables() {
            svc.ingest_with(
                t,
                batch.delta(t).unwrap().clone(),
                IngestOptions::blocking(),
            )
            .unwrap();
        }
        svc.refresh_epoch().unwrap();
        tables.push(["view1", "view2", "view3"].map(|v| svc.query_view(v).unwrap()));
    }
    for (a, b) in tables[0].iter().zip(&tables[1]) {
        assert!(a.bag_eq(b), "worker-pool size changed view contents");
    }
}

#[test]
fn dropping_a_view_leaves_the_rest_consistent() {
    let catalog = small_catalog();
    let mut mirror = catalog.clone();
    let svc = ViewService::new(catalog, ServeConfig::default());
    svc.register_view("view1", view1()).unwrap();
    svc.register_view("view3", view3()).unwrap();

    svc.drop_view("view1").unwrap();
    let b = workload::mixed_batch(&mirror, 0.01, 31);
    for t in b.tables() {
        let d = b.delta(t).unwrap();
        svc.ingest_with(t, d.clone(), IngestOptions::blocking())
            .unwrap();
        mirror.apply_delta(t, d).unwrap();
    }
    svc.refresh_epoch().unwrap();

    assert!(svc.query_view("view1").is_err());
    let got = svc.query_view("view3").unwrap();
    let expected = Executor::new().run(&view3(), &mirror).unwrap();
    assert!(got.bag_eq(&expected));
}
