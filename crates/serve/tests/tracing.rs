//! Observability integration: the span-timing histograms exported through
//! [`gpivot_serve::MetricsSnapshot`] must reconcile with the epoch
//! wall-clock counters the service has always kept — same measurements,
//! two views of them.

use gpivot_algebra::{PivotSpec, PlanBuilder};
use gpivot_serve::{IngestOptions, ServeConfig, ViewService};
use gpivot_storage::{row, Catalog, DataType, Delta, Schema, Table, Value};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Int),
            ],
            &["id", "attr"],
        )
        .unwrap(),
    );
    c.register(
        "facts",
        Table::from_rows(
            schema,
            vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn pivot_plan() -> gpivot_algebra::plan::Plan {
    PlanBuilder::scan("facts")
        .gpivot(PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("a"), Value::str("b")],
        ))
        .build()
}

#[test]
fn phase_histograms_reconcile_with_epoch_wall_clock() {
    let svc = ViewService::new(
        catalog(),
        ServeConfig::builder().workers(2).build().unwrap(),
    );
    svc.register_view("pv", pivot_plan()).unwrap();

    const EPOCHS: u64 = 5;
    for i in 0..EPOCHS {
        svc.ingest_with(
            "facts",
            Delta::from_inserts(vec![row![100 + i as i64, "a", 1]]),
            IngestOptions::blocking(),
        )
        .unwrap();
        svc.refresh_epoch().unwrap();
    }
    // One empty no-op epoch on top: drains, but must not record an
    // `epoch` sample (the epoch counter does not advance either).
    svc.refresh_epoch().unwrap();

    let m = svc.metrics();
    assert_eq!(m.epochs, EPOCHS);

    // The `epoch` histogram is fed the same measured duration as the
    // `refresh_time` / `last_epoch_time` counters, so reconciliation is
    // exact, not approximate.
    let epoch_h = m.phase_timings.get("epoch").expect("epoch histogram");
    assert_eq!(epoch_h.count(), m.epochs, "one epoch sample per epoch");
    assert_eq!(
        epoch_h.total(),
        m.refresh_time,
        "epoch histogram total must equal the refresh_time counter"
    );
    assert!(epoch_h.max() >= m.last_epoch_time || epoch_h.max() == m.last_epoch_time);
    assert!(epoch_h.min() <= m.mean_epoch_time().unwrap());

    // Coordinator sub-phases are disjoint intervals inside each epoch's
    // wall clock, so their totals can never exceed it.
    let mut sub_total = Duration::ZERO;
    for name in ["epoch.propagate", "epoch.stage", "epoch.commit"] {
        let h = m
            .phase_timings
            .get(name)
            .unwrap_or_else(|| panic!("{name} histogram missing"));
        assert_eq!(h.count(), m.epochs, "{name} fires once per committed epoch");
        sub_total += h.total();
    }
    assert!(
        sub_total <= m.refresh_time,
        "sub-phase totals {sub_total:?} exceed epoch wall clock {:?}",
        m.refresh_time
    );
    // The drain span also fires for the trailing empty no-op epoch.
    let drain = m.phase_timings.get("epoch.drain").expect("drain histogram");
    assert_eq!(drain.count(), m.epochs + 1);

    // Worker-side phases: with no faults armed, attempts == refreshes.
    let refreshes: u64 = m.per_view.values().map(|v| v.refreshes).sum();
    assert_eq!(refreshes, EPOCHS);
    let attempts = m
        .phase_timings
        .get("view.attempt")
        .expect("view.attempt histogram");
    assert_eq!(attempts.count(), refreshes);
    for name in ["maintain.propagate", "maintain.apply", "maintain.stage"] {
        assert!(
            m.phase_timings.contains_key(name),
            "{name} histogram missing"
        );
    }
    // `maintain.commit` fires inside `apply_staged` under `epoch.commit`.
    assert!(m.phase_timings.contains_key("maintain.commit"));
    // Compile-time spans from `register_view`.
    assert!(m.phase_timings.contains_key("compile.view"));
    // Operator self-times recorded while materializing / propagating.
    assert!(!m.operator_timings.is_empty(), "no op.* spans recorded");
    assert!(m.operator_timings.keys().all(|k| k.starts_with("op.")));
    assert!(m.phase_timings.keys().all(|k| !k.starts_with("op.")));
    // Clean run: no retry or quarantine events fired.
    assert_eq!(m.trace_events.get("view.retry"), None);
    assert_eq!(m.trace_events.get("view.quarantine"), None);

    // The Prometheus exposition carries the same reconciling count.
    let text = m.prometheus();
    assert!(text.contains(&format!(
        "gpivot_span_duration_seconds_count{{span=\"epoch\"}} {}",
        m.epochs
    )));
    assert!(text.contains(&format!("gpivot_epochs_total {}", m.epochs)));
}

/// Two services running concurrently must not leak spans into each other's
/// histograms: collectors are scoped per service, never global.
#[test]
fn concurrent_services_have_isolated_histograms() {
    let a = ViewService::new(catalog(), ServeConfig::default());
    let b = ViewService::new(catalog(), ServeConfig::default());
    a.register_view("pv", pivot_plan()).unwrap();
    b.register_view("pv", pivot_plan()).unwrap();

    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..3i64 {
                a.ingest_with(
                    "facts",
                    Delta::from_inserts(vec![row![50 + i, "a", 1]]),
                    IngestOptions::blocking(),
                )
                .unwrap();
                a.refresh_epoch().unwrap();
            }
        });
        s.spawn(|| {
            b.ingest_with(
                "facts",
                Delta::from_inserts(vec![row![90, "b", 2]]),
                IngestOptions::blocking(),
            )
            .unwrap();
            b.refresh_epoch().unwrap();
        });
    });

    let (ma, mb) = (a.metrics(), b.metrics());
    assert_eq!(ma.phase_timings["epoch"].count(), 3);
    assert_eq!(mb.phase_timings["epoch"].count(), 1);
    assert_eq!(ma.phase_timings["epoch"].total(), ma.refresh_time);
    assert_eq!(mb.phase_timings["epoch"].total(), mb.refresh_time);
}

/// A failing epoch records the rollback span and the quarantine event once
/// the view crosses its failure threshold — and the `epoch` histogram still
/// only counts *committed* epochs.
#[test]
fn rollback_and_quarantine_are_traced() {
    use gpivot_storage::{FaultInjector, FaultSite};
    let injector =
        FaultInjector::seeded(1).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "pv");
    injector.disarm();
    let mut cat = catalog();
    cat.set_fault_injector(injector.clone());
    let svc = ViewService::new(
        cat,
        ServeConfig::builder()
            .workers(1)
            .max_retries(0)
            .retry_backoff(Duration::ZERO)
            .retry_backoff_cap(Duration::ZERO)
            .quarantine_after(1)
            .build()
            .unwrap(),
    );
    svc.register_view("pv", pivot_plan()).unwrap();

    injector.arm();
    svc.ingest_with(
        "facts",
        Delta::from_inserts(vec![row![60, "a", 1]]),
        IngestOptions::blocking(),
    )
    .unwrap();
    assert!(svc.refresh_epoch().is_err());
    injector.disarm();

    let m = svc.metrics();
    assert_eq!(m.epochs, 0);
    assert_eq!(m.epochs_failed, 1);
    assert!(!m.phase_timings.contains_key("epoch"));
    assert_eq!(m.phase_timings["epoch.rollback"].count(), 1);
    assert_eq!(m.trace_events.get("view.quarantine"), Some(&1));
}
