//! # gpivot-analyze
//!
//! Static analysis over the `gpivot-algebra` [`Plan`] IR: a bottom-up
//! dataflow ([`facts`]) derives per-node properties — inferred candidate
//! keys and functional dependencies, key preservation (§5.1 of the paper),
//! duplicate-sensitivity, aggregate self-maintainability, GPIVOT output
//! collision sets, pairwise combinability of adjacent pivots (§4.2.3) —
//! and a lint-rule registry ([`rules`]) turns them into structured
//! [`Diagnostic`]s with stable `GP0xx` codes.
//!
//! The same codes are carried by the runtime rewrite rules in
//! `gpivot-core` (`CoreError::RuleNotApplicable`), so the static verdicts
//! and the rules' runtime rejections can be cross-checked against each
//! other; `ViewManager::register_view` runs [`analyze`] and refuses plans
//! with `Error`-severity findings.
//!
//! ```
//! use gpivot_algebra::{PivotSpec, Plan};
//! use gpivot_storage::{DataType, Schema, Value};
//! use std::collections::BTreeMap;
//! use std::sync::Arc;
//!
//! // A keyless input: pivoting it violates the §2.1 key requirement.
//! let mut schemas = BTreeMap::new();
//! schemas.insert(
//!     "t".to_string(),
//!     Arc::new(Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]).unwrap()),
//! );
//! let plan = Plan::scan("t").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
//!
//! let report = gpivot_analyze::analyze(&plan, &schemas);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code.as_str(), "GP001");
//! ```

pub mod diagnostic;
pub mod facts;
pub mod rules;
pub mod shard;

pub use diagnostic::{json_escape, DiagCode, Diagnostic, Severity};
pub use facts::{derive_facts, fd_closure, Fd, NodeFacts};
pub use rules::{code_for_algebra_error, evaluate, rules, LintRule};
pub use shard::{shard_safety, ShardRouting, ShardVerdict, TableRoute};

use gpivot_algebra::{Plan, SchemaProvider};

/// The result of analyzing one plan: diagnostics (most severe first) plus
/// the facts tree they were derived from.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// All findings, sorted most-severe-first.
    pub diagnostics: Vec<Diagnostic>,
    /// The derived per-node facts (root of the tree).
    pub facts: NodeFacts,
    /// Plan size, for reporting.
    pub node_count: usize,
    /// Number of GPIVOT nodes.
    pub pivot_count: usize,
}

impl AnalysisReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warn-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// True iff any finding is an error. `ViewManager::register_view`
    /// refuses such plans (unless lint is skipped).
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True iff there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The static maintenance-safety verdict the oracle tests validate:
    /// no error-severity finding means the view compiles and every
    /// registered maintenance strategy refreshes it exactly.
    pub fn maintenance_safe(&self) -> bool {
        !self.has_errors()
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Distinct codes present, in code order.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut codes: Vec<DiagCode> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: DiagCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Machine-readable JSON for this report (hand-rolled; no serde in the
    /// workspace).
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!(
            "{{\"node_count\":{},\"pivot_count\":{},\"errors\":{},\"warnings\":{},\
             \"infos\":{},\"diagnostics\":[{}]}}",
            self.node_count,
            self.pivot_count,
            self.errors().count(),
            self.warnings().count(),
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Info)
                .count(),
            diags.join(",")
        )
    }

    /// Render the plan tree (`Plan::explain`) with diagnostic markers on
    /// the offending lines, followed by the findings.
    pub fn render(&self, plan: &Plan) -> String {
        let explain = plan.explain();
        let mut lines: Vec<String> = explain.lines().map(String::from).collect();
        let width = lines.iter().map(|l| l.len()).max().unwrap_or(0);
        for d in &self.diagnostics {
            if let Some(idx) = d.explain_line(plan) {
                if let Some(line) = lines.get_mut(idx) {
                    let pad = width - line.len() + 2;
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&format!("<-- {}[{}]", d.severity, d.code));
                }
            }
        }
        let mut out = lines.join("\n");
        if !self.diagnostics.is_empty() {
            out.push('\n');
            for d in &self.diagnostics {
                out.push('\n');
                out.push_str(&d.to_string());
            }
        }
        out
    }
}

/// Analyze a plan against a schema provider (a `Catalog` or a
/// `BTreeMap<String, SchemaRef>`). Infallible: plans that do not
/// type-check produce `Error`-severity diagnostics attributed to the
/// offending node rather than failing the analysis.
pub fn analyze<P: SchemaProvider>(plan: &Plan, provider: &P) -> AnalysisReport {
    let facts = derive_facts(plan, provider);
    let diagnostics = evaluate(plan, &facts);
    AnalysisReport {
        diagnostics,
        node_count: plan.node_count(),
        pivot_count: plan.pivot_count(),
        facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{DataType, Schema, SchemaRef, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "iteminfo".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("attr", DataType::Str),
                        ("val", DataType::Float),
                    ],
                    &["id", "attr"],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "product".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("pid", DataType::Int), ("maker", DataType::Str)],
                    &["pid"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn pivot() -> PlanBuilder {
        PlanBuilder::scan("iteminfo").gpivot(PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("TV"), Value::str("VCR")],
        ))
    }

    #[test]
    fn clean_pivot_join_plan() {
        let plan = pivot()
            .join(PlanBuilder::scan("product"), vec![("id", "pid")])
            .build();
        let report = analyze(&plan, &provider());
        assert!(report.is_clean(), "unexpected: {:?}", report.diagnostics);
        assert!(report.maintenance_safe());
        assert_eq!(report.pivot_count, 1);
    }

    #[test]
    fn keyless_pivot_is_gp001() {
        let mut p = provider();
        p.insert(
            "nokey".to_string(),
            Arc::new(Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]).unwrap()),
        );
        let plan = Plan::scan("nokey").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
        let report = analyze(&plan, &p);
        assert!(report.has_errors());
        assert_eq!(report.codes(), vec![DiagCode::Gp001PivotInputNoKey]);
        assert_eq!(report.diagnostics[0].plan_path, Vec::<usize>::new());
    }

    #[test]
    fn measure_in_key_is_gp002() {
        let mut p = provider();
        p.insert(
            "t".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("a", DataType::Str), ("b", DataType::Int)],
                    &["a", "b"],
                )
                .unwrap(),
            ),
        );
        let plan = Plan::scan("t").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
        let report = analyze(&plan, &p);
        assert_eq!(report.codes(), vec![DiagCode::Gp002MeasureInKey]);
    }

    #[test]
    fn null_tolerant_select_over_cells_is_gp011() {
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        let plan = pivot()
            .select(Expr::IsNull(Box::new(Expr::col(cell))))
            .build();
        let report = analyze(&plan, &provider());
        assert_eq!(report.codes(), vec![DiagCode::Gp011SelectOverCells]);
        // A null-intolerant predicate over the same cell is clean.
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        let plan = pivot().select(Expr::col(cell).gt(Expr::lit(10.0))).build();
        assert!(analyze(&plan, &provider()).is_clean());
    }

    #[test]
    fn project_dropping_cells_is_gp012_and_key_loss_gp010() {
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        // Drops the VCR cell *and* the key column `id`.
        let plan = pivot().project_cols(&[cell.as_str()]).build();
        let report = analyze(&plan, &provider());
        let codes = report.codes();
        assert!(codes.contains(&DiagCode::Gp010KeyNotPreserved));
        assert!(codes.contains(&DiagCode::Gp012ProjectDropsCells));
    }

    #[test]
    fn join_on_cells_is_gp013() {
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        let plan = pivot()
            .join(PlanBuilder::scan("product"), vec![(cell.as_str(), "pid")])
            .build();
        let report = analyze(&plan, &provider());
        assert!(report.codes().contains(&DiagCode::Gp013JoinOnCells));
    }

    #[test]
    fn count_over_pivot_is_gp015() {
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        let cell2 = gpivot_algebra::encode_pivot_col(&[Value::str("VCR")], "val");
        let plan = pivot()
            .group_by(
                &["id"],
                vec![
                    AggSpec::count(cell.as_str(), "n"),
                    AggSpec::sum(cell2.as_str(), "s"),
                ],
            )
            .build();
        let report = analyze(&plan, &provider());
        assert!(report
            .codes()
            .contains(&DiagCode::Gp015AggNotBottomRespecting));
        // All-SUM coverage of every cell is clean.
        let plan = pivot()
            .group_by(
                &["id"],
                vec![
                    AggSpec::sum(cell.as_str(), "a"),
                    AggSpec::sum(cell2.as_str(), "b"),
                ],
            )
            .build();
        assert!(analyze(&plan, &provider()).is_clean());
    }

    #[test]
    fn min_feeding_pivot_is_gp016() {
        let plan = PlanBuilder::scan("iteminfo")
            .group_by(&["id", "attr"], vec![AggSpec::min("val", "lo")])
            .gpivot(PivotSpec::simple(
                "attr",
                "lo",
                vec![Value::str("TV"), Value::str("VCR")],
            ))
            .build();
        let report = analyze(&plan, &provider());
        assert_eq!(report.codes(), vec![DiagCode::Gp016AggNotSelfMaintainable]);
    }

    #[test]
    fn stacked_uncombinable_pivots_are_gp017() {
        // The outer pivot leaves the inner's VCR cell in its key.
        let cell = gpivot_algebra::encode_pivot_col(&[Value::str("TV")], "val");
        let plan = pivot()
            .gpivot(PivotSpec::new(
                vec!["id"],
                vec![cell.as_str()],
                vec![vec![Value::Int(1)]],
            ))
            .build();
        let report = analyze(&plan, &provider());
        assert!(report.codes().contains(&DiagCode::Gp017PivotsNotCombinable));
    }

    #[test]
    fn union_before_pivot_is_gp018_and_gp001() {
        let plan = PlanBuilder::scan("iteminfo")
            .union(PlanBuilder::scan("iteminfo"))
            .gpivot(PivotSpec::simple("attr", "val", vec![Value::str("TV")]))
            .build();
        let report = analyze(&plan, &provider());
        let codes = report.codes();
        assert!(codes.contains(&DiagCode::Gp001PivotInputNoKey));
        assert!(codes.contains(&DiagCode::Gp018UnionLosesKey));
        assert!(report.has_errors());
    }

    #[test]
    fn pivot_under_union_is_stuck_gp021() {
        let plan = pivot().union(pivot()).build();
        let report = analyze(&plan, &provider());
        assert!(report.codes().contains(&DiagCode::Gp021StuckPivot));
        assert_eq!(report.with_code(DiagCode::Gp021StuckPivot).count(), 2);
    }

    #[test]
    fn render_marks_offending_line() {
        let mut p = provider();
        p.insert(
            "nokey".to_string(),
            Arc::new(Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]).unwrap()),
        );
        let plan = Plan::scan("nokey")
            .gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]))
            .project_cols(&["x**b"]);
        let report = analyze(&plan, &p);
        let rendered = report.render(&plan);
        // The GPivot line (preorder line 1) carries the GP001 marker.
        let marked: Vec<&str> = rendered
            .lines()
            .filter(|l| l.contains("<-- error[GP001]"))
            .collect();
        assert_eq!(marked.len(), 1);
        assert!(marked[0].trim_start().starts_with("GPivot") || marked[0].contains("GPIVOT"));
    }

    #[test]
    fn json_report_shape() {
        let plan = pivot().build();
        let report = analyze(&plan, &provider());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"node_count\":2"));
        assert!(json.contains("\"pivot_count\":1"));
        assert!(json.contains("\"diagnostics\":[]"));
    }
}
