//! Bottom-up dataflow over the plan tree.
//!
//! For every node the pass derives the facts the lint rules consume:
//! output schema (when inferable), declared and inferred candidate keys,
//! functional dependencies, key preservation (§5.1), duplicate-freeness,
//! and which output columns carry pivoted cell data (the `a1**…**Bj`
//! columns of §4.1, tracked through renames, joins and groupings).
//!
//! Schema inference itself is delegated to `gpivot_algebra::schema_infer`
//! — the analyzer calls it *per node* so a failure is attributed to the
//! exact operator that caused it (`schema_error` on that node), while
//! analysis continues best-effort above it.

use gpivot_algebra::{AlgebraError, Expr, JoinKind, Plan, SchemaProvider};
use gpivot_storage::SchemaRef;
use std::collections::BTreeSet;

/// A functional dependency `determinant → dependents` over output columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    pub determinant: Vec<String>,
    pub dependents: Vec<String>,
}

impl Fd {
    fn new(determinant: Vec<String>, dependents: Vec<String>) -> Self {
        Fd {
            determinant,
            dependents,
        }
    }
}

/// Derived properties of one plan node.
#[derive(Debug, Clone)]
pub struct NodeFacts {
    /// Operator name (`Plan::op_name`).
    pub op: &'static str,
    /// Child-index path from the root.
    pub path: Vec<usize>,
    /// Output schema, when all inputs type-check and this node does too.
    pub schema: Option<SchemaRef>,
    /// The inference error raised *at this node* (children were fine).
    pub schema_error: Option<AlgebraError>,
    /// Declared candidate key (column names) from the inferred schema.
    pub key: Option<Vec<String>>,
    /// Candidate keys: the declared key plus FD-closure-inferred ones.
    pub candidate_keys: Vec<Vec<String>>,
    /// Functional dependencies over this node's output columns.
    pub fds: Vec<Fd>,
    /// §5.1: false iff some input carried a candidate key and this
    /// operator's output does not.
    pub key_preserved: bool,
    /// True when the output provably contains no duplicate rows.
    pub duplicate_free: bool,
    /// A GPIVOT exists in this subtree (including this node).
    pub contains_pivot: bool,
    /// Output columns that carry pivoted cell data (possibly renamed).
    pub pivot_cells: BTreeSet<String>,
    /// Facts of the children, in `Plan::children` order.
    pub children: Vec<NodeFacts>,
}

impl NodeFacts {
    /// Column names of this node's output, if its schema is known.
    pub fn column_names(&self) -> Option<Vec<String>> {
        self.schema
            .as_ref()
            .map(|s| s.column_names().into_iter().map(String::from).collect())
    }

    /// Preorder iteration over this facts tree.
    pub fn walk(&self, f: &mut impl FnMut(&NodeFacts)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Closure of `cols` under `fds`.
pub fn fd_closure(cols: &BTreeSet<String>, fds: &[Fd]) -> BTreeSet<String> {
    let mut out = cols.clone();
    loop {
        let mut grew = false;
        for fd in fds {
            if fd.determinant.iter().all(|c| out.contains(c)) {
                for d in &fd.dependents {
                    grew |= out.insert(d.clone());
                }
            }
        }
        if !grew {
            return out;
        }
    }
}

/// Compute the facts tree for `plan` bottom-up.
pub fn derive_facts<P: SchemaProvider>(plan: &Plan, provider: &P) -> NodeFacts {
    derive_node(plan, provider, Vec::new())
}

fn derive_node<P: SchemaProvider>(plan: &Plan, provider: &P, path: Vec<usize>) -> NodeFacts {
    let children: Vec<NodeFacts> = plan
        .children()
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            let mut p = path.clone();
            p.push(i);
            derive_node(c, provider, p)
        })
        .collect();

    let children_ok = children.iter().all(|c| c.schema.is_some());
    let (schema, schema_error) = if children_ok {
        match plan.schema(provider) {
            Ok(s) => (Some(s), None),
            Err(e) => (None, Some(e)),
        }
    } else {
        // A descendant already failed; don't re-attribute its error here.
        (None, None)
    };

    let key: Option<Vec<String>> = schema.as_ref().and_then(|s| {
        s.key_names()
            .map(|k| k.into_iter().map(String::from).collect())
    });

    let fds = derive_fds(plan, &children, &schema, &key);
    let candidate_keys = derive_candidate_keys(&schema, &key, &fds);

    let any_child_keyed = children.iter().any(|c| c.key.is_some());
    let key_preserved = !(any_child_keyed && key.is_none());
    let duplicate_free = match plan {
        Plan::Union { .. } => false,
        _ => key.is_some() || !candidate_keys.is_empty(),
    };

    let contains_pivot =
        matches!(plan, Plan::GPivot { .. }) || children.iter().any(|c| c.contains_pivot);
    let pivot_cells = derive_pivot_cells(plan, &children, &schema);

    NodeFacts {
        op: plan.op_name(),
        path,
        schema,
        schema_error,
        key,
        candidate_keys,
        fds,
        key_preserved,
        duplicate_free,
        contains_pivot,
        pivot_cells,
        children,
    }
}

/// Functional dependencies of a node's output, from its children's FDs and
/// its own semantics.
fn derive_fds(
    plan: &Plan,
    children: &[NodeFacts],
    schema: &Option<SchemaRef>,
    key: &Option<Vec<String>>,
) -> Vec<Fd> {
    let Some(schema) = schema else {
        return Vec::new();
    };
    let out_cols: BTreeSet<String> = schema
        .column_names()
        .into_iter()
        .map(String::from)
        .collect();
    // Restrict an inherited FD to the surviving columns.
    let restrict = |fds: &[Fd]| -> Vec<Fd> {
        fds.iter()
            .filter(|fd| fd.determinant.iter().all(|c| out_cols.contains(c)))
            .filter_map(|fd| {
                let deps: Vec<String> = fd
                    .dependents
                    .iter()
                    .filter(|c| out_cols.contains(*c))
                    .cloned()
                    .collect();
                (!deps.is_empty()).then(|| Fd::new(fd.determinant.clone(), deps))
            })
            .collect()
    };

    let mut fds: Vec<Fd> = Vec::new();
    match plan {
        Plan::Scan { .. } => {
            // The declared key determines every other column.
            if let Some(k) = key {
                let deps: Vec<String> = out_cols
                    .iter()
                    .filter(|c| !k.contains(c))
                    .cloned()
                    .collect();
                if !deps.is_empty() {
                    fds.push(Fd::new(k.clone(), deps));
                }
            }
        }
        Plan::Select { .. } | Plan::Diff { .. } => {
            fds = restrict(&children[0].fds);
        }
        Plan::Project { items, .. } => {
            // Track FDs through bare-column renames only.
            let renamed: Vec<Fd> = children[0]
                .fds
                .iter()
                .map(|fd| {
                    Fd::new(
                        fd.determinant
                            .iter()
                            .map(|c| rename_through(items, c).unwrap_or_else(|| c.clone()))
                            .collect(),
                        fd.dependents
                            .iter()
                            .map(|c| rename_through(items, c).unwrap_or_else(|| c.clone()))
                            .collect(),
                    )
                })
                .collect();
            fds = restrict(&renamed);
        }
        Plan::Join { on, kind, .. } => {
            match kind {
                JoinKind::Inner => {
                    fds.extend(restrict(&children[0].fds));
                    fds.extend(restrict(&children[1].fds));
                    for (l, r) in on {
                        fds.push(Fd::new(vec![l.clone()], vec![r.clone()]));
                        fds.push(Fd::new(vec![r.clone()], vec![l.clone()]));
                    }
                }
                JoinKind::LeftOuter => {
                    // The right side may be ⊥-extended; only left FDs hold.
                    fds.extend(restrict(&children[0].fds));
                }
                JoinKind::FullOuter => {}
            }
        }
        Plan::GroupBy { group_by, aggs, .. } => {
            let outputs: Vec<String> = aggs.iter().map(|a| a.output.clone()).collect();
            if !outputs.is_empty() {
                fds.push(Fd::new(group_by.clone(), outputs));
            }
            fds.extend(restrict(&children[0].fds));
        }
        Plan::GPivot { spec, .. } => {
            // K determines every pivoted cell (Eq. 3: one row per K value).
            if let Some(k) = key {
                let cells = spec.output_col_names();
                if !cells.is_empty() {
                    fds.push(Fd::new(k.clone(), cells));
                }
            }
            fds.extend(restrict(&children[0].fds));
        }
        Plan::GUnpivot { .. } => {
            fds = restrict(&children[0].fds);
        }
        Plan::Union { .. } => {
            // An FD of either branch need not hold across the bag union.
        }
    }
    // Dedup (joins on a key column can re-derive an inherited FD).
    let mut seen: Vec<Fd> = Vec::new();
    for fd in fds {
        if !seen.contains(&fd) {
            seen.push(fd);
        }
    }
    seen
}

/// Candidate keys: the declared key plus any FD determinant whose closure
/// covers every output column.
fn derive_candidate_keys(
    schema: &Option<SchemaRef>,
    key: &Option<Vec<String>>,
    fds: &[Fd],
) -> Vec<Vec<String>> {
    let Some(schema) = schema else {
        return Vec::new();
    };
    let all: BTreeSet<String> = schema
        .column_names()
        .into_iter()
        .map(String::from)
        .collect();
    let mut keys: Vec<Vec<String>> = Vec::new();
    if let Some(k) = key {
        keys.push(k.clone());
    }
    for fd in fds {
        let det: BTreeSet<String> = fd.determinant.iter().cloned().collect();
        if !det.iter().all(|c| all.contains(c)) {
            continue;
        }
        if fd_closure(&det, fds).is_superset(&all) {
            let mut k: Vec<String> = fd.determinant.clone();
            k.sort();
            k.dedup();
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys
}

/// Which output columns carry pivoted cell data.
fn derive_pivot_cells(
    plan: &Plan,
    children: &[NodeFacts],
    schema: &Option<SchemaRef>,
) -> BTreeSet<String> {
    let mut cells: BTreeSet<String> = match plan {
        Plan::Scan { .. } => BTreeSet::new(),
        Plan::GPivot { spec, .. } => {
            let mut c: BTreeSet<String> = spec.output_col_names().into_iter().collect();
            c.extend(children[0].pivot_cells.iter().cloned());
            c
        }
        Plan::Project { items, .. } => children[0]
            .pivot_cells
            .iter()
            .filter_map(|c| rename_through(items, c))
            .collect(),
        Plan::GroupBy { group_by, .. } => {
            // Aggregate outputs are new values; only grouping columns can
            // still carry raw cell data.
            children[0]
                .pivot_cells
                .iter()
                .filter(|c| group_by.contains(c))
                .cloned()
                .collect()
        }
        Plan::Join { .. } => {
            let mut c = children[0].pivot_cells.clone();
            c.extend(children[1].pivot_cells.iter().cloned());
            c
        }
        _ => children
            .first()
            .map(|c| c.pivot_cells.clone())
            .unwrap_or_default(),
    };
    // Only columns that actually appear in the output survive (GUnpivot
    // consumes cells; Select/Diff pass everything through).
    if let Some(s) = schema {
        let out: BTreeSet<&str> = s.column_names().into_iter().collect();
        cells.retain(|c| out.contains(c.as_str()));
    }
    cells
}

/// Where does input column `col` land under a projection, if it passes
/// through as a bare column?
fn rename_through(items: &[(Expr, String)], col: &str) -> Option<String> {
    items.iter().find_map(|(e, name)| match e {
        Expr::Col(c) if c == col => Some(name.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, PivotSpec, PlanBuilder};
    use gpivot_storage::{DataType, Schema, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "iteminfo".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("attr", DataType::Str),
                        ("val", DataType::Str),
                    ],
                    &["id", "attr"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn pivot() -> Plan {
        Plan::scan("iteminfo").gpivot(PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        ))
    }

    #[test]
    fn scan_key_determines_rest() {
        let f = derive_facts(&Plan::scan("iteminfo"), &provider());
        assert_eq!(
            f.key.as_deref(),
            Some(&["id".to_string(), "attr".to_string()][..])
        );
        assert_eq!(f.fds.len(), 1);
        assert_eq!(f.fds[0].dependents, vec!["val".to_string()]);
        assert!(f.duplicate_free);
        assert!(f.key_preserved);
    }

    #[test]
    fn pivot_cells_and_fds() {
        let f = derive_facts(&pivot(), &provider());
        assert!(f.contains_pivot);
        assert_eq!(f.key.as_deref(), Some(&["id".to_string()][..]));
        assert_eq!(f.pivot_cells.len(), 2);
        assert!(f.pivot_cells.contains("Manufacturer**val"));
        // K → cells is among the FDs.
        assert!(f
            .fds
            .iter()
            .any(|fd| fd.determinant == vec!["id".to_string()]
                && fd.dependents.contains(&"Manufacturer**val".to_string())));
    }

    #[test]
    fn schema_error_attributed_to_offending_node() {
        // Union clears the key, so a pivot directly above must fail §2.1.
        let u = PlanBuilder::scan("iteminfo")
            .union(PlanBuilder::scan("iteminfo"))
            .gpivot(PivotSpec::simple("attr", "val", vec![Value::str("Type")]))
            .build();
        let f = derive_facts(&u, &provider());
        assert!(f.schema.is_none());
        assert!(matches!(
            f.schema_error,
            Some(AlgebraError::PivotRequiresKey { .. })
        ));
        // The union child itself type-checked (keyless, duplicate-prone).
        assert!(f.children[0].schema.is_some());
        assert!(f.children[0].key.is_none());
        assert!(!f.children[0].duplicate_free);
    }

    #[test]
    fn join_equality_fds_infer_candidate_key() {
        let mut p = provider();
        p.insert(
            "product".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("pid", DataType::Int), ("maker", DataType::Str)],
                    &["pid"],
                )
                .unwrap(),
            ),
        );
        let plan = PlanBuilder::scan("iteminfo")
            .join(PlanBuilder::scan("product"), vec![("id", "pid")])
            .build();
        let f = derive_facts(&plan, &p);
        let declared = f.key.clone().unwrap();
        assert!(f.candidate_keys.contains(&declared));
        // id = pid lets {pid, attr} reach everything through the closure.
        let seed: BTreeSet<String> = ["pid".to_string(), "attr".to_string()].into();
        let closure = fd_closure(&seed, &f.fds);
        assert!(closure.contains("val"));
        assert!(closure.contains("maker"));
    }

    #[test]
    fn groupby_output_keyed_by_grouping_columns() {
        let plan = PlanBuilder::scan("iteminfo")
            .group_by(&["id"], vec![AggSpec::count("val", "n")])
            .build();
        let f = derive_facts(&plan, &provider());
        assert_eq!(f.key.as_deref(), Some(&["id".to_string()][..]));
        assert!(f.key_preserved);
        assert!(f
            .fds
            .iter()
            .any(|fd| fd.determinant == vec!["id".to_string()]
                && fd.dependents == vec!["n".to_string()]));
    }

    #[test]
    fn project_drop_key_column_loses_preservation() {
        let plan = pivot().project_cols(&["Manufacturer**val"]);
        let f = derive_facts(&plan, &provider());
        assert!(f.key.is_none());
        assert!(!f.key_preserved);
        assert!(f.pivot_cells.contains("Manufacturer**val"));
    }
}
