//! Shard-safety analysis: can a view plan be maintained over disjoint
//! hash partitions of its base tables and recombined exactly?
//!
//! The paper's §4.2.3 combinability argument shows GPIVOT commutes with
//! partitioning on its group key `K`: pivot groups over disjoint slices of
//! `K` never interact, so per-partition maintenance followed by a bag
//! union of the partition outputs equals maintenance of the whole. This
//! module generalizes that observation into a plan-wide dataflow that
//! *proves* a layout (which base tables to hash-partition, on which
//! column, which to replicate) under which every operator in the plan is
//! local to a shard:
//!
//! * **Phase A — candidate keys.** Column lineage maps every output
//!   column back to the base column it was scanned from (through renames,
//!   filters, group-bys and pivot carry-through). Equi-join pairs and
//!   union/diff column alignment seed a union-find over base columns; the
//!   resulting equivalence classes are the candidate shard keys (a class
//!   partitions every table it touches, all remaining tables replicate).
//! * **Phase B — per-candidate dataflow.** Each node gets a state:
//!   `Replicated` (every shard computes the identical full result) or
//!   `Partitioned{aligned}` (shard *i* computes exactly the slice of the
//!   full result whose `aligned` columns hash to *i*; the shard outputs
//!   are disjoint and bag-union to the whole). Tuple-wise operators
//!   (σ, π, GUNPIVOT) are linear over bag union and pass the state
//!   through; joins need a matched pair of aligned columns (or one
//!   replicated side); GROUPBY/GPIVOT need a group-key column aligned
//!   with the partition so no group straddles shards; outer joins over a
//!   partitioned non-preserved side and mixed union/diff are rejected.
//!
//! A plan whose root proves `Partitioned` under some candidate is
//! **shard-safe**: the serve tier may maintain it per shard and merge by
//! bag union. Candidates are reported in preference order (most tables
//! partitioned first, then lexicographic) so a sharded catalog can pick
//! the first candidate compatible with layouts already chosen by other
//! views. Unprovable plans are not errors — they carry a `GP023` Info
//! diagnostic and fall back to single-shard maintenance.

use crate::diagnostic::{DiagCode, Diagnostic};
use gpivot_algebra::{Expr, JoinKind, Plan, SchemaProvider};
use std::collections::{BTreeMap, BTreeSet};

/// How one base table is laid out across shards under a routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableRoute {
    /// Every shard holds a full copy of the table.
    Replicated,
    /// Rows are hash-partitioned across shards by this column's value.
    Partitioned { column: String },
}

/// A complete shard layout for the base tables of one plan: every table
/// the plan scans is either partitioned on a named column or replicated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardRouting {
    /// Table name → route, covering exactly the plan's base tables.
    pub routes: BTreeMap<String, TableRoute>,
}

impl ShardRouting {
    /// The `(table, partition column)` pairs this routing partitions.
    pub fn partitioned(&self) -> impl Iterator<Item = (&str, &str)> {
        self.routes.iter().filter_map(|(t, r)| match r {
            TableRoute::Partitioned { column } => Some((t.as_str(), column.as_str())),
            TableRoute::Replicated => None,
        })
    }

    /// The route for a table, if the plan scans it.
    pub fn route(&self, table: &str) -> Option<&TableRoute> {
        self.routes.get(table)
    }

    /// Human summary, e.g.
    /// `customer↦c_custkey, orders↦o_custkey; lineitem replicated`.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .partitioned()
            .map(|(t, c)| format!("{t}\u{21a6}{c}"))
            .collect();
        let reps: Vec<&str> = self
            .routes
            .iter()
            .filter(|(_, r)| **r == TableRoute::Replicated)
            .map(|(t, _)| t.as_str())
            .collect();
        let mut out = parts.join(", ");
        if !reps.is_empty() {
            if !out.is_empty() {
                out.push_str("; ");
            }
            out.push_str(&reps.join(", "));
            out.push_str(" replicated");
        }
        out
    }
}

/// The analyzer's shard-safety verdict for one plan.
#[derive(Debug, Clone)]
pub enum ShardVerdict {
    /// At least one routing was proven exact. `candidates` is non-empty
    /// and in preference order: most tables partitioned first, ties
    /// broken lexicographically, so a catalog can scan for the first
    /// candidate compatible with layouts other views already fixed.
    Safe { candidates: Vec<ShardRouting> },
    /// No routing could be proven; the view must be maintained on a
    /// single shard. Carries the obstruction from the best candidate.
    Unprovable { reason: String },
}

impl ShardVerdict {
    /// True iff at least one routing was proven exact.
    pub fn is_safe(&self) -> bool {
        matches!(self, ShardVerdict::Safe { .. })
    }

    /// The preferred routing, if any.
    pub fn preferred(&self) -> Option<&ShardRouting> {
        match self {
            ShardVerdict::Safe { candidates } => candidates.first(),
            ShardVerdict::Unprovable { .. } => None,
        }
    }

    /// All proven routings, in preference order (empty when unprovable).
    pub fn candidates(&self) -> &[ShardRouting] {
        match self {
            ShardVerdict::Safe { candidates } => candidates,
            ShardVerdict::Unprovable { .. } => &[],
        }
    }

    /// The advisory diagnostic for this verdict: `GP024` (proven, names
    /// the shard key) or `GP023` (unprovable, names the obstruction).
    pub fn diagnostic(&self) -> Diagnostic {
        match self {
            ShardVerdict::Safe { candidates } => Diagnostic::new(
                DiagCode::Gp024ShardSafe,
                vec![],
                format!(
                    "plan proven shard-safe; preferred layout: {}",
                    candidates[0].describe()
                ),
            ),
            ShardVerdict::Unprovable { reason } => Diagnostic::new(
                DiagCode::Gp023NotShardSafe,
                vec![],
                format!("plan not provably shard-safe ({reason}); maintained single-shard"),
            )
            .with_suggestion(
                "align join keys with the pivot/group key so every operator is shard-local",
            ),
        }
    }
}

/// `(table, column)` identity of a base column.
type Origin = (String, String);

/// Union-find over base columns, seeded by equi-join pairs.
#[derive(Default)]
struct UnionFind {
    parent: BTreeMap<Origin, Origin>,
}

impl UnionFind {
    fn add(&mut self, o: Origin) {
        self.parent.entry(o.clone()).or_insert(o);
    }

    fn find(&mut self, o: &Origin) -> Origin {
        let p = match self.parent.get(o) {
            Some(p) => p.clone(),
            None => {
                self.add(o.clone());
                return o.clone();
            }
        };
        if p == *o {
            return p;
        }
        let root = self.find(&p);
        self.parent.insert(o.clone(), root.clone());
        root
    }

    fn union(&mut self, a: &Origin, b: &Origin) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic: the smaller origin becomes the root.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }

    /// All equivalence classes, each sorted, in root order.
    fn classes(&mut self) -> Vec<Vec<Origin>> {
        let members: Vec<Origin> = self.parent.keys().cloned().collect();
        let mut by_root: BTreeMap<Origin, Vec<Origin>> = BTreeMap::new();
        for m in members {
            let r = self.find(&m);
            by_root.entry(r).or_default().push(m);
        }
        by_root.into_values().collect()
    }
}

/// Column lineage: output column name → originating base column, for
/// columns that flow unchanged from a scan (through renames, filters,
/// group-by keys and pivot carry-through). Computed columns (aggregates,
/// pivot cells, non-trivial projections) have no lineage.
fn lineage<P: SchemaProvider>(
    plan: &Plan,
    provider: &P,
    uf: &mut UnionFind,
) -> Result<BTreeMap<String, Origin>, String> {
    match plan {
        Plan::Scan { table } => {
            let schema = provider
                .base_schema(table)
                .map_err(|e| format!("unknown base table {table}: {e}"))?;
            let mut map = BTreeMap::new();
            for col in schema.column_names().into_iter() {
                let origin = (table.clone(), col.to_string());
                uf.add(origin.clone());
                map.insert(col.to_string(), origin);
            }
            Ok(map)
        }
        Plan::Select { input, .. } => lineage(input, provider, uf),
        Plan::Project { input, items } => {
            let inner = lineage(input, provider, uf)?;
            let mut map = BTreeMap::new();
            for (expr, name) in items {
                if let Expr::Col(c) = expr {
                    if let Some(origin) = inner.get(c) {
                        map.insert(name.clone(), origin.clone());
                    }
                }
            }
            Ok(map)
        }
        Plan::Join {
            left, right, on, ..
        } => {
            let l = lineage(left, provider, uf)?;
            let r = lineage(right, provider, uf)?;
            for (lc, rc) in on {
                if let (Some(lo), Some(ro)) = (l.get(lc), r.get(rc)) {
                    uf.union(lo, ro);
                }
            }
            let mut map = l;
            for (name, origin) in r {
                map.entry(name).or_insert(origin);
            }
            Ok(map)
        }
        Plan::GroupBy {
            input, group_by, ..
        } => {
            let inner = lineage(input, provider, uf)?;
            Ok(inner
                .into_iter()
                .filter(|(name, _)| group_by.contains(name))
                .collect())
        }
        Plan::GPivot { input, spec } => {
            let inner = lineage(input, provider, uf)?;
            // Carry-through K columns keep their lineage; the consumed
            // dimension/measure columns and the new cells have none.
            Ok(inner
                .into_iter()
                .filter(|(name, _)| !spec.by.contains(name) && !spec.on.contains(name))
                .collect())
        }
        Plan::GUnpivot { input, .. } => {
            let inner = lineage(input, provider, uf)?;
            let out = plan
                .schema(provider)
                .map_err(|e| format!("plan does not type-check: {e}"))?;
            let out_cols: BTreeSet<&str> = out.column_names().into_iter().collect();
            Ok(inner
                .into_iter()
                .filter(|(name, _)| out_cols.contains(name.as_str()))
                .collect())
        }
        Plan::Union { left, right } | Plan::Diff { left, right } => {
            let l = lineage(left, provider, uf)?;
            let r = lineage(right, provider, uf)?;
            // Schemas match by name; a column aligned on both sides must
            // be co-partitioned, so union the origins and keep lineage
            // only where both sides have one.
            let mut map = BTreeMap::new();
            for (name, lo) in &l {
                if let Some(ro) = r.get(name) {
                    uf.union(lo, ro);
                    map.insert(name.clone(), lo.clone());
                }
            }
            Ok(map)
        }
    }
}

/// Per-node partitioning state under one candidate routing.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PState {
    /// Every shard computes the identical full result.
    Replicated,
    /// Shard *i* computes exactly the slice of the full result whose
    /// `aligned` columns hash to *i*; shard outputs are disjoint and
    /// bag-union to the full result. `aligned` may drain to empty (the
    /// slices stay disjoint but no visible column witnesses the key).
    Partitioned { aligned: BTreeSet<String> },
}

use PState::{Partitioned, Replicated};

fn flow<P: SchemaProvider>(
    plan: &Plan,
    routing: &ShardRouting,
    provider: &P,
) -> Result<PState, String> {
    match plan {
        Plan::Scan { table } => Ok(match routing.route(table) {
            Some(TableRoute::Partitioned { column }) => Partitioned {
                aligned: BTreeSet::from([column.clone()]),
            },
            _ => Replicated,
        }),
        // σ is tuple-wise (linear over bag union): filtering each shard's
        // slice equals slicing the filtered whole.
        Plan::Select { input, .. } => flow(input, routing, provider),
        Plan::Project { input, items } => Ok(match flow(input, routing, provider)? {
            Replicated => Replicated,
            Partitioned { aligned } => Partitioned {
                // Only bare column renames keep alignment; the output is
                // still a disjoint partition either way (π is tuple-wise).
                aligned: items
                    .iter()
                    .filter_map(|(expr, name)| match expr {
                        Expr::Col(c) if aligned.contains(c) => Some(name.clone()),
                        _ => None,
                    })
                    .collect(),
            },
        }),
        Plan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let l = flow(left, routing, provider)?;
            let r = flow(right, routing, provider)?;
            let pair_aligned = |al: &BTreeSet<String>, ar: &BTreeSet<String>| {
                on.iter().any(|(lc, rc)| al.contains(lc) && ar.contains(rc))
            };
            match (kind, l, r) {
                // Both sides fully present on every shard.
                (_, Replicated, Replicated) => Ok(Replicated),
                (JoinKind::Inner, Partitioned { aligned: al }, Partitioned { aligned: ar }) => {
                    if pair_aligned(&al, &ar) {
                        // Matching rows agree on the joined pair, so both
                        // sides' aligned columns survive.
                        Ok(Partitioned {
                            aligned: al.union(&ar).cloned().collect(),
                        })
                    } else {
                        Err(
                            "inner join of two partitioned inputs has no equi-join pair on \
                             their partition keys (matches would cross shards)"
                                .into(),
                        )
                    }
                }
                (JoinKind::Inner, Partitioned { aligned }, Replicated)
                | (JoinKind::Inner, Replicated, Partitioned { aligned }) => {
                    Ok(Partitioned { aligned })
                }
                // Left outer: exact iff every left row finds all its
                // matches (and its non-match evidence) on its own shard.
                (JoinKind::LeftOuter, Partitioned { aligned }, Replicated) => {
                    Ok(Partitioned { aligned })
                }
                (JoinKind::LeftOuter, Partitioned { aligned: al }, Partitioned { aligned: ar }) => {
                    if pair_aligned(&al, &ar) {
                        // Right columns may be ⊥-extended, so only the
                        // left side's alignment survives.
                        Ok(Partitioned { aligned: al })
                    } else {
                        Err(
                            "left outer join of two partitioned inputs has no equi-join \
                             pair on their partition keys"
                                .into(),
                        )
                    }
                }
                (JoinKind::LeftOuter, Replicated, Partitioned { .. }) => Err(
                    "left outer join with a replicated left input over a partitioned right \
                     would emit a \u{22a5}-extension on every shard that lacks the match"
                        .into(),
                ),
                (JoinKind::FullOuter, _, _) => Err(
                    "full outer join over a partitioned input is outside the provable \
                     fragment"
                        .into(),
                ),
            }
        }
        Plan::GroupBy {
            input, group_by, ..
        } => match flow(input, routing, provider)? {
            Replicated => Ok(Replicated),
            Partitioned { aligned } => {
                let keep: BTreeSet<String> = group_by
                    .iter()
                    .filter(|g| aligned.contains(*g))
                    .cloned()
                    .collect();
                if keep.is_empty() {
                    Err(
                        "no group-by column aligns with the partition key (groups would \
                         straddle shards)"
                            .into(),
                    )
                } else {
                    Ok(Partitioned { aligned: keep })
                }
            }
        },
        Plan::GPivot { input, spec } => match flow(input, routing, provider)? {
            Replicated => Ok(Replicated),
            Partitioned { aligned } => {
                // §4.2.3: GPIVOT groups by K = input − by − on; exact per
                // shard iff the partition key is part of K.
                let input_schema = input
                    .schema(provider)
                    .map_err(|e| format!("plan does not type-check: {e}"))?;
                let keep: BTreeSet<String> = input_schema
                    .column_names()
                    .into_iter()
                    .filter(|c| {
                        aligned.contains(*c)
                            && !spec.by.iter().any(|b| b == c)
                            && !spec.on.iter().any(|o| o == c)
                    })
                    .map(String::from)
                    .collect();
                if keep.is_empty() {
                    Err(
                        "no pivot group-key (K) column aligns with the partition key \
                         (pivot groups would straddle shards)"
                            .into(),
                    )
                } else {
                    Ok(Partitioned { aligned: keep })
                }
            }
        },
        // GUNPIVOT is tuple-wise: each input row expands independently.
        Plan::GUnpivot { input, .. } => match flow(input, routing, provider)? {
            Replicated => Ok(Replicated),
            Partitioned { aligned } => {
                let out = plan
                    .schema(provider)
                    .map_err(|e| format!("plan does not type-check: {e}"))?;
                let out_cols: BTreeSet<&str> = out.column_names().into_iter().collect();
                Ok(Partitioned {
                    aligned: aligned
                        .into_iter()
                        .filter(|c| out_cols.contains(c.as_str()))
                        .collect(),
                })
            }
        },
        Plan::Union { left, right } => {
            match (
                flow(left, routing, provider)?,
                flow(right, routing, provider)?,
            ) {
                (Replicated, Replicated) => Ok(Replicated),
                (Partitioned { aligned: a }, Partitioned { aligned: b }) => Ok(Partitioned {
                    aligned: a.intersection(&b).cloned().collect(),
                }),
                _ => Err(
                    "bag union mixes a partitioned input with a replicated one (the \
                     replicated side would be counted once per shard)"
                        .into(),
                ),
            }
        }
        Plan::Diff { left, right } => {
            match (
                flow(left, routing, provider)?,
                flow(right, routing, provider)?,
            ) {
                (Replicated, Replicated) => Ok(Replicated),
                (Partitioned { aligned: a }, Partitioned { aligned: b }) => {
                    let shared: BTreeSet<String> = a.intersection(&b).cloned().collect();
                    if shared.is_empty() {
                        Err("bag difference needs both inputs partitioned on a shared \
                             column (equal rows could sit on different shards)"
                            .into())
                    } else {
                        Ok(Partitioned { aligned: shared })
                    }
                }
                _ => Err("bag difference mixes a partitioned input with a replicated one".into()),
            }
        }
    }
}

/// Prove shard-safety of `plan` and enumerate the exact layouts.
///
/// Returns [`ShardVerdict::Safe`] with every candidate routing the
/// dataflow could prove (preference-ordered), or
/// [`ShardVerdict::Unprovable`] with the obstruction found for the most
/// promising candidate. Plans that do not type-check are unprovable, not
/// errors — shard-safety is advisory (`GP023`/`GP024` are Info-severity).
pub fn shard_safety<P: SchemaProvider>(plan: &Plan, provider: &P) -> ShardVerdict {
    let tables: BTreeSet<String> = plan.base_tables().into_iter().collect();
    if tables.is_empty() {
        return ShardVerdict::Unprovable {
            reason: "plan scans no base tables".into(),
        };
    }
    let mut uf = UnionFind::default();
    if let Err(reason) = lineage(plan, provider, &mut uf) {
        return ShardVerdict::Unprovable { reason };
    }
    // Candidate shard keys: every base-column equivalence class, most
    // tables partitioned first, then lexicographic on the first member.
    let mut classes = uf.classes();
    classes.sort_by_key(|class| {
        let tables: BTreeSet<&str> = class.iter().map(|(t, _)| t.as_str()).collect();
        (usize::MAX - tables.len(), class[0].clone())
    });

    let mut candidates = Vec::new();
    let mut first_reason: Option<String> = None;
    for class in classes {
        // One partition column per table: the class's smallest column
        // for that table (class members are sorted). Columns equated
        // only transitively within one table are *not* aligned, so the
        // dataflow re-checks every join under the chosen column.
        let mut routes: BTreeMap<String, TableRoute> = BTreeMap::new();
        for (table, column) in &class {
            routes
                .entry(table.clone())
                .or_insert(TableRoute::Partitioned {
                    column: column.clone(),
                });
        }
        for table in &tables {
            routes
                .entry(table.clone())
                .or_insert(TableRoute::Replicated);
        }
        let routing = ShardRouting { routes };
        match flow(plan, &routing, provider) {
            Ok(Partitioned { .. }) => candidates.push(routing),
            Ok(Replicated) => {
                // The class partitions no table the plan reads.
            }
            Err(reason) => {
                if first_reason.is_none() {
                    first_reason = Some(reason);
                }
            }
        }
    }
    if candidates.is_empty() {
        ShardVerdict::Unprovable {
            reason: first_reason
                .unwrap_or_else(|| "no candidate shard key reaches the plan root".into()),
        }
    } else {
        ShardVerdict::Safe { candidates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::SchemaRef;
    use gpivot_tpch::gen::{customer_schema, lineitem_schema, orders_schema};
    use gpivot_tpch::views::VIEW2_THRESHOLD;
    use gpivot_tpch::{view1, view2, view3};

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert("lineitem".to_string(), lineitem_schema());
        m.insert("orders".to_string(), orders_schema());
        m.insert("customer".to_string(), customer_schema());
        m
    }

    fn expect_safe(plan: &gpivot_algebra::Plan) -> ShardRouting {
        let verdict = shard_safety(plan, &provider());
        match &verdict {
            ShardVerdict::Safe { candidates } => candidates[0].clone(),
            ShardVerdict::Unprovable { reason } => panic!("expected safe, got: {reason}"),
        }
    }

    #[test]
    fn view1_proves_shard_safe_on_custkey() {
        let routing = expect_safe(&view1());
        assert_eq!(
            routing.route("customer"),
            Some(&TableRoute::Partitioned {
                column: "c_custkey".into()
            })
        );
        assert_eq!(
            routing.route("orders"),
            Some(&TableRoute::Partitioned {
                column: "o_custkey".into()
            })
        );
        assert_eq!(routing.route("lineitem"), Some(&TableRoute::Replicated));
    }

    #[test]
    fn view1_also_admits_the_orderkey_layout() {
        let verdict = shard_safety(&view1(), &provider());
        let wants = |r: &ShardRouting| {
            r.route("lineitem")
                == Some(&TableRoute::Partitioned {
                    column: "l_orderkey".into(),
                })
                && r.route("orders")
                    == Some(&TableRoute::Partitioned {
                        column: "o_orderkey".into(),
                    })
        };
        assert!(
            verdict.candidates().iter().any(wants),
            "orderkey layout missing from {:?}",
            verdict.candidates()
        );
    }

    #[test]
    fn view2_and_view3_prove_shard_safe_on_custkey() {
        for plan in [view2(VIEW2_THRESHOLD), view3()] {
            let routing = expect_safe(&plan);
            assert_eq!(
                routing.route("orders"),
                Some(&TableRoute::Partitioned {
                    column: "o_custkey".into()
                }),
                "plan: {}",
                plan.explain()
            );
            assert_eq!(
                routing.route("customer"),
                Some(&TableRoute::Partitioned {
                    column: "c_custkey".into()
                })
            );
        }
    }

    #[test]
    fn view3_rejects_the_orderkey_layout() {
        // Partitioning on the orderkey class splits (c_custkey,
        // c_nationkey, o_year) groups across shards, so it must not be
        // among view3's proven candidates.
        let verdict = shard_safety(&view3(), &provider());
        for r in verdict.candidates() {
            assert_ne!(
                r.route("lineitem"),
                Some(&TableRoute::Partitioned {
                    column: "l_orderkey".into()
                }),
                "unsound candidate {r:?}"
            );
        }
    }

    #[test]
    fn full_outer_join_is_unprovable() {
        let plan = gpivot_algebra::PlanBuilder::scan("orders")
            .join_kind(
                gpivot_algebra::PlanBuilder::scan("customer"),
                JoinKind::FullOuter,
                vec![("o_custkey", "c_custkey")],
                None,
            )
            .build();
        let verdict = shard_safety(&plan, &provider());
        assert!(!verdict.is_safe(), "full outer joins must be unprovable");
        let diag = verdict.diagnostic();
        assert_eq!(diag.code, DiagCode::Gp023NotShardSafe);
        assert_eq!(diag.severity, crate::Severity::Info);
    }

    #[test]
    fn grouping_off_the_join_key_is_unprovable() {
        // GROUP BY a computed-only column set that shares nothing with
        // any join class: group on o_year only.
        let plan = gpivot_algebra::PlanBuilder::scan("lineitem")
            .join(
                gpivot_algebra::PlanBuilder::scan("orders"),
                vec![("l_orderkey", "o_orderkey")],
            )
            .group_by(
                &["o_year"],
                vec![gpivot_algebra::AggSpec::sum("l_extendedprice", "s")],
            )
            .build();
        let verdict = shard_safety(&plan, &provider());
        // o_year forms its own singleton class, so partitioning orders
        // by o_year is actually provable (lineitem replicated). Verify
        // the *orderkey* class was rejected instead.
        for r in verdict.candidates() {
            assert_ne!(
                r.route("lineitem"),
                Some(&TableRoute::Partitioned {
                    column: "l_orderkey".into()
                })
            );
        }
    }

    #[test]
    fn safe_diagnostic_names_the_key() {
        let verdict = shard_safety(&view3(), &provider());
        let diag = verdict.diagnostic();
        assert_eq!(diag.code, DiagCode::Gp024ShardSafe);
        assert!(diag.message.contains("o_custkey"), "{}", diag.message);
        assert!(
            diag.message.contains("lineitem replicated"),
            "{}",
            diag.message
        );
    }

    #[test]
    fn union_of_copartitioned_scans_is_safe() {
        // orders ∪ orders: both sides partition on the same column.
        let plan = gpivot_algebra::PlanBuilder::scan("orders")
            .union(gpivot_algebra::PlanBuilder::scan("orders"))
            .build();
        let verdict = shard_safety(&plan, &provider());
        assert!(verdict.is_safe());
    }

    #[test]
    fn type_error_is_unprovable_not_panic() {
        let plan = gpivot_algebra::Plan::scan("nonexistent");
        let verdict = shard_safety(&plan, &provider());
        assert!(!verdict.is_safe());
    }
}
