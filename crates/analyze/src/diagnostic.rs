//! Structured diagnostics with stable `GP0xx` codes.
//!
//! Every verdict the analyzer (and, since this PR, the runtime rewrite
//! rules in `gpivot-core`) can produce carries one of the codes below, so
//! static analysis and runtime rule rejections speak the same language.
//! Codes are **stable**: tools may match on them, so a code is never
//! renumbered — retired codes are left reserved.
//!
//! The full rule table (code → paper section/equation → meaning) lives in
//! `DESIGN.md` §4d.

use gpivot_algebra::Plan;
use std::fmt;

/// Severity of a [`Diagnostic`].
///
/// * `Error` — the plan violates a hard precondition of the paper's
///   operators (e.g. the §2.1 `(K, A1..Am)` key requirement); compilation
///   or maintenance **will** fail. `ViewManager::register_view` refuses
///   such plans unless [`ViewOptions::skip_plan_lint`] is set.
/// * `Warn` — the plan is executable but loses an optimization the paper
///   provides (pullup blocked, self-maintainability lost, …); maintenance
///   falls back to a slower strategy.
/// * `Info` — advisory facts about the plan shape.
///
/// [`ViewOptions::skip_plan_lint`]: https://docs.rs/gpivot-core
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes for GPIVOT plan analysis.
///
/// `GP001`–`GP009` are hard errors (the plan cannot be compiled or
/// maintained); `GP010`–`GP019` are warnings (an optimization of the paper
/// is lost); `GP020`+ are advisory. The same codes are carried by runtime
/// `CoreError::RuleNotApplicable` rejections so the static analyzer and
/// the rewrite engine can be cross-checked against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// §2.1: the GPIVOT input declares no candidate key, so the
    /// `(K, A1..Am)` key requirement cannot hold.
    Gp001PivotInputNoKey,
    /// §2.1: a pivot measure (`on`) column is part of the input key — the
    /// key would be destroyed by pivoting it away.
    Gp002MeasureInKey,
    /// The pivot/unpivot spec itself is malformed (empty or duplicate
    /// dimension/measure lists, group arity mismatch, …).
    Gp003InvalidSpec,
    /// §4.1: an encoded pivot output column collides with a carried-through
    /// `K` column, so the output schema would contain duplicate names.
    Gp004OutputCollision,
    /// The plan does not type-check for a reason outside the pivot spec
    /// (unknown table/column, schema mismatch in Union/Diff, …).
    Gp005TypeCheck,
    /// §5.1 / Fig. 8: an operator above a pivot does not preserve the
    /// candidate key, blocking pullup; maintenance falls back to
    /// insert/delete propagation or recompute.
    Gp010KeyNotPreserved,
    /// Eq. 7 / Fig. 29: a selection over pivoted output columns is not
    /// null-intolerant (or not in pushable form), so the self-join
    /// pushdown and `SelectPivotUpdate` strategy do not apply.
    Gp011SelectOverCells,
    /// §5.1.2: a projection above a pivot drops pivoted output columns,
    /// so the pivot cannot be pulled above it.
    Gp012ProjectDropsCells,
    /// §5.1.3: a join above a pivot constrains pivoted output columns
    /// (join keys or residual), blocking join pullup.
    Gp013JoinOnCells,
    /// Outer joins are outside the paper's delta-propagation rules; views
    /// containing them are maintained by recomputation.
    Gp014OuterJoin,
    /// Eq. 8 / §5.1.4: an aggregate above a pivot is not ⊥-respecting
    /// (`COUNT`/`COUNT(*)`/`AVG`) or its aggregate list does not match the
    /// pivoted cells, so groupby pullup does not apply.
    Gp015AggNotBottomRespecting,
    /// Fig. 27/28: a `MIN`/`MAX`/`AVG` aggregate feeding a pivot is not
    /// self-maintainable under deletes; `GroupPivotUpdate` degrades to
    /// `GroupByInsDel` or recompute on deletions.
    Gp016AggNotSelfMaintainable,
    /// §4.2.3 / Fig. 7: two adjacent GPIVOTs are not combinable; the
    /// verdict names the obstruction case.
    Gp017PivotsNotCombinable,
    /// Bag `Union` discards the candidate key (duplicates possible), so no
    /// key-requiring operator (notably GPIVOT) can sit above it.
    Gp018UnionLosesKey,
    /// §5.1.4: a GROUPBY groups on pivoted output columns — the pulled-up
    /// form is inexpressible.
    Gp019GroupByOnCells,
    /// A rewrite rule's structural pattern did not match (wrong operator
    /// shape at the top). Runtime-only: the analyzer does not flag shape
    /// mismatches because they carry no information about the plan itself.
    Gp020RuleShapeMismatch,
    /// Fig. 22: a pivot is trapped below an operator no pullup rule crosses
    /// (Union/Diff), so deltas reaching it use generic insert/delete
    /// propagation.
    Gp021StuckPivot,
    /// Eq. 9/10/12: a pivot/unpivot pair does not exactly reverse (or
    /// their parameters overlap), so cancellation/swap does not apply.
    Gp022PivotUnpivotMismatch,
    /// §4.2.3: the shard-safety dataflow could not prove the plan exact
    /// over disjoint hash partitions; the serve tier maintains it on a
    /// single shard instead of sharding it.
    Gp023NotShardSafe,
    /// §4.2.3: the plan is proven shard-safe; the message names the
    /// chosen partition layout (shard key per table).
    Gp024ShardSafe,
}

impl DiagCode {
    /// Every defined code, in numeric order.
    pub const ALL: [DiagCode; 20] = [
        DiagCode::Gp001PivotInputNoKey,
        DiagCode::Gp002MeasureInKey,
        DiagCode::Gp003InvalidSpec,
        DiagCode::Gp004OutputCollision,
        DiagCode::Gp005TypeCheck,
        DiagCode::Gp010KeyNotPreserved,
        DiagCode::Gp011SelectOverCells,
        DiagCode::Gp012ProjectDropsCells,
        DiagCode::Gp013JoinOnCells,
        DiagCode::Gp014OuterJoin,
        DiagCode::Gp015AggNotBottomRespecting,
        DiagCode::Gp016AggNotSelfMaintainable,
        DiagCode::Gp017PivotsNotCombinable,
        DiagCode::Gp018UnionLosesKey,
        DiagCode::Gp019GroupByOnCells,
        DiagCode::Gp020RuleShapeMismatch,
        DiagCode::Gp021StuckPivot,
        DiagCode::Gp022PivotUnpivotMismatch,
        DiagCode::Gp023NotShardSafe,
        DiagCode::Gp024ShardSafe,
    ];

    /// The stable wire form, e.g. `"GP010"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::Gp001PivotInputNoKey => "GP001",
            DiagCode::Gp002MeasureInKey => "GP002",
            DiagCode::Gp003InvalidSpec => "GP003",
            DiagCode::Gp004OutputCollision => "GP004",
            DiagCode::Gp005TypeCheck => "GP005",
            DiagCode::Gp010KeyNotPreserved => "GP010",
            DiagCode::Gp011SelectOverCells => "GP011",
            DiagCode::Gp012ProjectDropsCells => "GP012",
            DiagCode::Gp013JoinOnCells => "GP013",
            DiagCode::Gp014OuterJoin => "GP014",
            DiagCode::Gp015AggNotBottomRespecting => "GP015",
            DiagCode::Gp016AggNotSelfMaintainable => "GP016",
            DiagCode::Gp017PivotsNotCombinable => "GP017",
            DiagCode::Gp018UnionLosesKey => "GP018",
            DiagCode::Gp019GroupByOnCells => "GP019",
            DiagCode::Gp020RuleShapeMismatch => "GP020",
            DiagCode::Gp021StuckPivot => "GP021",
            DiagCode::Gp022PivotUnpivotMismatch => "GP022",
            DiagCode::Gp023NotShardSafe => "GP023",
            DiagCode::Gp024ShardSafe => "GP024",
        }
    }

    /// Short human title for the rule table.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::Gp001PivotInputNoKey => "pivot input declares no key",
            DiagCode::Gp002MeasureInKey => "pivot measure column is in the key",
            DiagCode::Gp003InvalidSpec => "invalid pivot/unpivot spec",
            DiagCode::Gp004OutputCollision => "pivot output column collision",
            DiagCode::Gp005TypeCheck => "plan does not type-check",
            DiagCode::Gp010KeyNotPreserved => "key not preserved above a pivot",
            DiagCode::Gp011SelectOverCells => "selection over pivoted cells not pushable",
            DiagCode::Gp012ProjectDropsCells => "projection drops pivoted cells",
            DiagCode::Gp013JoinOnCells => "join constrains pivoted cells",
            DiagCode::Gp014OuterJoin => "outer join blocks delta propagation",
            DiagCode::Gp015AggNotBottomRespecting => "aggregate not ⊥-respecting over pivot",
            DiagCode::Gp016AggNotSelfMaintainable => "aggregate not self-maintainable on delete",
            DiagCode::Gp017PivotsNotCombinable => "adjacent pivots not combinable",
            DiagCode::Gp018UnionLosesKey => "bag union discards the key",
            DiagCode::Gp019GroupByOnCells => "grouping on pivoted cells",
            DiagCode::Gp020RuleShapeMismatch => "rule pattern shape mismatch",
            DiagCode::Gp021StuckPivot => "pivot stuck below union/diff",
            DiagCode::Gp022PivotUnpivotMismatch => "pivot/unpivot pair does not cancel",
            DiagCode::Gp023NotShardSafe => "plan not provably shard-safe",
            DiagCode::Gp024ShardSafe => "plan proven shard-safe",
        }
    }

    /// The paper section / equation the rule is derived from.
    pub fn paper_ref(self) -> &'static str {
        match self {
            DiagCode::Gp001PivotInputNoKey => "§2.1",
            DiagCode::Gp002MeasureInKey => "§2.1",
            DiagCode::Gp003InvalidSpec => "Eq. 3-4",
            DiagCode::Gp004OutputCollision => "§4.1",
            DiagCode::Gp005TypeCheck => "—",
            DiagCode::Gp010KeyNotPreserved => "§5.1 / Fig. 8",
            DiagCode::Gp011SelectOverCells => "Eq. 7 / Fig. 29",
            DiagCode::Gp012ProjectDropsCells => "§5.1.2",
            DiagCode::Gp013JoinOnCells => "§5.1.3",
            DiagCode::Gp014OuterJoin => "Fig. 22-23",
            DiagCode::Gp015AggNotBottomRespecting => "Eq. 8 / §5.1.4",
            DiagCode::Gp016AggNotSelfMaintainable => "Fig. 27-28",
            DiagCode::Gp017PivotsNotCombinable => "§4.2.3 / Fig. 7",
            DiagCode::Gp018UnionLosesKey => "§2.1",
            DiagCode::Gp019GroupByOnCells => "§5.1.4",
            DiagCode::Gp020RuleShapeMismatch => "—",
            DiagCode::Gp021StuckPivot => "Fig. 22",
            DiagCode::Gp022PivotUnpivotMismatch => "Eq. 9-12",
            DiagCode::Gp023NotShardSafe => "§4.2.3",
            DiagCode::Gp024ShardSafe => "§4.2.3",
        }
    }

    /// The severity the analyzer assigns when it emits this code.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::Gp001PivotInputNoKey
            | DiagCode::Gp002MeasureInKey
            | DiagCode::Gp003InvalidSpec
            | DiagCode::Gp004OutputCollision
            | DiagCode::Gp005TypeCheck => Severity::Error,
            DiagCode::Gp010KeyNotPreserved
            | DiagCode::Gp011SelectOverCells
            | DiagCode::Gp012ProjectDropsCells
            | DiagCode::Gp013JoinOnCells
            | DiagCode::Gp014OuterJoin
            | DiagCode::Gp015AggNotBottomRespecting
            | DiagCode::Gp016AggNotSelfMaintainable
            | DiagCode::Gp017PivotsNotCombinable
            | DiagCode::Gp018UnionLosesKey => Severity::Warn,
            DiagCode::Gp019GroupByOnCells
            | DiagCode::Gp020RuleShapeMismatch
            | DiagCode::Gp021StuckPivot
            | DiagCode::Gp022PivotUnpivotMismatch
            | DiagCode::Gp023NotShardSafe
            | DiagCode::Gp024ShardSafe => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding, anchored to a plan node.
///
/// `plan_path` is the path of child indexes from the root (unary operators
/// have one child at index 0; `Join`/`Union`/`Diff` have left = 0,
/// right = 1), matching [`Plan::children`] order — and therefore the
/// preorder line produced by `Plan::explain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: DiagCode,
    pub severity: Severity,
    /// Child-index path from the plan root to the offending node.
    pub plan_path: Vec<usize>,
    pub message: String,
    /// What to do about it, when the analyzer has a concrete suggestion.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at `path` with the code's default severity.
    pub fn new(code: DiagCode, path: Vec<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            plan_path: path,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a remediation suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// The node this diagnostic anchors to, if the path is still valid for
    /// `plan`.
    pub fn node<'p>(&self, plan: &'p Plan) -> Option<&'p Plan> {
        let mut node = plan;
        for &i in &self.plan_path {
            node = *node.children().get(i)?;
        }
        Some(node)
    }

    /// The 0-based line of the offending node in `Plan::explain` output:
    /// `explain` prints one line per node in preorder, so the line index is
    /// the number of nodes visited before the target.
    pub fn explain_line(&self, plan: &Plan) -> Option<usize> {
        fn walk(node: &Plan, path: &[usize], line: &mut usize) -> Option<usize> {
            if path.is_empty() {
                return Some(*line);
            }
            let children = node.children();
            let target = path[0];
            if target >= children.len() {
                return None;
            }
            *line += 1;
            for (i, child) in children.into_iter().enumerate() {
                if i == target {
                    return walk(child, &path[1..], line);
                }
                *line += child.node_count();
            }
            None
        }
        let mut line = 0;
        walk(plan, &self.plan_path, &mut line)
    }

    /// Render this diagnostic as JSON (hand-rolled; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self.plan_path.iter().map(|i| i.to_string()).collect();
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"plan_path\":[{}],\"message\":\"{}\"",
            self.code,
            self.severity,
            path.join(","),
            json_escape(&self.message),
        );
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", json_escape(s)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path: Vec<String> = self.plan_path.iter().map(|i| i.to_string()).collect();
        write!(
            f,
            "{}[{}] at plan node /{}: {}",
            self.severity,
            self.code,
            path.join("/"),
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{Expr, PivotSpec};
    use gpivot_storage::Value;

    fn plan() -> Plan {
        // Join(Select(Scan), GPivot(Scan)) — 5 nodes.
        Plan::scan("t")
            .select(Expr::col("a").gt(Expr::lit(1i64)))
            .join(
                Plan::scan("u").gpivot(PivotSpec::simple("k", "v", vec![Value::str("x")])),
                vec![("a", "b")],
            )
    }

    #[test]
    fn codes_are_unique_and_ordered() {
        let strs: Vec<&str> = DiagCode::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), DiagCode::ALL.len(), "duplicate code strings");
    }

    #[test]
    fn path_resolves_to_node() {
        let p = plan();
        let d = Diagnostic::new(DiagCode::Gp001PivotInputNoKey, vec![1], "x");
        assert!(matches!(d.node(&p), Some(Plan::GPivot { .. })));
        let d = Diagnostic::new(DiagCode::Gp005TypeCheck, vec![0, 0], "x");
        assert!(matches!(d.node(&p), Some(Plan::Scan { .. })));
        let d = Diagnostic::new(DiagCode::Gp005TypeCheck, vec![7], "x");
        assert!(d.node(&p).is_none());
    }

    #[test]
    fn explain_line_matches_preorder() {
        let p = plan();
        // Preorder: 0 Join, 1 Select, 2 Scan t, 3 GPivot, 4 Scan u.
        let line = |path: Vec<usize>| {
            Diagnostic::new(DiagCode::Gp005TypeCheck, path, "x").explain_line(&p)
        };
        assert_eq!(line(vec![]), Some(0));
        assert_eq!(line(vec![0]), Some(1));
        assert_eq!(line(vec![0, 0]), Some(2));
        assert_eq!(line(vec![1]), Some(3));
        assert_eq!(line(vec![1, 0]), Some(4));
        // The explain text must have exactly one line per node.
        assert_eq!(p.explain().lines().count(), p.node_count());
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(DiagCode::Gp005TypeCheck, vec![0, 1], "a \"quoted\"\nline")
            .with_suggestion("back\\slash");
        let j = d.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("back\\\\slash"));
        assert!(j.contains("\"plan_path\":[0,1]"));
    }
}
