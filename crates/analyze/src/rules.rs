//! The lint-rule registry.
//!
//! Each rule pairs a stable [`DiagCode`] with a check over the plan and its
//! derived [`NodeFacts`]; `evaluate` runs the whole registry. Codes
//! `GP020`/`GP022` are carried only by runtime rule rejections
//! (`CoreError::RuleNotApplicable`) — a structural shape mismatch says
//! nothing about the plan, so the analyzer stays silent on them.

use crate::diagnostic::{DiagCode, Diagnostic, Severity};
use crate::facts::NodeFacts;
use gpivot_algebra::{can_combine, AggFunc, AlgebraError, CombineVerdict, JoinKind, Plan};
use gpivot_storage::StorageError;
use std::collections::BTreeSet;

/// One entry of the registry: a stable code, a human name, and its check.
pub struct LintRule {
    pub code: DiagCode,
    pub name: &'static str,
    pub check: fn(&Plan, &NodeFacts) -> Vec<Diagnostic>,
}

/// The full registry, in code order.
pub fn rules() -> &'static [LintRule] {
    &[
        LintRule {
            code: DiagCode::Gp005TypeCheck,
            name: "type-check",
            check: check_schema_errors,
        },
        LintRule {
            code: DiagCode::Gp010KeyNotPreserved,
            name: "key-preservation",
            check: check_key_preservation,
        },
        LintRule {
            code: DiagCode::Gp011SelectOverCells,
            name: "select-over-cells",
            check: check_select_over_cells,
        },
        LintRule {
            code: DiagCode::Gp012ProjectDropsCells,
            name: "project-drops-cells",
            check: check_project_drops_cells,
        },
        LintRule {
            code: DiagCode::Gp013JoinOnCells,
            name: "join-on-cells",
            check: check_join_on_cells,
        },
        LintRule {
            code: DiagCode::Gp014OuterJoin,
            name: "outer-join",
            check: check_outer_join,
        },
        LintRule {
            code: DiagCode::Gp015AggNotBottomRespecting,
            name: "agg-over-pivot",
            check: check_agg_over_pivot,
        },
        LintRule {
            code: DiagCode::Gp016AggNotSelfMaintainable,
            name: "agg-self-maintainability",
            check: check_agg_self_maintainable,
        },
        LintRule {
            code: DiagCode::Gp017PivotsNotCombinable,
            name: "pivot-combinability",
            check: check_combinability,
        },
        LintRule {
            code: DiagCode::Gp018UnionLosesKey,
            name: "union-loses-key",
            check: check_union_loses_key,
        },
        LintRule {
            code: DiagCode::Gp019GroupByOnCells,
            name: "groupby-on-cells",
            check: check_groupby_on_cells,
        },
        LintRule {
            code: DiagCode::Gp021StuckPivot,
            name: "stuck-pivot",
            check: check_stuck_pivot,
        },
    ]
}

/// Run every rule over the (plan, facts) pair.
pub fn evaluate(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    for rule in rules() {
        out.extend((rule.check)(plan, facts));
    }
    // Most severe first, then by position, then by code.
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.plan_path.cmp(&b.plan_path))
            .then_with(|| a.code.cmp(&b.code))
    });
    out
}

/// Preorder walk over the plan and its facts in lockstep.
fn zip_walk<'a>(plan: &'a Plan, facts: &'a NodeFacts, f: &mut impl FnMut(&'a Plan, &'a NodeFacts)) {
    f(plan, facts);
    for (c, cf) in plan.children().into_iter().zip(facts.children.iter()) {
        zip_walk(c, cf, f);
    }
}

/// Map a schema-inference failure to its diagnostic code.
pub fn code_for_algebra_error(node: &Plan, err: &AlgebraError) -> DiagCode {
    match err {
        AlgebraError::PivotRequiresKey { detail } => {
            if detail.contains("declares no key") {
                DiagCode::Gp001PivotInputNoKey
            } else {
                DiagCode::Gp002MeasureInKey
            }
        }
        AlgebraError::InvalidPivotSpec(_) | AlgebraError::InvalidUnpivotSpec(_) => {
            DiagCode::Gp003InvalidSpec
        }
        AlgebraError::Storage(StorageError::DuplicateColumn(_))
            if matches!(node, Plan::GPivot { .. } | Plan::GUnpivot { .. }) =>
        {
            DiagCode::Gp004OutputCollision
        }
        _ => DiagCode::Gp005TypeCheck,
    }
}

fn check_schema_errors(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Some(err) = &nf.schema_error {
            let code = code_for_algebra_error(node, err);
            let mut d = Diagnostic::new(
                code,
                nf.path.clone(),
                format!("{node_op}: {err}", node_op = nf.op),
            );
            d.suggestion = match code {
                DiagCode::Gp001PivotInputNoKey => Some(
                    "declare a candidate key on the base table, or group the input first so \
                     (K, A1..Am) forms a key (§2.1)"
                        .to_string(),
                ),
                DiagCode::Gp002MeasureInKey => Some(
                    "pivot on a non-key measure column, or re-key the input so the measure \
                     is functionally determined"
                        .to_string(),
                ),
                DiagCode::Gp004OutputCollision => Some(
                    "rename the carried-through column that collides with an encoded \
                     `a1**…**Bj` pivot output name"
                        .to_string(),
                ),
                _ => None,
            };
            out.push(d);
        }
    });
    out
}

fn check_key_preservation(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        let pivot_below = nf.children.iter().any(|c| c.contains_pivot);
        if pivot_below
            && !nf.key_preserved
            && !matches!(node, Plan::Union { .. } | Plan::Diff { .. })
        {
            out.push(
                Diagnostic::new(
                    DiagCode::Gp010KeyNotPreserved,
                    nf.path.clone(),
                    format!(
                        "{} does not preserve the candidate key of its pivot-carrying input; \
                         GPIVOT pullup (§5.1) is blocked and maintenance falls back to \
                         insert/delete propagation",
                        nf.op
                    ),
                )
                .with_suggestion("keep the input's key columns in the operator's output"),
            );
        }
    });
    out
}

fn check_select_over_cells(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::Select { predicate, .. } = node {
            let child = &nf.children[0];
            let touched: Vec<String> = predicate
                .columns()
                .into_iter()
                .filter(|c| child.pivot_cells.contains(c))
                .collect();
            if !touched.is_empty() && !predicate.is_null_intolerant() {
                out.push(
                    Diagnostic::new(
                        DiagCode::Gp011SelectOverCells,
                        nf.path.clone(),
                        format!(
                            "selection over pivoted cells {touched:?} is not null-intolerant; \
                             the self-join pushdown (Eq. 7) and SelectPivotUpdate do not apply"
                        ),
                    )
                    .with_suggestion(
                        "rewrite the predicate so every disjunct rejects ⊥ in the touched \
                         cells (e.g. comparisons instead of IS NULL)",
                    ),
                );
            }
        }
    });
    out
}

fn check_project_drops_cells(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::Project { items, .. } = node {
            let child = &nf.children[0];
            if child.pivot_cells.is_empty() {
                return;
            }
            let kept: BTreeSet<&str> = items
                .iter()
                .filter_map(|(e, _)| match e {
                    gpivot_algebra::Expr::Col(c) => Some(c.as_str()),
                    _ => None,
                })
                .collect();
            let dropped: Vec<&String> = child
                .pivot_cells
                .iter()
                .filter(|c| !kept.contains(c.as_str()))
                .collect();
            if !dropped.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::Gp012ProjectDropsCells,
                        nf.path.clone(),
                        format!(
                            "projection drops pivoted cells {dropped:?}; the pivot below \
                             cannot be pulled above it (§5.1.2)"
                        ),
                    )
                    .with_suggestion(
                        "project before pivoting, or keep every pivoted output column",
                    ),
                );
            }
        }
    });
    out
}

fn check_join_on_cells(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::Join { on, residual, .. } = node {
            let mut touched: BTreeSet<String> = BTreeSet::new();
            for (l, r) in on {
                if nf.children[0].pivot_cells.contains(l) {
                    touched.insert(l.clone());
                }
                if nf.children[1].pivot_cells.contains(r) {
                    touched.insert(r.clone());
                }
            }
            if let Some(res) = residual {
                for c in res.columns() {
                    if nf.children.iter().any(|ch| ch.pivot_cells.contains(&c)) {
                        touched.insert(c);
                    }
                }
            }
            if !touched.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::Gp013JoinOnCells,
                        nf.path.clone(),
                        format!(
                            "join constrains pivoted cells {touched:?}; join pullup \
                             (§5.1.3) is blocked"
                        ),
                    )
                    .with_suggestion(
                        "join on carried-through K columns, or unpivot before joining on \
                         cell values",
                    ),
                );
            }
        }
    });
    out
}

fn check_outer_join(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::Join { kind, .. } = node {
            if *kind != JoinKind::Inner {
                out.push(Diagnostic::new(
                    DiagCode::Gp014OuterJoin,
                    nf.path.clone(),
                    format!(
                        "{kind} join is outside the delta-propagation rules (Fig. 22-23); \
                         the view will be maintained by recomputation"
                    ),
                ));
            }
        }
    });
    out
}

fn check_agg_over_pivot(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::GroupBy { group_by, aggs, .. } = node {
            let child = &nf.children[0];
            if child.pivot_cells.is_empty() {
                return;
            }
            // Grouping on cells is its own (GP019) story.
            if group_by.iter().any(|c| child.pivot_cells.contains(c)) {
                return;
            }
            let bad: Vec<String> = aggs
                .iter()
                .filter(|a| matches!(a.func, AggFunc::Count | AggFunc::CountStar | AggFunc::Avg))
                .map(|a| format!("{}({})", a.func, a.input))
                .collect();
            let covered: BTreeSet<&str> = aggs.iter().map(|a| a.input.as_str()).collect();
            let uncovered: Vec<&String> = child
                .pivot_cells
                .iter()
                .filter(|c| !covered.contains(c.as_str()))
                .collect();
            if !bad.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::Gp015AggNotBottomRespecting,
                        nf.path.clone(),
                        format!(
                            "aggregates {bad:?} over a pivoted input are not ⊥-respecting; \
                             groupby pullup (Eq. 8) does not apply"
                        ),
                    )
                    .with_suggestion(
                        "use SUM/MIN/MAX over pivoted cells, or aggregate before pivoting",
                    ),
                );
            } else if !uncovered.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::Gp015AggNotBottomRespecting,
                        nf.path.clone(),
                        format!(
                            "pivoted cells {uncovered:?} are neither grouped on nor \
                             aggregated; groupby pullup (Eq. 8) does not cover them"
                        ),
                    )
                    .with_suggestion(
                        "aggregate every pivoted cell, or drop unused cells before grouping",
                    ),
                );
            }
        }
    });
    out
}

fn check_agg_self_maintainable(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::GPivot { input, .. } = node {
            if let Plan::GroupBy { aggs, .. } = input.as_ref() {
                let fragile: Vec<String> = aggs
                    .iter()
                    .filter(|a| matches!(a.func, AggFunc::Min | AggFunc::Max | AggFunc::Avg))
                    .map(|a| format!("{}({})", a.func, a.input))
                    .collect();
                if !fragile.is_empty() {
                    out.push(
                        Diagnostic::new(
                            DiagCode::Gp016AggNotSelfMaintainable,
                            nf.path.clone(),
                            format!(
                                "aggregates {fragile:?} feeding the pivot are not \
                                 self-maintainable under deletes (Fig. 27); deletions \
                                 degrade to group-by re-evaluation"
                            ),
                        )
                        .with_suggestion(
                            "prefer SUM/COUNT aggregates, or accept GroupByInsDel on deletes",
                        ),
                    );
                }
            }
        }
    });
    out
}

fn check_combinability(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::GPivot { input, spec: outer } = node {
            if let Plan::GPivot { spec: inner, .. } = input.as_ref() {
                let verdict = can_combine(inner, outer);
                if !matches!(verdict, CombineVerdict::Composition) {
                    out.push(
                        Diagnostic::new(
                            DiagCode::Gp017PivotsNotCombinable,
                            nf.path.clone(),
                            format!("adjacent GPIVOTs (§4.2.3): {verdict}"),
                        )
                        .with_suggestion(
                            "make the outer pivot consume exactly the inner pivoted columns \
                             (Eq. 6), or keep the pivots apart and accept two maintenance steps",
                        ),
                    );
                }
            }
        }
    });
    out
}

fn check_union_loses_key(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::Union { .. } = node {
            if nf.children.iter().any(|c| c.key.is_some()) {
                let mut d = Diagnostic::new(
                    DiagCode::Gp018UnionLosesKey,
                    nf.path.clone(),
                    "bag union discards the candidate key; no key-requiring operator \
                     (notably GPIVOT) can sit above it"
                        .to_string(),
                );
                // Only escalate when pivoted data actually flows through.
                if !nf.children.iter().any(|c| c.contains_pivot) {
                    d.severity = Severity::Info;
                }
                out.push(d.with_suggestion(
                    "deduplicate (group) after the union before pivoting, or union after \
                     pivoting both branches",
                ));
            }
        }
    });
    out
}

fn check_groupby_on_cells(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if let Plan::GroupBy { group_by, .. } = node {
            let child = &nf.children[0];
            let on_cells: Vec<&String> = group_by
                .iter()
                .filter(|c| child.pivot_cells.contains(*c))
                .collect();
            if !on_cells.is_empty() {
                out.push(Diagnostic::new(
                    DiagCode::Gp019GroupByOnCells,
                    nf.path.clone(),
                    format!(
                        "grouping on pivoted cells {on_cells:?}: the pulled-up form is \
                         inexpressible (§5.1.4); deltas re-aggregate the affected groups"
                    ),
                ));
            }
        }
    });
    out
}

fn check_stuck_pivot(plan: &Plan, facts: &NodeFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    zip_walk(plan, facts, &mut |node, nf| {
        if matches!(node, Plan::Union { .. } | Plan::Diff { .. }) {
            for child in &nf.children {
                if child.contains_pivot {
                    out.push(Diagnostic::new(
                        DiagCode::Gp021StuckPivot,
                        child.path.clone(),
                        format!(
                            "a GPIVOT below {} cannot be pulled to the top; deltas \
                             reaching it use generic insert/delete propagation (Fig. 22)",
                            nf.op
                        ),
                    ));
                }
            }
        }
    });
    out
}
