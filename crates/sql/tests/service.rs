//! End-to-end `GpivotService` tests over a small TPC-H instance: CREATE
//! MATERIALIZED VIEW from the dialect text of the paper's three views,
//! rewrite hits answered **bit-identically** to base-table execution,
//! rewrite misses falling back to base tables (with the `rewrite.miss`
//! trace event and metrics), and EXPLAIN output.

use gpivot_sql::{parse_query, GpivotService, SqlError, SqlOutcome};
use gpivot_tpch::views::{view1, view2, view3, VIEW2_THRESHOLD};
use gpivot_tpch::{generate, TpchConfig};

fn service() -> GpivotService {
    let catalog = generate(&TpchConfig::scale(0.02));
    let svc = GpivotService::new(catalog);
    for (name, plan) in [
        ("v1", view1()),
        ("v2", view2(VIEW2_THRESHOLD)),
        ("v3", view3()),
    ] {
        let sql = format!(
            "CREATE MATERIALIZED VIEW {name} AS {}",
            plan.to_sql_dialect()
        );
        match svc.execute_sql(&sql).unwrap() {
            SqlOutcome::ViewCreated { name: n, .. } => assert_eq!(n, name),
            other => panic!("expected ViewCreated, got {other:?}"),
        }
    }
    svc
}

/// Run `sql` and return (rows, used_view).
fn select(svc: &GpivotService, sql: &str) -> (gpivot_storage::Table, Option<String>) {
    match svc.execute_sql(sql).unwrap() {
        SqlOutcome::Rows { table, used_view } => (table, used_view),
        other => panic!("expected Rows, got {other:?}"),
    }
}

fn assert_same_fields(a: &gpivot_storage::Table, b: &gpivot_storage::Table) {
    // The view's materialized table may carry different key *metadata* than
    // an ad-hoc execution infers; the contract is identical fields + rows.
    let (sa, sb) = (a.schema(), b.schema());
    assert_eq!(sa.arity(), sb.arity());
    for i in 0..sa.arity() {
        assert_eq!(sa.field_at(i).name, sb.field_at(i).name);
        assert_eq!(sa.field_at(i).data_type, sb.field_at(i).data_type);
    }
}

/// The same query executed directly against the base tables, bypassing the
/// rewriter entirely.
fn baseline(svc: &GpivotService, sql: &str) -> gpivot_storage::Table {
    let plan = parse_query(sql).unwrap();
    let snapshot = svc.service().snapshot();
    let manager = snapshot.manager();
    manager.executor().run(&plan, manager.catalog()).unwrap()
}

#[test]
fn all_three_paper_views_register_via_sql() {
    let svc = service();
    let mut names = svc.service().view_names();
    names.sort();
    assert_eq!(names, ["v1", "v2", "v3"]);
    let m = svc.service().metrics();
    assert_eq!(m.sql_registrations, 3);
}

#[test]
fn exact_view_definition_is_served_from_the_view() {
    let svc = service();
    let sql = view2(VIEW2_THRESHOLD).to_sql_dialect();
    let (rows, used) = select(&svc, &sql);
    assert_eq!(used.as_deref(), Some("v2"));
    // Bit-identical to executing the query against the base tables.
    let direct = baseline(&svc, &sql);
    assert_same_fields(&rows, &direct);
    assert!(rows.bag_eq(&direct), "view-served rows != base-table rows");
    assert_eq!(rows.sorted_rows(), direct.sorted_rows());
}

#[test]
fn residual_select_and_project_compensation_match_base_execution() {
    let svc = service();
    // σ + π on top of view1's definition: served from v1 with residual
    // predicate and compensating projection.
    let sql = format!(
        "SELECT c_custkey, \"1**l_extendedprice\" AS p1\n\
         FROM (\n{}\n) sub\n\
         WHERE c_nationkey > 10",
        view1().to_sql_dialect()
    );
    let (rows, used) = select(&svc, &sql);
    assert_eq!(used.as_deref(), Some("v1"));
    let direct = baseline(&svc, &sql);
    assert_same_fields(&rows, &direct);
    assert!(rows.bag_eq(&direct));
}

#[test]
fn unmatched_queries_fall_back_to_base_tables() {
    let svc = service();
    let (rows, used) = select(&svc, "SELECT * FROM customer WHERE c_custkey > 0");
    assert!(used.is_none());
    assert!(!rows.is_empty(), "tpch 0.02 has customers");
    let m = svc.service().metrics();
    assert_eq!(m.sql_rewrite_misses, 1);
    assert_eq!(m.trace_events.get("rewrite.miss"), Some(&1));
    let prom = m.prometheus();
    assert!(prom.contains("gpivot_sql_rewrites_total{outcome=\"miss\"} 1"));
}

#[test]
fn rewrite_hits_are_counted_and_traced() {
    let svc = service();
    let sql = view3().to_sql_dialect();
    let (_, used) = select(&svc, &sql);
    assert_eq!(used.as_deref(), Some("v3"));
    let m = svc.service().metrics();
    assert_eq!(m.sql_rewrite_hits, 1);
    assert_eq!(m.sql_rewrite_misses, 0);
    assert_eq!(m.trace_events.get("rewrite.hit"), Some(&1));
    assert!(m
        .prometheus()
        .contains("gpivot_sql_rewrites_total{outcome=\"hit\"} 1"));
    assert!(m
        .report()
        .contains("sql: 3 registrations, rewrites 1 hit / 0 miss"));
}

#[test]
fn explain_names_the_chosen_view_without_executing() {
    let svc = service();
    let sql = format!("EXPLAIN {}", view2(VIEW2_THRESHOLD).to_sql_dialect());
    let SqlOutcome::Explain { text } = svc.execute_sql(&sql).unwrap() else {
        panic!("expected Explain");
    };
    assert!(text.contains("used view: v2"), "explain was:\n{text}");
    assert!(text.contains("plan:"));
    assert!(text.contains("Scan"));
    // EXPLAIN does not touch the rewrite counters.
    let m = svc.service().metrics();
    assert_eq!(m.sql_rewrite_hits + m.sql_rewrite_misses, 0);
}

#[test]
fn explain_miss_says_base_tables() {
    let svc = service();
    let SqlOutcome::Explain { text } = svc.execute_sql("EXPLAIN SELECT * FROM orders").unwrap()
    else {
        panic!("expected Explain");
    };
    assert!(text.contains("no view matched"), "explain was:\n{text}");
}

#[test]
fn explain_create_surfaces_gp_lint_warnings() {
    let svc = service();
    // Outer joins sit outside the paper's delta-propagation rules, so the
    // analyzer flags them GP014 (warning); EXPLAIN CREATE surfaces that
    // without registering anything.
    let sql = "EXPLAIN CREATE MATERIALIZED VIEW w AS \
               SELECT * FROM orders \
               LEFT OUTER JOIN (SELECT * FROM customer) r \
               ON l.o_custkey = r.c_custkey";
    let SqlOutcome::Explain { text } = svc.execute_sql(sql).unwrap() else {
        panic!("expected Explain");
    };
    assert!(
        text.contains("GP0"),
        "expected a GP0xx diagnostic in:\n{text}"
    );
    assert!(!svc.service().view_names().contains(&"w".to_string()));
}

#[test]
fn parse_errors_carry_spans_and_engine_errors_do_not_panic() {
    let svc = service();
    let err = svc.execute_sql("SELECT FROM").unwrap_err();
    let span = err.span().expect("parse error has a span");
    assert_eq!(span.line, 1);

    let err = svc.execute_sql("SELECT * FROM no_such_table").unwrap_err();
    assert!(matches!(err, SqlError::Engine(_)), "got: {err}");
}
