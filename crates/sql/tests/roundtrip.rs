//! The dialect round-trip property: for any plan `p`,
//! `parse_query(p.to_sql_dialect())` reconstructs `p` *exactly*, which makes
//! the rendered text a fixed point of parse∘render:
//! `render(parse(render(p))) == render(p)`.
//!
//! Exercised on the three TPC-H pivot views from the paper's experimental
//! section and on generated plan shapes with hostile identifiers (reserved
//! words, digits, quotes, `⊥`, pivot-encoded `**` names), extreme numeric
//! literals, and every join/set-op/pivot operator.

use gpivot_algebra::PivotSpec;
use gpivot_algebra::{AggSpec, CmpOp, Expr, JoinKind, Plan, UnpivotGroup, UnpivotSpec};
use gpivot_sql::parse_query;
use gpivot_storage::value::days_from_date;
use gpivot_storage::Value;
use proptest::prelude::*;

fn assert_roundtrip(p: &Plan) {
    let sql = p.to_sql_dialect();
    let parsed = parse_query(&sql)
        .unwrap_or_else(|e| panic!("rendered dialect failed to parse: {e}\n--- sql ---\n{sql}"));
    assert_eq!(&parsed, p, "parse(render(p)) != p\n--- sql ---\n{sql}");
    assert_eq!(parsed.to_sql_dialect(), sql, "render not a fixed point");
}

#[test]
fn tpch_views_roundtrip() {
    for p in [
        gpivot_tpch::view1(),
        gpivot_tpch::view2(gpivot_tpch::views::VIEW2_THRESHOLD),
        gpivot_tpch::view3(),
    ] {
        assert_roundtrip(&p);
    }
}

// ---- generated plans -------------------------------------------------------

/// Identifiers that stress quoting: keywords, digit-leading, embedded
/// quotes/spaces, the `⊥` glyph, and pivot-encoded names.
fn arb_ident() -> BoxedStrategy<String> {
    prop_oneof![
        proptest::string::string_regex("[a-z_][a-z0-9_]{0,8}").unwrap(),
        Just("select".to_string()),
        Just("GROUP".to_string()),
        Just("left".to_string()),
        Just("2col".to_string()),
        Just("we\"ird \"name\"".to_string()),
        Just("⊥".to_string()),
        Just("1995**sum_price".to_string()),
        Just("a b".to_string()),
    ]
    .boxed()
}

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        prop_oneof![any::<i64>(), Just(i64::MIN), Just(i64::MAX),].prop_map(Value::Int),
        prop_oneof![
            (-1_000_000_000i64..1_000_000_000).prop_map(|i| i as f64 / 7.0),
            Just(0.5f64),
            Just(-0.0f64),
            Just(1e300f64),
        ]
        .prop_map(Value::Float),
        proptest::string::string_regex("[ -~⊥]{0,10}")
            .unwrap()
            .prop_map(Value::str),
        ((1970i32..2100), (1u32..13), (1u32..29))
            .prop_map(|(y, m, d)| Value::Date(days_from_date(y, m, d))),
    ]
    .boxed()
}

fn arb_cmp() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
    .boxed()
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_ident().prop_map(Expr::col),
        arb_value().prop_map(Expr::Lit),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        leaf.clone(),
        (arb_cmp(), sub.clone(), sub.clone()).prop_map(|(op, a, b)| Expr::Cmp(
            op,
            Box::new(a),
            Box::new(b)
        )),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(b)),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(b)),
        sub.clone().prop_map(|a| a.not()),
        sub.clone().prop_map(|a| a.is_null()),
        (sub.clone(), prop::collection::vec(arb_value(), 1..4))
            .prop_map(|(a, vs)| Expr::InList(Box::new(a), vs)),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| a.add(b)),
        (
            prop::collection::vec((sub.clone(), sub.clone()), 1..3),
            sub.clone()
        )
            .prop_map(|(branches, o)| Expr::Case {
                branches,
                otherwise: Box::new(o),
            }),
    ]
    .boxed()
}

fn arb_plan(depth: u32) -> BoxedStrategy<Plan> {
    let leaf = arb_ident().prop_map(Plan::scan).boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = arb_plan(depth - 1);
    prop_oneof![
        leaf,
        // σ
        (sub.clone(), arb_expr(2)).prop_map(|(p, e)| p.select(e)),
        // π — names must be unique within one projection.
        (
            sub.clone(),
            prop::collection::btree_set(arb_ident(), 1..4),
            prop::collection::vec(arb_expr(1), 3),
        )
            .prop_map(|(p, names, exprs)| {
                p.project(
                    names
                        .into_iter()
                        .zip(exprs)
                        .map(|(n, e)| (e, n))
                        .collect::<Vec<_>>(),
                )
            }),
        // join (equi-pairs + optional residual)
        (
            sub.clone(),
            sub.clone(),
            prop_oneof![
                Just(JoinKind::Inner),
                Just(JoinKind::LeftOuter),
                Just(JoinKind::FullOuter)
            ],
            prop::collection::vec((arb_ident(), arb_ident()), 0..3),
            prop_oneof![Just(None), arb_expr(1).prop_map(Some)],
        )
            .prop_map(|(l, r, kind, on, residual)| Plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind,
                on,
                residual,
            }),
        // γ — group cols and agg outputs share a namespace; keep disjoint.
        (
            sub.clone(),
            prop::collection::btree_set(arb_ident(), 0..3),
            prop::collection::vec(arb_ident(), 1..3),
        )
            .prop_map(|(p, groups, inputs)| {
                let group_by: Vec<String> = groups.into_iter().collect();
                let aggs: Vec<AggSpec> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, c)| match i % 3 {
                        0 => AggSpec::sum(c.clone(), format!("agg{i}")),
                        1 => AggSpec::count_star(format!("agg{i}")),
                        _ => AggSpec::min(c.clone(), format!("agg{i}")),
                    })
                    .collect();
                Plan::GroupBy {
                    input: Box::new(p),
                    group_by,
                    aggs,
                }
            }),
        // ∪ / −
        (sub.clone(), sub.clone()).prop_map(|(l, r)| Plan::Union {
            left: Box::new(l),
            right: Box::new(r)
        }),
        (sub.clone(), sub.clone()).prop_map(|(l, r)| Plan::Diff {
            left: Box::new(l),
            right: Box::new(r)
        }),
        // GPIVOT
        (
            sub.clone(),
            prop::collection::vec(arb_ident(), 1..3),
            prop::collection::vec(arb_ident(), 1..3),
            prop::collection::vec(prop::collection::vec(arb_value(), 2..3), 1..3),
        )
            .prop_map(|(p, by, on, raw_groups)| {
                let k = by.len();
                let groups: Vec<Vec<Value>> = raw_groups
                    .into_iter()
                    .map(|g| g[..k.min(g.len())].to_vec())
                    .collect();
                let groups: Vec<Vec<Value>> = groups
                    .into_iter()
                    .map(|mut g| {
                        while g.len() < k {
                            g.push(Value::Null);
                        }
                        g
                    })
                    .collect();
                p.gpivot(PivotSpec::new(by, on, groups))
            }),
        // GUNPIVOT
        (
            sub.clone(),
            prop::collection::vec(arb_ident(), 1..3),
            prop::collection::vec(arb_ident(), 1..3),
            prop::collection::vec(
                (
                    prop::collection::vec(arb_ident(), 2..3),
                    prop::collection::vec(arb_value(), 2..3)
                ),
                1..3,
            ),
        )
            .prop_map(|(p, value_cols, name_cols, raw)| {
                let nv = value_cols.len();
                let nn = name_cols.len();
                let pad = |mut v: Vec<String>, n: usize| {
                    v.truncate(n);
                    while v.len() < n {
                        v.push(format!("pad{}", v.len()));
                    }
                    v
                };
                let groups: Vec<UnpivotGroup> = raw
                    .into_iter()
                    .map(|(cols, mut tags)| {
                        tags.truncate(nn);
                        while tags.len() < nn {
                            tags.push(Value::Null);
                        }
                        UnpivotGroup {
                            cols: pad(cols, nv),
                            tags,
                        }
                    })
                    .collect();
                p.gunpivot(UnpivotSpec::new(groups, name_cols, value_cols))
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    #[test]
    fn generated_plans_roundtrip(p in arb_plan(3)) {
        assert_roundtrip(&p);
    }

    #[test]
    fn generated_predicates_roundtrip(e in arb_expr(4)) {
        let p = Plan::scan("t").select(e);
        assert_roundtrip(&p);
    }
}
