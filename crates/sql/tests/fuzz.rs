//! Negative-path robustness: the frontend must never panic, on any input —
//! pure byte noise, noise spliced into valid statements, or truncations —
//! and every rejection must carry a 1-based source span.

use gpivot_sql::{parse_statement, SqlError};
use proptest::prelude::*;

fn check_no_panic(input: &str) {
    match parse_statement(input) {
        Ok(_) => {}
        Err(SqlError::Parse { span, .. }) => {
            assert!(span.line >= 1, "span line is 1-based: {span:?}");
            assert!(span.col >= 1, "span col is 1-based: {span:?}");
        }
        Err(SqlError::Plan(_)) => {} // parsed, failed lowering — fine
        Err(e) => panic!("parser returned a non-frontend error: {e}"),
    }
}

const VALID: &str = "EXPLAIN SELECT a, sum(b) AS s FROM t \
     GPIVOT (v BY k IN (('x'), ('y'))) \
     JOIN (SELECT * FROM u) r ON l.a = r.a \
     WHERE a > 0 GROUP BY a";

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    #[test]
    fn arbitrary_bytes_never_panic(noise in "[ -~\n⊥'\"]{0,80}") {
        check_no_panic(&noise);
    }

    #[test]
    fn sql_flavoured_noise_never_panics(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GPIVOT"),
                Just("GUNPIVOT"), Just("JOIN"), Just("ON"), Just("GROUP"),
                Just("BY"), Just("IN"), Just("AS"), Just("("), Just(")"),
                Just(","), Just("*"), Just("'s"), Just("\"q"), Just("--"),
                Just("1.5e"), Just("x"), Just("="), Just("DATE"), Just("NULL"),
            ],
            0..24,
        )
    ) {
        check_no_panic(&words.join(" "));
    }

    #[test]
    fn spliced_valid_sql_never_panics(
        cut in 0usize..VALID.len(),
        noise in "[ -~\n⊥'\"]{0,12}",
    ) {
        // Truncate a valid statement at an arbitrary char boundary and
        // append noise: stresses every "unexpected end of input" path.
        let mut boundary = cut;
        while !VALID.is_char_boundary(boundary) {
            boundary -= 1;
        }
        let mut s = VALID[..boundary].to_string();
        s.push_str(&noise);
        check_no_panic(&s);
    }
}

#[test]
fn error_spans_point_at_the_offending_token() {
    let err = parse_statement("SELECT *\nFROM t WHERE").unwrap_err();
    let span = err.span().expect("parse errors carry spans");
    assert_eq!(span.line, 2);
    assert!(err.to_string().contains("line 2"));

    let err = parse_statement("SELEC * FROM t").unwrap_err();
    let span = err.span().expect("parse errors carry spans");
    assert_eq!((span.line, span.col), (1, 1));
}

#[test]
fn plan_errors_do_not_pretend_to_have_spans() {
    // Parses fine, fails lowering: computed item without AS has a span,
    // but a GROUP BY mismatch is a plan error.
    let err = parse_statement("SELECT a FROM t GROUP BY b").unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)), "got: {err}");
    assert_eq!(err.span(), None);
}
