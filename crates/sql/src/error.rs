//! The SQL frontend's error type: parse errors carry a source span.

use crate::lexer::Span;
use std::fmt;

/// Errors surfaced by [`crate::parse_statement`] and
/// [`crate::GpivotService::execute_sql`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The statement failed to lex or parse. `span` is the 1-based source
    /// position (line, column) of the offending token.
    Parse { message: String, span: Span },
    /// The statement parsed but cannot be lowered to a plan (unsupported
    /// shape, arity mismatch in a pivot clause, ...).
    Plan(String),
    /// The engine rejected or failed the planned statement (registration
    /// gate, execution error, unknown table, ...).
    Engine(String),
}

impl SqlError {
    /// Parse-error constructor.
    pub fn parse(message: impl Into<String>, span: Span) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            span,
        }
    }

    /// The source span, when the error is positional.
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::Parse { span, .. } => Some(*span),
            _ => None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, span } => write!(f, "parse error at {span}: {message}"),
            SqlError::Plan(m) => write!(f, "plan error: {m}"),
            SqlError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Frontend result alias.
pub type Result<T> = std::result::Result<T, SqlError>;
