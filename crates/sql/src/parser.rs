//! Recursive-descent parser for the §7.1 dialect, lowering to the algebra's
//! [`Plan`] IR.
//!
//! The grammar (EBNF; see DESIGN.md §4e for the full commentary):
//!
//! ```text
//! statement    := EXPLAIN statement'
//!               | statement'
//! statement'   := CREATE MATERIALIZED VIEW ident AS select_stmt
//!               | select_stmt
//! select_stmt  := query ((UNION ALL | EXCEPT ALL) query)*      -- left-assoc
//! query        := SELECT items FROM source [WHERE expr] [GROUP BY idents]
//! items        := '*' | item (',' item)*
//! item         := agg '(' (ident | '*') ')' AS ident
//!               | expr [AS ident]                       -- bare col names itself
//! source       := unit (join_kw unit ON on_cond)*
//! join_kw      := JOIN | INNER JOIN | LEFT [OUTER] JOIN | FULL [OUTER] JOIN
//! unit         := (ident | '(' select_stmt ')') [[AS] ident] pivot*
//! pivot        := GPIVOT '(' idents BY idents IN '(' group (',' group)* ')' ')'
//!               | GUNPIVOT '(' idents FOR idents IN '(' ugroup (',' ugroup)* ')' ')'
//! group        := literal | '(' literal (',' literal)* ')'
//! ugroup       := '(' idents ')' AS '(' literal (',' literal)* ')'
//! on_cond      := TRUE | on_atom (AND on_atom)*
//! on_atom      := [qual '.'] ident '=' [qual '.'] ident   -- equi-join pair
//!               | expr                                    -- residual predicate
//! ```
//!
//! Lowering is schema-free and purely syntactic: `SELECT *` adds no node,
//! `WHERE` lowers to σ, a plain item list to π, aggregate items (with an
//! optional `GROUP BY`) to the grouping operator, and pivot clauses to
//! GPIVOT/GUNPIVOT nodes on their FROM unit. Schema checking happens later,
//! when the plan is registered or executed.

use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Span, Token, TokenKind};
use gpivot_algebra::{
    AggSpec, BinOp, CmpOp, Expr, JoinKind, PivotSpec, Plan, UnpivotGroup, UnpivotSpec,
};
use gpivot_storage::value::days_from_date;
use gpivot_storage::Value;
use std::collections::BTreeSet;

/// A parsed top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// An ad-hoc query.
    Select(Plan),
    /// `CREATE MATERIALIZED VIEW <name> AS <query>`.
    CreateView { name: String, definition: Plan },
    /// `EXPLAIN <statement>` (not nestable).
    Explain(Box<Statement>),
}

/// Parse one statement (optionally `;`-terminated).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(tokenize(src)?);
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a bare query (no DDL/EXPLAIN) to its plan — the entry point the
/// round-trip tests use against [`Plan::to_sql_dialect`].
pub fn parse_query(src: &str) -> Result<Plan> {
    let mut p = Parser::new(tokenize(src)?);
    let plan = p.select_stmt()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(plan)
}

/// One select item before lowering.
enum Item {
    Expr {
        expr: Expr,
        name: String,
        span: Span,
    },
    Agg {
        agg: AggSpec,
        span: Span,
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        // `tokenize` always appends Eof, so clamping to the last token is
        // safe for any `pos`.
        self.tokens.get(self.pos).unwrap_or_else(|| {
            self.tokens
                .last()
                .expect("token stream always ends with Eof")
        })
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(SqlError::parse(msg.into(), self.span()))
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {}", self.peek().kind))
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Symbol(s) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.at_sym(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`, found {}", self.peek().kind))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!(
                "expected end of statement, found {}",
                self.peek().kind
            ))
        }
    }

    /// An identifier token (bare or quoted).
    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(name) = self.bump().kind else {
                    unreachable!("peeked Ident")
                };
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.ident()?];
        while self.eat_sym(",") {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            if self.at_kw("EXPLAIN") {
                return self.err("nested EXPLAIN is not supported");
            }
            let inner = self.statement_body()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        self.statement_body()
    }

    fn statement_body(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let definition = self.select_stmt()?;
            return Ok(Statement::CreateView { name, definition });
        }
        Ok(Statement::Select(self.select_stmt()?))
    }

    /// `query ((UNION ALL | EXCEPT ALL) query)*`, left-associative.
    fn select_stmt(&mut self) -> Result<Plan> {
        let mut plan = self.query_block()?;
        loop {
            if self.eat_kw("UNION") {
                self.expect_kw("ALL")?;
                let rhs = self.query_block()?;
                plan = Plan::Union {
                    left: Box::new(plan),
                    right: Box::new(rhs),
                };
            } else if self.eat_kw("EXCEPT") {
                self.expect_kw("ALL")?;
                let rhs = self.query_block()?;
                plan = Plan::Diff {
                    left: Box::new(plan),
                    right: Box::new(rhs),
                };
            } else {
                return Ok(plan);
            }
        }
    }

    // ---- one SELECT block ------------------------------------------------

    fn query_block(&mut self) -> Result<Plan> {
        self.expect_kw("SELECT")?;
        let items = if self.eat_sym("*") {
            None
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_sym(",") {
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let source = self.source()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr(false)?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.ident_list()?)
        } else {
            None
        };
        self.lower_query(items, source, where_clause, group_by)
    }

    fn lower_query(
        &self,
        items: Option<Vec<Item>>,
        source: Plan,
        where_clause: Option<Expr>,
        group_by: Option<Vec<String>>,
    ) -> Result<Plan> {
        let mut plan = source;
        if let Some(pred) = where_clause {
            plan = plan.select(pred);
        }
        let Some(items) = items else {
            if group_by.is_some() {
                return Err(SqlError::Plan(
                    "GROUP BY requires an explicit select list, not `*`".into(),
                ));
            }
            return Ok(plan);
        };
        let has_aggs = items.iter().any(|i| matches!(i, Item::Agg { .. }));
        if !has_aggs && group_by.is_none() {
            let proj: Vec<(Expr, String)> = items
                .into_iter()
                .map(|i| match i {
                    Item::Expr { expr, name, .. } => (expr, name),
                    Item::Agg { .. } => unreachable!("no aggs in this arm"),
                })
                .collect();
            return Ok(plan.project(proj));
        }
        // Aggregate query: grouping columns (bare, in GROUP BY order) must
        // come first, then the aggregates — the exact output order of the
        // grouping operator, so no hidden projection is needed.
        let group_by = group_by.unwrap_or_default();
        let mut group_cols: Vec<String> = Vec::new();
        let mut aggs: Vec<AggSpec> = Vec::new();
        for item in items {
            match item {
                Item::Expr { expr, name, span } => {
                    if !aggs.is_empty() {
                        return Err(SqlError::parse(
                            "grouping columns must be listed before aggregates",
                            span,
                        ));
                    }
                    match expr {
                        Expr::Col(c) if c == name => group_cols.push(c),
                        _ => {
                            return Err(SqlError::parse(
                                format!(
                                    "select item `{name}` must be a bare grouping column \
                                     in an aggregate query"
                                ),
                                span,
                            ))
                        }
                    }
                }
                Item::Agg { agg, span } => {
                    if group_by.is_empty() && !group_cols.is_empty() {
                        return Err(SqlError::parse(
                            "non-aggregate select items require a GROUP BY clause",
                            span,
                        ));
                    }
                    aggs.push(agg);
                }
            }
        }
        if group_cols != group_by {
            return Err(SqlError::Plan(format!(
                "select list grouping columns {group_cols:?} must match the \
                 GROUP BY clause {group_by:?} (same columns, same order)"
            )));
        }
        Ok(Plan::GroupBy {
            input: Box::new(plan),
            group_by,
            aggs,
        })
    }

    fn select_item(&mut self) -> Result<Item> {
        let span = self.span();
        // Aggregate call? (contextual: a bare ident naming an aggregate,
        // immediately followed by `(`.)
        if let TokenKind::Ident(word) = &self.peek().kind {
            let func = word.to_ascii_lowercase();
            if matches!(func.as_str(), "sum" | "count" | "avg" | "min" | "max")
                && matches!(self.peek2(), Some(TokenKind::Symbol("(")))
            {
                self.bump();
                self.bump();
                let input = if self.at_sym("*") {
                    if func != "count" {
                        return self.err(format!("{func}(*) is not supported; only count(*)"));
                    }
                    self.bump();
                    None
                } else {
                    Some(self.ident()?)
                };
                self.expect_sym(")")?;
                self.expect_kw("AS")?;
                let output = self.ident()?;
                let agg = match (func.as_str(), input) {
                    ("count", None) => AggSpec::count_star(output),
                    ("sum", Some(c)) => AggSpec::sum(c, output),
                    ("count", Some(c)) => AggSpec::count(c, output),
                    ("avg", Some(c)) => AggSpec::avg(c, output),
                    ("min", Some(c)) => AggSpec::min(c, output),
                    ("max", Some(c)) => AggSpec::max(c, output),
                    _ => return Err(SqlError::parse("aggregate needs a column argument", span)),
                };
                return Ok(Item::Agg { agg, span });
            }
        }
        let expr = self.expr(false)?;
        let name = if self.eat_kw("AS") {
            self.ident()?
        } else {
            match &expr {
                Expr::Col(c) => c.clone(),
                _ => {
                    return Err(SqlError::parse(
                        "computed select item needs an `AS <name>` alias",
                        span,
                    ))
                }
            }
        };
        Ok(Item::Expr { expr, name, span })
    }

    // ---- FROM sources ----------------------------------------------------

    fn source(&mut self) -> Result<Plan> {
        let (mut left, mut left_names) = self.unit()?;
        left_names.insert("l".to_string());
        loop {
            let kind = if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else if self.eat_kw("FULL") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::FullOuter
            } else {
                return Ok(left);
            };
            let (right, mut right_names) = self.unit()?;
            right_names.insert("r".to_string());
            self.expect_kw("ON")?;
            let (on, residual) = self.on_condition(&left_names, &right_names)?;
            left_names.extend(right_names);
            left_names.remove("r");
            left = Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                residual,
            };
        }
    }

    /// A FROM unit: base table or parenthesized subquery, optional alias,
    /// then any number of postfix GPIVOT/GUNPIVOT clauses. Returns the plan
    /// plus the names by which ON conditions may qualify its columns.
    fn unit(&mut self) -> Result<(Plan, BTreeSet<String>)> {
        let mut names = BTreeSet::new();
        let mut plan = if self.eat_sym("(") {
            let sub = self.select_stmt()?;
            self.expect_sym(")")?;
            for t in sub.base_tables() {
                names.insert(t);
            }
            sub
        } else {
            let table = self.ident()?;
            names.insert(table.clone());
            Plan::scan(table)
        };
        // Optional alias (with or without AS). A bare keyword (JOIN, WHERE,
        // GPIVOT, ...) never counts as an alias because keywords lex as
        // `TokenKind::Keyword`.
        if self.eat_kw("AS") || matches!(self.peek().kind, TokenKind::Ident(_)) {
            names.insert(self.ident()?);
        }
        loop {
            if self.eat_kw("GPIVOT") {
                plan = plan.gpivot(self.gpivot_clause()?);
            } else if self.eat_kw("GUNPIVOT") {
                plan = plan.gunpivot(self.gunpivot_clause()?);
            } else {
                return Ok((plan, names));
            }
        }
    }

    /// `( <measure cols> BY <pivot cols> IN ( group, ... ) )`
    fn gpivot_clause(&mut self) -> Result<PivotSpec> {
        self.expect_sym("(")?;
        let on = self.ident_list()?;
        self.expect_kw("BY")?;
        let by = self.ident_list()?;
        self.expect_kw("IN")?;
        self.expect_sym("(")?;
        let mut groups = Vec::new();
        loop {
            let span = self.span();
            let group = if self.eat_sym("(") {
                let mut vals = vec![self.literal()?];
                while self.eat_sym(",") {
                    vals.push(self.literal()?);
                }
                self.expect_sym(")")?;
                vals
            } else {
                vec![self.literal()?]
            };
            if group.len() != by.len() {
                return Err(SqlError::parse(
                    format!(
                        "pivot value group has {} value(s) but GPIVOT pivots {} column(s)",
                        group.len(),
                        by.len()
                    ),
                    span,
                ));
            }
            groups.push(group);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        self.expect_sym(")")?;
        Ok(PivotSpec::new(by, on, groups))
    }

    /// `( <value cols> FOR <name cols> IN ( (cols) AS (tags), ... ) )`
    fn gunpivot_clause(&mut self) -> Result<UnpivotSpec> {
        self.expect_sym("(")?;
        let value_cols = self.ident_list()?;
        self.expect_kw("FOR")?;
        let name_cols = self.ident_list()?;
        self.expect_kw("IN")?;
        self.expect_sym("(")?;
        let mut groups = Vec::new();
        loop {
            let span = self.span();
            self.expect_sym("(")?;
            let cols = self.ident_list()?;
            self.expect_sym(")")?;
            self.expect_kw("AS")?;
            self.expect_sym("(")?;
            let mut tags = vec![self.literal()?];
            while self.eat_sym(",") {
                tags.push(self.literal()?);
            }
            self.expect_sym(")")?;
            if cols.len() != value_cols.len() || tags.len() != name_cols.len() {
                return Err(SqlError::parse(
                    format!(
                        "GUNPIVOT group has {} column(s) / {} tag(s) but the clause \
                         unpivots {} value column(s) tagged by {} name column(s)",
                        cols.len(),
                        tags.len(),
                        value_cols.len(),
                        name_cols.len()
                    ),
                    span,
                ));
            }
            groups.push(UnpivotGroup { tags, cols });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        self.expect_sym(")")?;
        Ok(UnpivotSpec::new(groups, name_cols, value_cols))
    }

    // ---- join conditions -------------------------------------------------

    /// Equi-join column pairs plus the AND-folded residual predicate.
    #[allow(clippy::type_complexity)]
    fn on_condition(
        &mut self,
        left_names: &BTreeSet<String>,
        right_names: &BTreeSet<String>,
    ) -> Result<(Vec<(String, String)>, Option<Expr>)> {
        let mut on = Vec::new();
        let mut residuals = Vec::new();
        loop {
            if self.at_kw("TRUE") && !Self::continues_expr(self.peek2()) {
                // The renderer's empty-condition marker: `ON TRUE`.
                self.bump();
            } else if let Some((a, b)) = self.try_join_pair(left_names, right_names) {
                on.push((a, b));
            } else {
                residuals.push(self.expr(true)?);
            }
            if !self.eat_kw("AND") {
                break;
            }
        }
        let residual = if residuals.is_empty() {
            None
        } else {
            Some(Expr::conjunction(residuals))
        };
        Ok((on, residual))
    }

    /// True when a token could continue an expression after a complete
    /// operand, meaning a candidate join pair actually extends further
    /// (e.g. `l.a = r.b + 1`) and must be parsed as a residual instead.
    fn continues_expr(kind: Option<&TokenKind>) -> bool {
        matches!(
            kind,
            Some(TokenKind::Symbol(
                "+" | "-" | "*" | "/" | "=" | "<>" | "<" | "<=" | ">" | ">=" | "."
            )) | Some(TokenKind::Keyword("IS" | "IN" | "OR" | "NOT"))
        )
    }

    /// Attempt `[qual.]col = [qual.]col` followed by AND or the end of the
    /// ON condition; rolls back and returns None if the shape doesn't fit.
    fn try_join_pair(
        &mut self,
        left_names: &BTreeSet<String>,
        right_names: &BTreeSet<String>,
    ) -> Option<(String, String)> {
        let start = self.pos;
        let pair = self.join_pair_inner(left_names, right_names);
        if pair.is_none() {
            self.pos = start;
        }
        pair
    }

    fn qualified_col(&mut self) -> Option<(Option<String>, String)> {
        let TokenKind::Ident(first) = self.peek().kind.clone() else {
            return None;
        };
        self.bump();
        if self.at_sym(".") {
            self.bump();
            let TokenKind::Ident(col) = self.peek().kind.clone() else {
                return None;
            };
            self.bump();
            Some((Some(first), col))
        } else {
            Some((None, first))
        }
    }

    fn join_pair_inner(
        &mut self,
        left_names: &BTreeSet<String>,
        right_names: &BTreeSet<String>,
    ) -> Option<(String, String)> {
        let (q1, c1) = self.qualified_col()?;
        if !self.eat_sym("=") {
            return None;
        }
        let (q2, c2) = self.qualified_col()?;
        // The pair must be a complete atom: followed by AND or a terminator.
        if Self::continues_expr(Some(&self.peek().kind)) {
            return None;
        }
        #[derive(PartialEq)]
        enum Side {
            Left,
            Right,
            Unknown,
        }
        let side = |q: &Option<String>| match q {
            None => Side::Unknown,
            Some(q) if q == "l" || left_names.contains(q) => Side::Left,
            Some(q) if q == "r" || right_names.contains(q) => Side::Right,
            Some(_) => Side::Unknown,
        };
        match (side(&q1), side(&q2)) {
            (Side::Left | Side::Unknown, Side::Right | Side::Unknown) => Some((c1, c2)),
            (Side::Right, Side::Left | Side::Unknown) | (Side::Unknown, Side::Left) => {
                Some((c2, c1))
            }
            // Both columns on the same side: not an equi-join pair; let the
            // residual path handle it (qualifiers are stripped there).
            _ => None,
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, in_on: bool) -> Result<Expr> {
        self.or_expr(in_on)
    }

    fn or_expr(&mut self, in_on: bool) -> Result<Expr> {
        let mut e = self.and_expr(in_on)?;
        while self.eat_kw("OR") {
            e = e.or(self.and_expr(in_on)?);
        }
        Ok(e)
    }

    fn and_expr(&mut self, in_on: bool) -> Result<Expr> {
        let mut e = self.not_expr(in_on)?;
        while self.eat_kw("AND") {
            e = e.and(self.not_expr(in_on)?);
        }
        Ok(e)
    }

    fn not_expr(&mut self, in_on: bool) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(self.not_expr(in_on)?.not());
        }
        self.predicate(in_on)
    }

    fn predicate(&mut self, in_on: bool) -> Result<Expr> {
        let lhs = self.additive(in_on)?;
        if let TokenKind::Symbol(sym @ ("=" | "<>" | "<" | "<=" | ">" | ">=")) = self.peek().kind {
            self.bump();
            let rhs = self.additive(in_on)?;
            let op = match sym {
                "=" => CmpOp::Eq,
                "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let e = lhs.is_null();
            return Ok(if negated { e.not() } else { e });
        }
        let negated = if self.at_kw("NOT") && matches!(self.peek2(), Some(TokenKind::Keyword("IN")))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut vals = vec![self.literal()?];
            while self.eat_sym(",") {
                vals.push(self.literal()?);
            }
            self.expect_sym(")")?;
            let e = lhs.in_list(vals);
            return Ok(if negated { e.not() } else { e });
        }
        Ok(lhs)
    }

    fn additive(&mut self, in_on: bool) -> Result<Expr> {
        let mut e = self.multiplicative(in_on)?;
        loop {
            let op = if self.at_sym("+") {
                BinOp::Add
            } else if self.at_sym("-") {
                BinOp::Sub
            } else {
                return Ok(e);
            };
            self.bump();
            let rhs = self.multiplicative(in_on)?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self, in_on: bool) -> Result<Expr> {
        let mut e = self.factor(in_on)?;
        loop {
            let op = if self.at_sym("*") {
                BinOp::Mul
            } else if self.at_sym("/") {
                BinOp::Div
            } else {
                return Ok(e);
            };
            self.bump();
            let rhs = self.factor(in_on)?;
            e = Expr::Bin(op, Box::new(e), Box::new(rhs));
        }
    }

    fn factor(&mut self, in_on: bool) -> Result<Expr> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Symbol("(") => {
                self.bump();
                let e = self.expr(in_on)?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Symbol("-") => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Number { text, float } => {
                        self.bump();
                        Ok(Expr::Lit(self.number_value(&text, float, true, span)?))
                    }
                    _ => Err(SqlError::parse(
                        "unary minus is only supported on numeric literals",
                        span,
                    )),
                }
            }
            TokenKind::Keyword("CASE") => {
                self.bump();
                self.case_expr(in_on)
            }
            TokenKind::Keyword("NULL") => {
                self.bump();
                Ok(Expr::Lit(Value::Null))
            }
            TokenKind::Keyword("TRUE") => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(true)))
            }
            TokenKind::Keyword("FALSE") => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(false)))
            }
            TokenKind::Keyword("DATE") => {
                self.bump();
                Ok(Expr::Lit(self.date_literal()?))
            }
            TokenKind::Number { text, float } => {
                self.bump();
                Ok(Expr::Lit(self.number_value(&text, float, false, span)?))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::str(s)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at_sym(".") {
                    if !in_on {
                        return Err(SqlError::parse(
                            format!(
                                "qualified column reference `{name}.…` is only \
                                 supported in ON conditions"
                            ),
                            span,
                        ));
                    }
                    self.bump();
                    // Residual predicates evaluate over the concatenated
                    // join schema, where columns are unqualified.
                    return Ok(Expr::col(self.ident()?));
                }
                Ok(Expr::col(name))
            }
            other => Err(SqlError::parse(
                format!("expected expression, found {other}"),
                span,
            )),
        }
    }

    fn case_expr(&mut self, in_on: bool) -> Result<Expr> {
        let mut branches = Vec::new();
        self.expect_kw("WHEN")?;
        loop {
            let cond = self.expr(in_on)?;
            self.expect_kw("THEN")?;
            let val = self.expr(in_on)?;
            branches.push((cond, val));
            if !self.eat_kw("WHEN") {
                break;
            }
        }
        let otherwise = if self.eat_kw("ELSE") {
            self.expr(in_on)?
        } else {
            Expr::Lit(Value::Null)
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            otherwise: Box::new(otherwise),
        })
    }

    // ---- literals --------------------------------------------------------

    fn number_value(&self, text: &str, float: bool, negative: bool, span: Span) -> Result<Value> {
        let signed: String = if negative {
            format!("-{text}")
        } else {
            text.to_string()
        };
        if float {
            signed
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| SqlError::parse(format!("malformed number `{signed}`: {e}"), span))
        } else {
            signed.parse::<i64>().map(Value::Int).map_err(|_| {
                SqlError::parse(format!("integer literal `{signed}` out of range"), span)
            })
        }
    }

    fn date_literal(&mut self) -> Result<Value> {
        let span = self.span();
        let TokenKind::Str(s) = self.peek().kind.clone() else {
            return self.err(format!(
                "DATE needs a 'YYYY-MM-DD' string, found {}",
                self.peek().kind
            ));
        };
        self.bump();
        let bad = || SqlError::parse(format!("malformed date `{s}` (want YYYY-MM-DD)"), span);
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i32, rest),
            None => (1, s.as_str()),
        };
        let parts: Vec<&str> = body.split('-').collect();
        if parts.len() != 3 {
            return Err(bad());
        }
        let y: i32 = parts[0].parse().map_err(|_| bad())?;
        let m: u32 = parts[1].parse().map_err(|_| bad())?;
        let d: u32 = parts[2].parse().map_err(|_| bad())?;
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(bad());
        }
        Ok(Value::Date(days_from_date(sign * y, m, d)))
    }

    fn literal(&mut self) -> Result<Value> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Keyword("NULL") => {
                self.bump();
                Ok(Value::Null)
            }
            TokenKind::Keyword("TRUE") => {
                self.bump();
                Ok(Value::Bool(true))
            }
            TokenKind::Keyword("FALSE") => {
                self.bump();
                Ok(Value::Bool(false))
            }
            TokenKind::Keyword("DATE") => {
                self.bump();
                self.date_literal()
            }
            TokenKind::Symbol("-") => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Number { text, float } => {
                        self.bump();
                        self.number_value(&text, float, true, span)
                    }
                    other => Err(SqlError::parse(
                        format!("expected number after `-`, found {other}"),
                        span,
                    )),
                }
            }
            TokenKind::Number { text, float } => {
                self.bump();
                self.number_value(&text, float, false, span)
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Value::str(s))
            }
            other => Err(SqlError::parse(
                format!("expected literal, found {other}"),
                span,
            )),
        }
    }
}
