//! View matching: rewrite an ad-hoc query to scan a registered materialized
//! view when the view's plan **subsumes** the query.
//!
//! The matcher normalizes both the query and each view definition into
//!
//! ```text
//!   π[items]( σ[c1 ∧ … ∧ ck]( core ) )
//! ```
//!
//! by peeling Select/Project operators off the root and substituting
//! projection renames/computations into everything peeled above them, so
//! `items` and every conjunct are expressed over the *core* subtree's
//! columns. A view `π[V](σ[Q](X))` answers a query `π[S](σ[P](X))` when
//!
//! 1. the cores are structurally identical plans (`Plan: PartialEq`),
//! 2. every view conjunct in `Q` is either structurally present in `P` or
//!    implied by `P`'s literal equality bindings (degenerate FDs `col → val`
//!    const-folded through three-valued logic), and
//! 3. the compensation — the residual predicates `P ∖ Q` and the output
//!    items `S` — can be re-expressed over the view's output columns.
//!
//! Both σ and π compensation are per-row and bag-preserving, so a match is
//! sound under the engine's bag semantics with no key reasoning; the view's
//! output schema and key (used for the final schema sanity gate and the
//! EXPLAIN annotation) come from `gpivot_analyze::derive_facts`. Compensation
//! through aggregates, joins, or pivots is *not* attempted — see DESIGN.md
//! §4e for why (it would need the paper's rollup machinery).

use gpivot_algebra::{CmpOp, Expr, Plan, SchemaProvider};
use gpivot_analyze::derive_facts;
use gpivot_storage::{SchemaRef, Value};
use std::collections::BTreeMap;

/// A successful match: execute `plan` (which scans `view` as a table)
/// instead of the original query.
#[derive(Debug, Clone)]
pub struct RewriteHit {
    /// Name of the matched view; `plan` contains `Scan { table: view }`.
    pub view: String,
    /// The compensated plan over the view's materialized table.
    pub plan: Plan,
    /// Residual predicates applied on top of the view (0 = exact predicate
    /// match).
    pub residual_predicates: usize,
    /// Whether a compensating projection was added.
    pub compensating_project: bool,
    /// The view output's inferred key, if the analyzer derived one.
    pub view_key: Option<Vec<String>>,
    /// The view's output schema (schema of its materialized table).
    pub view_schema: SchemaRef,
}

/// The σ/π normal form over an opaque core subtree.
struct Normalized<'a> {
    core: &'a Plan,
    /// Output items over core columns; `None` = the core's own output.
    items: Option<Vec<(Expr, String)>>,
    /// Conjuncts over core columns.
    conjuncts: Vec<Expr>,
}

/// Split a predicate into top-level conjuncts.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Substitute column references through a projection's item list; fails if
/// a referenced column is not produced by the projection.
fn substitute(e: &Expr, items: &[(Expr, String)]) -> Option<Expr> {
    match e {
        Expr::Col(c) => items
            .iter()
            .find(|(_, n)| n == c)
            .map(|(expr, _)| expr.clone()),
        Expr::Lit(_) => Some(e.clone()),
        Expr::Cmp(op, a, b) => Some(Expr::Cmp(
            *op,
            Box::new(substitute(a, items)?),
            Box::new(substitute(b, items)?),
        )),
        Expr::Bin(op, a, b) => Some(Expr::Bin(
            *op,
            Box::new(substitute(a, items)?),
            Box::new(substitute(b, items)?),
        )),
        Expr::And(a, b) => Some(Expr::And(
            Box::new(substitute(a, items)?),
            Box::new(substitute(b, items)?),
        )),
        Expr::Or(a, b) => Some(Expr::Or(
            Box::new(substitute(a, items)?),
            Box::new(substitute(b, items)?),
        )),
        Expr::Not(a) => Some(Expr::Not(Box::new(substitute(a, items)?))),
        Expr::IsNull(a) => Some(Expr::IsNull(Box::new(substitute(a, items)?))),
        Expr::InList(a, vs) => Some(Expr::InList(Box::new(substitute(a, items)?), vs.clone())),
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut bs = Vec::with_capacity(branches.len());
            for (c, v) in branches {
                bs.push((substitute(c, items)?, substitute(v, items)?));
            }
            Some(Expr::Case {
                branches: bs,
                otherwise: Box::new(substitute(otherwise, items)?),
            })
        }
    }
}

/// Peel root Select/Project operators into the σ/π normal form.
fn decompose(plan: &Plan) -> Normalized<'_> {
    let mut items: Option<Vec<(Expr, String)>> = None;
    let mut conjuncts: Vec<Expr> = Vec::new();
    let mut node = plan;
    loop {
        match node {
            Plan::Select { input, predicate } => {
                split_conjuncts(predicate, &mut conjuncts);
                node = input;
            }
            Plan::Project {
                input,
                items: pitems,
            } => {
                // Everything accumulated so far references this projection's
                // output names; rewrite it over the projection's input.
                let mut ok = true;
                let new_conjuncts: Vec<Expr> = conjuncts
                    .iter()
                    .map_while(|c| {
                        let s = substitute(c, pitems);
                        ok &= s.is_some();
                        s
                    })
                    .collect();
                let new_items = match &items {
                    None => Some(pitems.clone()),
                    Some(cur) => {
                        let mut out = Vec::with_capacity(cur.len());
                        for (e, n) in cur {
                            match substitute(e, pitems) {
                                Some(s) => out.push((s, n.clone())),
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        Some(out)
                    }
                };
                if !ok {
                    break;
                }
                conjuncts = new_conjuncts;
                items = new_items;
                node = input;
            }
            _ => break,
        }
    }
    Normalized {
        core: node,
        items,
        conjuncts,
    }
}

// ---- literal implication ---------------------------------------------------

/// `col = literal` bindings from a conjunct set (degenerate FDs).
fn equality_bindings(conjuncts: &[Expr]) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for c in conjuncts {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Col(col), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(col)) => {
                    out.entry(col.clone()).or_insert_with(|| v.clone());
                }
                _ => {}
            }
        }
    }
    out
}

/// Three-valued constant folding over an expression whose columns have all
/// been substituted with literals. `None` = unknown.
///
/// Comparisons go through [`Value::compare`] — the *same* total order the
/// executor's `BoundExpr::Cmp` evaluates — so a subsumption decision folded
/// here can never disagree with what the kernels would compute. (A previous
/// local re-implementation compared Int/Float via a raw `as f64` cast and
/// `partial_cmp`, which diverged from the executor on NaN, -0.0, and
/// integers beyond 2⁵³, silently matching views that do not contain the
/// query's rows.)
fn fold(e: &Expr) -> Option<bool> {
    match e {
        Expr::Lit(Value::Bool(b)) => Some(*b),
        Expr::Lit(Value::Null) => None,
        Expr::Cmp(op, a, b) => {
            let (Expr::Lit(va), Expr::Lit(vb)) = (a.as_ref(), b.as_ref()) else {
                return None;
            };
            // `compare` is three-valued: NULL operands yield None (unknown).
            let ord = va.compare(vb)?;
            Some(match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            })
        }
        Expr::And(a, b) => match (fold(a), fold(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Or(a, b) => match (fold(a), fold(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expr::Not(a) => fold(a).map(|b| !b),
        Expr::IsNull(a) => match a.as_ref() {
            Expr::Lit(v) => Some(matches!(v, Value::Null)),
            _ => None,
        },
        Expr::InList(a, vs) => {
            let Expr::Lit(v) = a.as_ref() else {
                return None;
            };
            if matches!(v, Value::Null) {
                return None;
            }
            // Mirror the executor's `vs.contains(&v)`: total `Value` equality.
            Some(vs.contains(v))
        }
        _ => None,
    }
}

/// Is the view conjunct `q` implied by the query's literal bindings?
fn implied_by_bindings(q: &Expr, bindings: &BTreeMap<String, Value>) -> bool {
    // Substitute every column; any unbound column defeats the implication.
    let items: Vec<(Expr, String)> = bindings
        .iter()
        .map(|(c, v)| (Expr::Lit(v.clone()), c.clone()))
        .collect();
    match substitute(q, &items) {
        Some(folded) => fold(&folded) == Some(true),
        None => false,
    }
}

// ---- compensation ----------------------------------------------------------

/// Re-express a core-level expression over the view's output columns:
/// whole-expression matches against view items win (so a view's computed
/// column satisfies the same computation in the query), then column-by-
/// column renames.
fn over_view(e: &Expr, view_items: Option<&[(Expr, String)]>) -> Option<Expr> {
    let Some(vitems) = view_items else {
        // View outputs the core's own columns: identity.
        return Some(e.clone());
    };
    if let Some((_, n)) = vitems.iter().find(|(ve, _)| ve == e) {
        return Some(Expr::col(n.clone()));
    }
    match e {
        Expr::Col(_) => None, // not exposed by the view
        Expr::Lit(_) => Some(e.clone()),
        Expr::Cmp(op, a, b) => Some(Expr::Cmp(
            *op,
            Box::new(over_view(a, view_items)?),
            Box::new(over_view(b, view_items)?),
        )),
        Expr::Bin(op, a, b) => Some(Expr::Bin(
            *op,
            Box::new(over_view(a, view_items)?),
            Box::new(over_view(b, view_items)?),
        )),
        Expr::And(a, b) => Some(Expr::And(
            Box::new(over_view(a, view_items)?),
            Box::new(over_view(b, view_items)?),
        )),
        Expr::Or(a, b) => Some(Expr::Or(
            Box::new(over_view(a, view_items)?),
            Box::new(over_view(b, view_items)?),
        )),
        Expr::Not(a) => Some(Expr::Not(Box::new(over_view(a, view_items)?))),
        Expr::IsNull(a) => Some(Expr::IsNull(Box::new(over_view(a, view_items)?))),
        Expr::InList(a, vs) => Some(Expr::InList(
            Box::new(over_view(a, view_items)?),
            vs.clone(),
        )),
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut bs = Vec::with_capacity(branches.len());
            for (c, v) in branches {
                bs.push((over_view(c, view_items)?, over_view(v, view_items)?));
            }
            Some(Expr::Case {
                branches: bs,
                otherwise: Box::new(over_view(otherwise, view_items)?),
            })
        }
    }
}

/// Try to rewrite `query` to read from one of `views` (name, definition).
/// `provider` supplies base-table schemas (for facts and the schema sanity
/// gate). Returns the best hit — fewest residual predicates, then no
/// compensating projection, then name order — or `None`.
pub fn rewrite<P: SchemaProvider>(
    query: &Plan,
    views: &[(String, Plan)],
    provider: &P,
) -> Option<RewriteHit> {
    let qn = decompose(query);
    let query_schema = query.schema(provider).ok()?;
    let mut best: Option<RewriteHit> = None;
    for (name, def) in views {
        let Some(hit) = try_match(&qn, name, def, provider, &query_schema) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some(b) => {
                (hit.residual_predicates, hit.compensating_project, &hit.view)
                    < (b.residual_predicates, b.compensating_project, &b.view)
            }
        };
        if better {
            best = Some(hit);
        }
    }
    best
}

fn try_match<P: SchemaProvider>(
    qn: &Normalized<'_>,
    name: &str,
    def: &Plan,
    provider: &P,
    query_schema: &SchemaRef,
) -> Option<RewriteHit> {
    let vn = decompose(def);
    if qn.core != vn.core {
        return None;
    }
    // Predicate containment: every view conjunct must be matched or implied.
    let bindings = equality_bindings(&qn.conjuncts);
    let mut absorbed = vec![false; qn.conjuncts.len()];
    for q in &vn.conjuncts {
        match qn.conjuncts.iter().position(|p| p == q) {
            Some(i) => absorbed[i] = true,
            None if implied_by_bindings(q, &bindings) => {}
            None => return None,
        }
    }
    let residual: Vec<&Expr> = qn
        .conjuncts
        .iter()
        .zip(&absorbed)
        .filter(|(_, a)| !**a)
        .map(|(c, _)| c)
        .collect();
    // The view's output schema and key, from the analyzer's fact lattice.
    let vfacts = derive_facts(def, provider);
    let view_schema = vfacts.schema.clone()?;
    let view_items = vn.items.as_deref();
    // Compensating predicates over the view's columns.
    let comp_preds: Option<Vec<Expr>> = residual.iter().map(|c| over_view(c, view_items)).collect();
    let comp_preds = comp_preds?;
    // Compensating projection over the view's columns.
    let comp_items: Option<Vec<(Expr, String)>> = match (&qn.items, view_items) {
        // Query and view both output the core directly.
        (None, None) => None,
        // Query wants the core's own output; the view renamed/projected it.
        // Re-derive the core schema and map each core column back.
        (None, Some(_)) => {
            let core_schema = qn.core.schema(provider).ok()?;
            let mut out = Vec::with_capacity(core_schema.arity());
            for i in 0..core_schema.arity() {
                let col = core_schema.field_at(i).name.clone();
                let e = over_view(&Expr::col(col.clone()), view_items)?;
                out.push((e, col));
            }
            // Pure identity (view kept names and order) needs no projection.
            if out.iter().all(|(e, n)| matches!(e, Expr::Col(c) if c == n))
                && view_schema.arity() == out.len()
            {
                None
            } else {
                Some(out)
            }
        }
        (Some(qitems), _) => {
            let mut out = Vec::with_capacity(qitems.len());
            for (e, n) in qitems {
                out.push((over_view(e, view_items)?, n.clone()));
            }
            Some(out)
        }
    };
    // Assemble: σ then π over the view scan.
    let mut plan = Plan::scan(name);
    let residual_predicates = comp_preds.len();
    if !comp_preds.is_empty() {
        plan = plan.select(Expr::conjunction(comp_preds));
    }
    let compensating_project = comp_items.is_some();
    if let Some(items) = comp_items {
        plan = plan.project(items);
    }
    // Schema sanity gate: the compensated plan, typed over the view's
    // schema, must reproduce the query's output schema exactly. Reject
    // (falling back to base-table execution) on any mismatch.
    let mut vp: BTreeMap<String, SchemaRef> = BTreeMap::new();
    vp.insert(name.to_string(), view_schema.clone());
    let comp_schema = plan.schema(&vp).ok()?;
    if comp_schema.arity() != query_schema.arity() {
        return None;
    }
    for i in 0..comp_schema.arity() {
        let a = comp_schema.field_at(i);
        let b = query_schema.field_at(i);
        if a.name != b.name || a.data_type != b.data_type {
            return None;
        }
    }
    Some(RewriteHit {
        view: name.to_string(),
        plan,
        residual_predicates,
        compensating_project,
        view_key: vfacts.key.clone(),
        view_schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{DataType, Schema};
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("region", DataType::Str),
                        ("amount", DataType::Float),
                    ],
                    &["id"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn views() -> Vec<(String, Plan)> {
        vec![
            ("all_rows".into(), Plan::scan("t")),
            (
                "east".into(),
                Plan::scan("t").select(Expr::col("region").eq(Expr::lit("east"))),
            ),
            (
                "slim".into(),
                Plan::scan("t").project(vec![
                    (Expr::col("id"), "key".into()),
                    (Expr::col("amount"), "amount".into()),
                ]),
            ),
        ]
    }

    #[test]
    fn exact_match_needs_no_compensation() {
        let q = Plan::scan("t");
        let hit = rewrite(&q, &views(), &provider()).unwrap();
        assert_eq!(hit.view, "all_rows");
        assert_eq!(hit.residual_predicates, 0);
        assert!(!hit.compensating_project);
        assert_eq!(hit.plan, Plan::scan("all_rows"));
    }

    #[test]
    fn conjunct_subset_leaves_residual() {
        let q = Plan::scan("t").select(
            Expr::col("region")
                .eq(Expr::lit("east"))
                .and(Expr::col("amount").gt(Expr::lit(10.0))),
        );
        let hit = rewrite(&q, &views(), &provider()).unwrap();
        // `east` absorbs one conjunct; `all_rows` would need both. Fewest
        // residual predicates wins.
        assert_eq!(hit.view, "east");
        assert_eq!(hit.residual_predicates, 1);
    }

    #[test]
    fn literal_binding_implies_view_predicate() {
        // Query pins region = 'east'; the view's σ[region = 'east'] is
        // implied even though we keep the query's own conjunct as residual.
        let q = Plan::scan("t").select(
            Expr::col("region")
                .eq(Expr::lit("east"))
                .and(Expr::col("region").is_null().not()),
        );
        let hit = rewrite(&q, &views(), &provider()).unwrap();
        assert_eq!(hit.view, "east");
    }

    #[test]
    fn projection_rename_is_compensated() {
        let q = Plan::scan("t").project(vec![(Expr::col("amount"), "amount".into())]);
        let hit = rewrite(&q, &views(), &provider()).unwrap();
        // Both `all_rows` and `slim` subsume; tie on residuals+projection
        // resolves by name order.
        assert_eq!(hit.view, "all_rows");
        assert!(hit.compensating_project);
        // Against `slim` only, the rename key→id is exercised:
        let slim_only: Vec<(String, Plan)> =
            views().into_iter().filter(|(n, _)| n == "slim").collect();
        let hit = rewrite(&q, &slim_only, &provider()).unwrap();
        assert_eq!(hit.view, "slim");
        assert_eq!(
            hit.plan,
            Plan::scan("slim").project(vec![(Expr::col("amount"), "amount".into())])
        );
    }

    #[test]
    fn view_predicate_not_in_query_rejects() {
        let q = Plan::scan("t").select(Expr::col("amount").gt(Expr::lit(10.0)));
        let east_only: Vec<(String, Plan)> =
            views().into_iter().filter(|(n, _)| n == "east").collect();
        assert!(rewrite(&q, &east_only, &provider()).is_none());
    }

    #[test]
    fn large_int_literal_does_not_falsely_imply_float_view_predicate() {
        // Pre-fix, the rewriter compared Int(2^53 + 1) to Float(2^53) by
        // casting the int through f64 — which rounds to exactly 2^53 — and
        // folded the implication to true, serving the query from a view
        // that does not contain its rows.
        let p53 = 1i64 << 53;
        let views = vec![(
            "big_eq".to_string(),
            Plan::scan("t").select(Expr::col("amount").eq(Expr::lit(p53 as f64))),
        )];
        let q = Plan::scan("t").select(Expr::col("amount").eq(Expr::lit(p53 + 1)));
        assert!(
            rewrite(&q, &views, &provider()).is_none(),
            "Int(2^53+1) must not imply amount = Float(2^53)"
        );
        // The exactly-representable neighbour is genuinely implied:
        // Int(2^53) == Float(2^53) under the executor's order.
        let q = Plan::scan("t").select(Expr::col("amount").eq(Expr::lit(p53)));
        assert_eq!(rewrite(&q, &views, &provider()).unwrap().view, "big_eq");
    }

    #[test]
    fn nan_binding_folds_like_the_executor_total_order() {
        // The executor evaluates comparisons with Value::compare, under
        // which NaN normalizes above every finite float — so rows with
        // amount = NaN *do* satisfy σ[amount > 0.0]. Pre-fix the rewriter
        // folded NaN comparisons through partial_cmp (unknown) and missed
        // this valid rewrite.
        let views = vec![(
            "pos".to_string(),
            Plan::scan("t").select(Expr::col("amount").gt(Expr::lit(0.0))),
        )];
        let q = Plan::scan("t").select(Expr::col("amount").eq(Expr::lit(f64::NAN)));
        let hit = rewrite(&q, &views, &provider()).unwrap();
        assert_eq!(hit.view, "pos");
    }

    #[test]
    fn negative_zero_binding_agrees_with_normalized_order() {
        // -0.0 == 0.0 under the executor's normalized total order: a
        // -0.0 binding satisfies σ[amount >= 0.0] but not σ[amount < 0.0].
        let q = Plan::scan("t").select(Expr::col("amount").eq(Expr::lit(-0.0)));
        let ge = vec![(
            "ge0".to_string(),
            Plan::scan("t").select(Expr::col("amount").ge(Expr::lit(0.0))),
        )];
        assert_eq!(rewrite(&q, &ge, &provider()).unwrap().view, "ge0");
        let lt = vec![(
            "lt0".to_string(),
            Plan::scan("t").select(Expr::col("amount").lt(Expr::lit(0.0))),
        )];
        assert!(rewrite(&q, &lt, &provider()).is_none());
    }

    #[test]
    fn dropped_column_rejects() {
        // `slim` lost `region`; a query needing it cannot be served.
        let q = Plan::scan("t").project(vec![(Expr::col("region"), "region".into())]);
        let slim_only: Vec<(String, Plan)> =
            views().into_iter().filter(|(n, _)| n == "slim").collect();
        assert!(rewrite(&q, &slim_only, &provider()).is_none());
    }
}
