//! # gpivot-sql
//!
//! The SQL frontend for the gpivot engine: a hand-written lexer and
//! recursive-descent parser for the paper's §7.1 dialect (SELECT / FROM /
//! WHERE / GROUP BY / joins including LEFT OUTER JOIN, plus the native
//! `GPIVOT` / `GUNPIVOT` clauses, `CREATE MATERIALIZED VIEW`, and
//! `EXPLAIN`), a **view-matching rewriter** that serves ad-hoc queries from
//! registered materialized pivot views, and the [`GpivotService`] serve
//! entry point that wires both into [`gpivot_serve::ViewService`].
//!
//! The dialect is the parse-side inverse of
//! [`gpivot_algebra::Plan::to_sql_dialect`]: for any plan `p`,
//! `parse_query(p.to_sql_dialect())` reconstructs `p` exactly, and the
//! rendered text is a fixed point of parse∘render (property-tested in
//! `tests/roundtrip.rs`). Parse errors carry 1-based line/column
//! [`Span`]s and never panic, on any input (fuzzed in `tests/fuzz.rs`).
//!
//! ```
//! use gpivot_sql::parse_query;
//!
//! let plan = parse_query(
//!     "SELECT * FROM sales \
//!      GPIVOT (amount BY region IN (('east'), ('west'))) \
//!      WHERE \"east**amount\" IS NOT NULL",
//! )
//! .unwrap();
//! assert_eq!(parse_query(&plan.to_sql_dialect()).unwrap(), plan);
//! ```
//!
//! See DESIGN.md §4e for the grammar (EBNF) and the subsumption rules the
//! rewriter proves before answering a query from a view.

mod error;
mod lexer;
mod parser;
mod rewrite;
mod service;

pub use error::{Result, SqlError};
pub use gpivot_serve::RecoveryReport;
pub use lexer::{tokenize, Span, Token, TokenKind};
pub use parser::{parse_query, parse_statement, Statement};
pub use rewrite::{rewrite, RewriteHit};
pub use service::{GpivotService, SqlOutcome};
