//! The serve-layer entry point: one string in, one [`SqlOutcome`] out.
//!
//! [`GpivotService`] wraps a [`gpivot_serve::ShardedService`] (which is a
//! transparent passthrough to one [`gpivot_serve::ViewService`] when
//! configured with a single shard) and routes parsed statements:
//!
//! * `CREATE MATERIALIZED VIEW` → [`ShardedService::register_view`] (which
//!   runs the plan-lint gate, picks a maintenance [`Strategy`], and — on a
//!   sharded service — places the view shard-wise when the analyzer proves
//!   it shard-safe),
//! * `SELECT` → view-matching rewrite ([`crate::rewrite`]) then execution on
//!   the parallel [`gpivot_exec::Executor`] — against the matched view's materialized
//!   table when a view subsumes the query, against the base tables
//!   otherwise,
//! * `EXPLAIN` → the rewritten plan's tree plus the analyzer's GP0xx
//!   findings and a `used view:` marker, without executing anything.
//!
//! Every `SELECT` bumps the serve metrics
//! (`gpivot_sql_rewrites_total{outcome="hit"|"miss"}`) and emits a
//! `rewrite.hit` / `rewrite.miss` tracing event; `EXPLAIN` is free.

use crate::error::{Result, SqlError};
use crate::parser::{parse_statement, Statement};
use crate::rewrite::rewrite;
use gpivot_algebra::Plan;
use gpivot_analyze::analyze;
use gpivot_core::Strategy;
use gpivot_exec::Overlay;
use gpivot_serve::{ServeConfig, ShardedService, ViewService};
use gpivot_storage::{Catalog, Table};
use std::fmt::Write as _;

/// What a successfully executed statement produced.
#[derive(Debug)]
pub enum SqlOutcome {
    /// A `CREATE MATERIALIZED VIEW` registered and materialized a view.
    ViewCreated {
        name: String,
        /// The maintenance strategy the planner chose for it.
        strategy: Strategy,
        /// GP0xx lint warnings recorded at registration (empty = clean).
        lint_warnings: Vec<String>,
    },
    /// A `SELECT` ran to completion.
    Rows {
        table: Table,
        /// The materialized view that answered the query, if the rewriter
        /// matched one; `None` = executed against the base tables.
        used_view: Option<String>,
    },
    /// An `EXPLAIN` rendered the (rewritten) plan without executing it.
    Explain { text: String },
}

/// A SQL-speaking facade over the view-maintenance service.
pub struct GpivotService {
    inner: ShardedService,
}

impl GpivotService {
    /// A service over `catalog` with default serve configuration
    /// (unsharded).
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, ServeConfig::default())
    }

    /// A service over `catalog` with explicit serve configuration. With
    /// `cfg.sharding` set to more than one shard, provably shard-safe
    /// views created through SQL are partitioned and refreshed
    /// shard-parallel; everything else lands on the root shard.
    pub fn with_config(catalog: Catalog, cfg: ServeConfig) -> Self {
        GpivotService {
            inner: ShardedService::new(catalog, cfg),
        }
    }

    /// Wrap an existing (possibly already-populated) [`ViewService`] as a
    /// single-shard service.
    pub fn from_service(service: ViewService) -> Self {
        GpivotService {
            inner: ShardedService::from_single(service),
        }
    }

    /// Wrap an existing [`ShardedService`].
    pub fn from_sharded(service: ShardedService) -> Self {
        GpivotService { inner: service }
    }

    /// Open (or create) a **durable** service rooted at `dir`.
    ///
    /// If `dir` holds a previous [`GpivotService::save`] (or a durable
    /// service's checkpoint + write-ahead log), the registered views, base
    /// tables, epoch counter, and pending ingest queue are all restored —
    /// view definitions are re-parsed from their persisted SQL via
    /// [`crate::parse_query`]. Otherwise the service bootstraps from
    /// `seed_catalog` and starts logging to `dir`. The returned
    /// [`gpivot_serve::RecoveryReport`] says which happened.
    ///
    /// Durability is single-shard: `cfg.sharding` is ignored here and the
    /// restored service runs unsharded (the checkpoint + WAL protocol has
    /// no cross-shard commit record).
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        seed_catalog: Catalog,
        cfg: ServeConfig,
    ) -> Result<(Self, gpivot_serve::RecoveryReport)> {
        let parse = |sql: &str| crate::parser::parse_query(sql).map_err(|e| e.to_string());
        let (inner, report) = ViewService::open(dir, seed_catalog, cfg, &parse)
            .map_err(|e| SqlError::Engine(e.to_string()))?;
        Ok((Self::from_service(inner), report))
    }

    /// Persist a point-in-time snapshot of the full service state to `dir`
    /// (views, base tables, epoch, pending queue), replacing any previous
    /// gpivot files there. [`GpivotService::open`] on the same directory
    /// restores it exactly. Returns the checkpoint size in bytes. Backs
    /// the SQL REPL's `:save` / `:open` meta-commands.
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> Result<u64> {
        self.inner
            .save_to(dir)
            .map_err(|e| SqlError::Engine(e.to_string()))
    }

    /// The wrapped service — ingestion, refresh epochs, and metrics live
    /// there.
    pub fn service(&self) -> &ShardedService {
        &self.inner
    }

    /// Parse and execute one statement.
    pub fn execute_sql(&self, sql: &str) -> Result<SqlOutcome> {
        match parse_statement(sql)? {
            Statement::CreateView { name, definition } => self.create_view(name, definition),
            Statement::Select(plan) => self.run_select(plan),
            Statement::Explain(inner) => Ok(SqlOutcome::Explain {
                text: self.explain(&inner)?,
            }),
        }
    }

    fn create_view(&self, name: String, definition: Plan) -> Result<SqlOutcome> {
        let strategy = self
            .inner
            .register_view(name.clone(), definition)
            .map_err(|e| SqlError::Engine(e.to_string()))?;
        self.inner.record_sql_registration();
        let lint_warnings = self
            .inner
            .metrics()
            .per_view
            .get(&name)
            .map(|v| v.lint_warnings.clone())
            .unwrap_or_default();
        Ok(SqlOutcome::ViewCreated {
            name,
            strategy,
            lint_warnings,
        })
    }

    /// The registered views as (name, definition) pairs, against a live
    /// snapshot.
    fn run_select(&self, plan: Plan) -> Result<SqlOutcome> {
        let engine = |e: gpivot_exec::ExecError| SqlError::Engine(e.to_string());
        let result = {
            let snapshot = self.inner.snapshot();
            let manager = snapshot.manager();
            let views = snapshot.view_definitions();
            match rewrite(&plan, &views, manager.catalog()) {
                Some(hit) => {
                    // The rewritten plan scans the view's *user-facing*
                    // contents, overlaid as a table shadowing the catalog.
                    let table = snapshot
                        .query_view(&hit.view)
                        .map_err(|e| SqlError::Engine(e.to_string()))?;
                    let overlay = Overlay::new(manager.catalog()).with(hit.view.clone(), table);
                    let rows = manager
                        .executor()
                        .run(&hit.plan, &overlay)
                        .map_err(engine)?;
                    (rows, Some(hit.view))
                }
                None => {
                    let rows = manager
                        .executor()
                        .run(&plan, manager.catalog())
                        .map_err(engine)?;
                    (rows, None)
                }
            }
        };
        let (table, used_view) = result;
        self.inner.record_sql_rewrite(used_view.as_deref());
        Ok(SqlOutcome::Rows { table, used_view })
    }

    fn explain(&self, stmt: &Statement) -> Result<String> {
        let mut out = String::new();
        match stmt {
            // The parser rejects nested EXPLAIN.
            Statement::Explain(inner) => return self.explain(inner),
            Statement::CreateView { name, definition } => {
                let snapshot = self.inner.snapshot();
                let catalog = snapshot.manager().catalog();
                let _ = writeln!(out, "create materialized view: {name}");
                let _ = writeln!(out, "plan:");
                push_indented(&mut out, &definition.explain());
                let report = analyze(definition, catalog);
                push_lint(&mut out, report.warnings().map(|d| d.to_string()));
            }
            Statement::Select(plan) => {
                let snapshot = self.inner.snapshot();
                let manager = snapshot.manager();
                let views = snapshot.view_definitions();
                let hit = rewrite(plan, &views, manager.catalog());
                match &hit {
                    Some(h) => {
                        let _ = write!(out, "rewrite: used view: {}", h.view);
                        let mut notes: Vec<String> = Vec::new();
                        if h.residual_predicates > 0 {
                            notes.push(format!(
                                "{} residual predicate{}",
                                h.residual_predicates,
                                if h.residual_predicates == 1 { "" } else { "s" }
                            ));
                        }
                        if h.compensating_project {
                            notes.push("compensating projection".to_string());
                        }
                        if notes.is_empty() {
                            out.push_str(" (exact match)");
                        } else {
                            let _ = write!(out, " ({})", notes.join(", "));
                        }
                        out.push('\n');
                        if let Some(key) = &h.view_key {
                            let _ = writeln!(out, "view key: [{}]", key.join(", "));
                        }
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "rewrite: no view matched; executing against base tables"
                        );
                    }
                }
                let _ = writeln!(out, "plan:");
                let executed = hit.as_ref().map(|h| &h.plan).unwrap_or(plan);
                push_indented(&mut out, &executed.explain());
                // Lint the *original* query over the base catalog, plus the
                // matched view's stored registration-time warnings.
                let report = analyze(plan, manager.catalog());
                let mut lints: Vec<String> = report.warnings().map(|d| d.to_string()).collect();
                if let Some(h) = &hit {
                    for w in snapshot.view_lint_warnings(&h.view) {
                        lints.push(format!("{} (from view {})", w, h.view));
                    }
                }
                push_lint(&mut out, lints.into_iter());
            }
        }
        Ok(out)
    }
}

fn push_indented(out: &mut String, block: &str) {
    for line in block.lines() {
        let _ = writeln!(out, "  {line}");
    }
}

fn push_lint(out: &mut String, warnings: impl Iterator<Item = String>) {
    let _ = writeln!(out, "lint:");
    let mut any = false;
    for w in warnings {
        any = true;
        let _ = writeln!(out, "  {w}");
    }
    if !any {
        out.push_str("  (clean)\n");
    }
}
