//! Hand-written lexer for the §7.1 dialect.
//!
//! Produces a flat token stream with 1-based line/column [`Span`]s so parse
//! errors can point at their source position. The lexer never panics on any
//! input byte sequence (fuzzed in `tests/fuzz.rs`); malformed input comes
//! back as [`SqlError::Parse`].

use crate::error::{Result, SqlError};
use std::fmt;

/// A 1-based source position (line, column in characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved keyword, canonical uppercase spelling from
    /// [`gpivot_algebra::sql::RESERVED`].
    Keyword(&'static str),
    /// A bare or `"quoted"` identifier (unescaped; case preserved).
    Ident(String),
    /// A `'quoted'` string literal (unescaped).
    Str(String),
    /// A numeric literal, kept as source text; `float` records whether it
    /// contained a `.` or an exponent. Sign handling (and `i64` range
    /// checking) happens in the parser so `-9223372036854775808` lexes.
    Number { text: String, float: bool },
    /// A punctuation/operator token: one of `( ) , . ; * + - / = <> < <= > >=`.
    /// `!=` is normalized to `<>`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "identifier `{i}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Number { text, .. } => write!(f, "number `{text}`"),
            TokenKind::Symbol(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Look up the canonical spelling of a reserved keyword, if `word` is one.
fn keyword(word: &str) -> Option<&'static str> {
    gpivot_algebra::sql::RESERVED
        .iter()
        .find(|k| k.eq_ignore_ascii_case(word))
        .copied()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Consume a run of chars while `pred` holds, appending to `out`.
    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }

    /// Lex a `'...'`-delimited string or `"..."`-delimited identifier; the
    /// opening quote is already consumed. Doubling the quote escapes it.
    fn quoted(&mut self, quote: char, start: Span) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    let what = if quote == '\'' {
                        "string literal"
                    } else {
                        "quoted identifier"
                    };
                    return Err(SqlError::parse(format!("unterminated {what}"), start));
                }
                Some(c) if c == quote => {
                    if self.peek() == Some(quote) {
                        self.bump();
                        out.push(quote);
                    } else {
                        return Ok(out);
                    }
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self, first: char, start: Span) -> Result<TokenKind> {
        let mut text = String::from(first);
        let mut float = false;
        self.take_while(&mut text, |c| c.is_ascii_digit());
        if self.peek() == Some('.') {
            float = true;
            text.push('.');
            self.bump();
            self.take_while(&mut text, |c| c.is_ascii_digit());
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            float = true;
            text.push('e');
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                // `peek` returned Some, so `bump` yields the same char.
                if let Some(sign) = self.bump() {
                    text.push(sign);
                }
            }
            let before = text.len();
            self.take_while(&mut text, |c| c.is_ascii_digit());
            if text.len() == before {
                return Err(SqlError::parse(
                    format!("malformed number `{text}`: exponent has no digits"),
                    start,
                ));
            }
        }
        Ok(TokenKind::Number { text, float })
    }
}

/// Lex `src` into a token vector ending with [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut lx = Lexer::new(src);
    let mut tokens = Vec::new();
    loop {
        // Skip whitespace and `--` line comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('-') => {
                    // Only a comment if followed by another '-'; otherwise
                    // leave it for the symbol arm.
                    let mut probe = lx.chars.clone();
                    probe.next();
                    if probe.peek() == Some(&'-') {
                        while let Some(c) = lx.peek() {
                            if c == '\n' {
                                break;
                            }
                            lx.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let span = lx.span();
        let Some(c) = lx.bump() else {
            tokens.push(Token {
                kind: TokenKind::Eof,
                span,
            });
            return Ok(tokens);
        };
        let kind = match c {
            '\'' => TokenKind::Str(lx.quoted('\'', span)?),
            '"' => TokenKind::Ident(lx.quoted('"', span)?),
            '(' => TokenKind::Symbol("("),
            ')' => TokenKind::Symbol(")"),
            ',' => TokenKind::Symbol(","),
            '.' => TokenKind::Symbol("."),
            ';' => TokenKind::Symbol(";"),
            '*' => TokenKind::Symbol("*"),
            '+' => TokenKind::Symbol("+"),
            '-' => TokenKind::Symbol("-"),
            '/' => TokenKind::Symbol("/"),
            '=' => TokenKind::Symbol("="),
            '<' => match lx.peek() {
                Some('=') => {
                    lx.bump();
                    TokenKind::Symbol("<=")
                }
                Some('>') => {
                    lx.bump();
                    TokenKind::Symbol("<>")
                }
                _ => TokenKind::Symbol("<"),
            },
            '>' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    TokenKind::Symbol(">=")
                } else {
                    TokenKind::Symbol(">")
                }
            }
            '!' => {
                if lx.peek() == Some('=') {
                    lx.bump();
                    TokenKind::Symbol("<>")
                } else {
                    return Err(SqlError::parse("unexpected character `!`", span));
                }
            }
            c if c.is_ascii_digit() => lx.number(c, span)?,
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::from(c);
                lx.take_while(&mut word, |c| c.is_ascii_alphanumeric() || c == '_');
                match keyword(&word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word),
                }
            }
            other => {
                return Err(SqlError::parse(
                    format!("unexpected character `{other}`"),
                    span,
                ))
            }
        };
        tokens.push(Token { kind, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive_and_canonical() {
        let toks = tokenize("select Select SELECT gpivot").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Keyword("SELECT"));
        assert_eq!(toks[1].kind, TokenKind::Keyword("SELECT"));
        assert_eq!(toks[2].kind, TokenKind::Keyword("SELECT"));
        assert_eq!(toks[3].kind, TokenKind::Keyword("GPIVOT"));
    }

    #[test]
    fn spans_are_one_based_lines_and_columns() {
        let toks = tokenize("SELECT *\nFROM t").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 1, col: 8 });
        assert_eq!(toks[2].span, Span { line: 2, col: 1 });
        assert_eq!(toks[3].span, Span { line: 2, col: 6 });
    }

    #[test]
    fn strings_and_quoted_idents_unescape_doubles() {
        let toks = tokenize(r#"'O''Hara' "we""ird""#).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("O'Hara".into()));
        assert_eq!(toks[1].kind, TokenKind::Ident("we\"ird".into()));
    }

    #[test]
    fn numbers_keep_text_and_float_flag() {
        let toks = tokenize("42 30000.0 1e300 2.5e-3").unwrap();
        assert_eq!(
            toks[0].kind,
            TokenKind::Number {
                text: "42".into(),
                float: false
            }
        );
        assert!(matches!(
            &toks[1].kind,
            TokenKind::Number { float: true, .. }
        ));
        assert!(matches!(
            &toks[2].kind,
            TokenKind::Number { float: true, .. }
        ));
        assert!(matches!(
            &toks[3].kind,
            TokenKind::Number { float: true, .. }
        ));
    }

    #[test]
    fn comments_and_bang_equals() {
        let toks = tokenize("a -- comment\n != b").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("a".into()));
        assert_eq!(toks[1].kind, TokenKind::Symbol("<>"));
        assert_eq!(toks[2].kind, TokenKind::Ident("b".into()));
    }

    #[test]
    fn unterminated_string_reports_start_span() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert_eq!(err.span(), Some(Span { line: 1, col: 8 }));
    }
}
