//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset this workspace uses — `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], uniform [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — backed by
//! a SplitMix64 generator. Deterministic per seed; the streams differ from
//! the real crate's, so generated data differs in content (not shape).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform `u64` source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..50).any(|_| rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "20 elements almost surely move");
    }
}
