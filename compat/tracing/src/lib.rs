//! # tracing (offline stand-in)
//!
//! A dependency-free subset of span/event tracing for this workspace: RAII
//! [`Span`]s with wall-clock timing, named [`event`]s, and pluggable
//! [`Collector`]s. Unlike the real `tracing` crate there are no levels,
//! no structured fields, and no `Subscriber` registry — a collector is
//! either installed **globally** ([`set_global_collector`], for binaries)
//! or **scoped to the current thread** ([`with_collector`] /
//! [`push_collector`], for libraries and tests that must stay isolated
//! from each other, e.g. parallel `cargo test` threads).
//!
//! Resolution order: innermost scoped collector first, then the global
//! one. With no collector installed, spans cost one thread-local read and
//! never call `Instant::now` — the instrumented hot paths stay free.
//!
//! The built-in [`TimingSubscriber`] is a thread-safe collector that folds
//! every closed span into a per-name [`Histogram`] (p50/p95/max over
//! wall-clock time) and counts events by name — the backing store for the
//! serve layer's phase/operator timing metrics.

mod histogram;

pub use histogram::{Histogram, NBUCKETS};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Receives closed spans and events. Implementations must be thread-safe:
/// one collector instance may receive spans from many threads at once.
pub trait Collector: Send + Sync + 'static {
    /// A span finished: `name` is its static label, `depth` how many
    /// enclosing spans were open *on the same thread* when it started
    /// (0 = top level), `elapsed` its wall-clock duration.
    fn span_closed(&self, name: &'static str, depth: usize, elapsed: Duration);

    /// A point event fired inside the current span context.
    fn event(&self, name: &'static str, message: &str) {
        let _ = (name, message);
    }
}

thread_local! {
    /// Innermost-last stack of scoped collectors for this thread.
    static SCOPED: RefCell<Vec<Arc<dyn Collector>>> = const { RefCell::new(Vec::new()) };
    /// Open-span nesting depth on this thread (only maintained while a
    /// collector is installed).
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

static GLOBAL: OnceLock<Arc<dyn Collector>> = OnceLock::new();

/// Install a process-wide fallback collector. Returns `false` if one was
/// already installed (the first installation wins, like `tracing`'s global
/// default dispatcher).
pub fn set_global_collector(c: Arc<dyn Collector>) -> bool {
    GLOBAL.set(c).is_ok()
}

/// The collector spans on this thread should report to, if any.
fn current() -> Option<Arc<dyn Collector>> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    scoped.or_else(|| GLOBAL.get().cloned())
}

/// The collector the current thread would report to, if any — scoped
/// first, then global. Lets a caller that fans work out to worker threads
/// capture the collector here and re-install it (via [`push_collector`])
/// on each worker, so spans closed off-thread still land in the same
/// store.
pub fn current_collector() -> Option<Arc<dyn Collector>> {
    current()
}

/// Report a pre-measured duration as a closed span named `name` at the
/// current thread's nesting depth (no-op without a collector). For callers
/// that compute a span's duration themselves — e.g. a parallel operator
/// reporting max-of-partitions as its self-time — instead of timing an
/// enclosing scope.
pub fn record(name: &'static str, elapsed: Duration) {
    if let Some(c) = current() {
        let depth = DEPTH.with(|d| d.get());
        c.span_closed(name, depth, elapsed);
    }
}

/// Make `c` the current thread's collector until the returned guard drops.
/// Guards nest (innermost wins) and must drop in reverse creation order,
/// which scope-based usage guarantees.
pub fn push_collector(c: Arc<dyn Collector>) -> CollectorGuard {
    SCOPED.with(|s| s.borrow_mut().push(c));
    CollectorGuard {
        _not_send: PhantomData,
    }
}

/// Run `f` with `c` as the current thread's collector.
pub fn with_collector<R>(c: Arc<dyn Collector>, f: impl FnOnce() -> R) -> R {
    let _guard = push_collector(c);
    f()
}

/// Scope guard returned by [`push_collector`].
#[must_use = "dropping the guard immediately uninstalls the collector"]
pub struct CollectorGuard {
    // Thread-local bookkeeping: the guard must drop on the thread that
    // created it.
    _not_send: PhantomData<*const ()>,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Start a span. The span only begins timing when [`Span::enter`] is
/// called; a never-entered span reports nothing.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        collector: current(),
    }
}

/// A named unit of timed work. Cheap to create when no collector is
/// installed (no clock read, nothing reported on drop).
pub struct Span {
    name: &'static str,
    collector: Option<Arc<dyn Collector>>,
}

impl Span {
    /// Enter the span, returning the RAII guard that reports the span's
    /// wall-clock duration to the collector when dropped.
    pub fn enter(self) -> Entered {
        let timing = self.collector.map(|c| {
            let depth = DEPTH.with(|d| {
                let depth = d.get();
                d.set(depth + 1);
                depth
            });
            (c, depth, Instant::now())
        });
        Entered {
            name: self.name,
            timing,
            _not_send: PhantomData,
        }
    }
}

/// An entered span; closes (and reports) on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Entered {
    name: &'static str,
    timing: Option<(Arc<dyn Collector>, usize, Instant)>,
    // Depth bookkeeping is thread-local: the guard must not cross threads.
    _not_send: PhantomData<*const ()>,
}

impl Drop for Entered {
    fn drop(&mut self) {
        if let Some((collector, depth, start)) = self.timing.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            collector.span_closed(self.name, depth, start.elapsed());
        }
    }
}

/// Fire a point event at the current collector (no-op without one).
pub fn event(name: &'static str, message: &str) {
    if let Some(c) = current() {
        c.event(name, message);
    }
}

/// A thread-safe [`Collector`] that aggregates span durations into one
/// [`Histogram`] per span name and counts events per event name.
#[derive(Debug, Default)]
pub struct TimingSubscriber {
    spans: Mutex<BTreeMap<&'static str, Histogram>>,
    events: Mutex<BTreeMap<&'static str, u64>>,
}

impl TimingSubscriber {
    /// An empty subscriber.
    pub fn new() -> Self {
        TimingSubscriber::default()
    }

    /// An empty subscriber, ready to be installed as a collector.
    pub fn shared() -> Arc<Self> {
        Arc::new(TimingSubscriber::new())
    }

    /// Record a duration directly, without going through a span — for
    /// callers that already measured an interval and want it in the same
    /// histogram store (e.g. an epoch's end-to-end wall clock).
    pub fn record(&self, name: &'static str, elapsed: Duration) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name)
            .or_default()
            .record(elapsed);
    }

    /// Snapshot of one span name's histogram, if any span closed under it.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Snapshot of every histogram, keyed by span name.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// How many events fired under `name`.
    pub fn event_count(&self, name: &str) -> u64 {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of every event counter, keyed by event name.
    pub fn event_counts(&self) -> BTreeMap<String, u64> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Drop all collected data.
    pub fn reset(&self) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl Collector for TimingSubscriber {
    fn span_closed(&self, name: &'static str, _depth: usize, elapsed: Duration) {
        self.record(name, elapsed);
    }

    fn event(&self, name: &'static str, _message: &str) {
        *self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name)
            .or_default() += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector recording (name, depth) close order for nesting tests.
    #[derive(Default)]
    struct Recorder {
        closed: Mutex<Vec<(&'static str, usize, Duration)>>,
    }

    impl Collector for Recorder {
        fn span_closed(&self, name: &'static str, depth: usize, elapsed: Duration) {
            self.closed.lock().unwrap().push((name, depth, elapsed));
        }
    }

    #[test]
    fn spans_without_collector_are_free_noops() {
        let _e = span("nobody.listens").enter();
        event("nobody.listens.event", "dropped");
        // Depth bookkeeping untouched.
        DEPTH.with(|d| assert_eq!(d.get(), 0));
    }

    #[test]
    fn span_nesting_reports_depths_and_innermost_closes_first() {
        let rec = Arc::new(Recorder::default());
        with_collector(rec.clone(), || {
            let _outer = span("outer").enter();
            {
                let _mid = span("mid").enter();
                let _inner = span("inner").enter();
            }
            let _sibling = span("sibling").enter();
        });
        let closed = rec.closed.lock().unwrap();
        let order: Vec<(&str, usize)> = closed.iter().map(|(n, d, _)| (*n, *d)).collect();
        assert_eq!(
            order,
            vec![("inner", 2), ("mid", 1), ("sibling", 1), ("outer", 0)]
        );
        // After the scope, depth is back to zero.
        DEPTH.with(|d| assert_eq!(d.get(), 0));
    }

    #[test]
    fn timing_is_monotone_outer_covers_inner() {
        let rec = Arc::new(Recorder::default());
        with_collector(rec.clone(), || {
            let _outer = span("outer").enter();
            let _inner = span("inner").enter();
            std::thread::sleep(Duration::from_millis(2));
        });
        let closed = rec.closed.lock().unwrap();
        let inner = closed.iter().find(|(n, _, _)| *n == "inner").unwrap().2;
        let outer = closed.iter().find(|(n, _, _)| *n == "outer").unwrap().2;
        assert!(inner >= Duration::from_millis(2));
        assert!(outer >= inner, "outer {outer:?} must cover inner {inner:?}");
    }

    #[test]
    fn scoped_collectors_isolate_concurrent_threads() {
        // Two "epochs" on two worker threads, each with its own subscriber:
        // neither sees the other's spans — the property parallel tests and
        // parallel ViewService instances rely on.
        let subs: Vec<Arc<TimingSubscriber>> = (0..2).map(|_| TimingSubscriber::shared()).collect();
        std::thread::scope(|s| {
            for (i, sub) in subs.iter().enumerate() {
                let sub = Arc::clone(sub);
                s.spawn(move || {
                    with_collector(sub, || {
                        for _ in 0..=i {
                            let _e = span("epoch").enter();
                        }
                    });
                });
            }
        });
        assert_eq!(subs[0].histogram("epoch").unwrap().count(), 1);
        assert_eq!(subs[1].histogram("epoch").unwrap().count(), 2);
    }

    #[test]
    fn one_subscriber_sums_across_worker_threads() {
        let sub = TimingSubscriber::shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sub = Arc::clone(&sub);
                s.spawn(move || {
                    with_collector(sub, || {
                        for _ in 0..25 {
                            let _e = span("view.attempt").enter();
                        }
                        event("view.retry", "worker retried");
                    });
                });
            }
        });
        let h = sub.histogram("view.attempt").unwrap();
        assert_eq!(h.count(), 100);
        assert!(h.max() >= h.p50());
        assert_eq!(sub.event_count("view.retry"), 4);
    }

    #[test]
    fn inner_scoped_collector_shadows_outer() {
        let outer = TimingSubscriber::shared();
        let inner = TimingSubscriber::shared();
        with_collector(outer.clone(), || {
            let _a = span("a").enter();
            with_collector(inner.clone(), || {
                let _b = span("b").enter();
            });
            let _c = span("c").enter();
        });
        assert!(outer.histogram("a").is_some());
        assert!(outer.histogram("c").is_some());
        assert!(outer.histogram("b").is_none());
        assert_eq!(inner.histogram("b").unwrap().count(), 1);
    }

    #[test]
    fn current_collector_hands_off_to_worker_threads() {
        let sub = TimingSubscriber::shared();
        with_collector(sub.clone(), || {
            // Free `record` reports at the current depth to the scoped
            // collector, exactly like a closed span.
            record("op.join", Duration::from_millis(3));
            let captured = current_collector().expect("scoped collector visible");
            std::thread::scope(|s| {
                s.spawn(move || {
                    // Worker thread: no collector until the handoff.
                    assert!(current_collector().is_none());
                    let _g = push_collector(captured);
                    record("op.join.partition", Duration::from_millis(1));
                });
            });
        });
        assert_eq!(sub.histogram("op.join").unwrap().count(), 1);
        assert_eq!(sub.histogram("op.join.partition").unwrap().count(), 1);
    }

    #[test]
    fn direct_record_shares_the_span_store() {
        let sub = TimingSubscriber::new();
        sub.record("epoch", Duration::from_millis(7));
        sub.record("epoch", Duration::from_millis(9));
        let h = sub.histogram("epoch").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.total(), Duration::from_millis(16));
        sub.reset();
        assert!(sub.histogram("epoch").is_none());
    }
}
