//! A fixed-layout log-scale duration histogram.
//!
//! Buckets are powers of two in nanoseconds: bucket `i` covers
//! `[2^i, 2^(i+1))` ns (bucket 0 additionally absorbs 0 and 1 ns), the last
//! bucket absorbs everything above `2^39` ns (~9 minutes). The layout is
//! identical for every histogram, so merging is element-wise addition and
//! snapshots are plain clones. Quantiles are bucket-resolution estimates:
//! `quantile(q)` returns the upper bound of the bucket holding the rank-`q`
//! sample, clamped to the true observed maximum — an estimate that is never
//! below the true quantile's bucket and never above the observed max.

use std::time::Duration;

/// Number of power-of-two buckets. `2^(NBUCKETS-1)` ns ≈ 9.2 minutes.
pub const NBUCKETS: usize = 40;

/// A mergeable log₂-bucket timing histogram with exact count/total/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; NBUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; NBUCKETS],
        }
    }
}

/// The bucket a sample of `ns` nanoseconds falls into.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(NBUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Fold another histogram into this one (same fixed layout).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn total(&self) -> Duration {
        duration_from_ns_u128(self.total_ns)
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Largest sample (exact, not bucket-rounded).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            duration_from_ns_u128(self.total_ns / u128::from(self.count))
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the bucket
    /// containing the sample of rank `ceil(q·count)`, clamped to the
    /// observed maximum. Zero if empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return Duration::from_nanos(upper.min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median estimate.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// Cumulative buckets as `(upper_bound, cumulative_count)` pairs,
    /// trimmed after the last non-empty bucket — the shape a
    /// Prometheus-style `_bucket{le=...}` exposition wants. Empty histograms
    /// yield no pairs.
    pub fn cumulative_buckets(&self) -> Vec<(Duration, u64)> {
        let last = match self.buckets.iter().rposition(|&b| b > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate().take(last + 1) {
            cum += b;
            out.push((Duration::from_nanos(1u64 << (i + 1)), cum));
        }
        out
    }
}

/// Saturating `u128`-nanosecond → `Duration` conversion.
fn duration_from_ns_u128(ns: u128) -> Duration {
    u64::try_from(ns)
        .map(Duration::from_nanos)
        .unwrap_or(Duration::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1 << 39), NBUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn exact_stats_and_quantile_bounds() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total(), Duration::from_nanos(101_000));
        assert_eq!(h.min(), Duration::from_nanos(100));
        assert_eq!(h.max(), Duration::from_nanos(100_000));
        assert_eq!(h.mean(), Duration::from_nanos(20_200));
        // p50 lands in the [256, 512) bucket → upper bound 512 ns.
        assert_eq!(h.p50(), Duration::from_nanos(512));
        // p95 is the outlier's bucket, clamped to the exact max.
        assert_eq!(h.p95(), Duration::from_nanos(100_000));
        // Quantile is never below the sample's bucket lower bound and never
        // above the max.
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) >= Duration::from_nanos(128));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record_ns(10);
        a.record_ns(1_000);
        let mut b = Histogram::new();
        b.record_ns(5);
        b.record_ns(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Duration::from_nanos(5));
        assert_eq!(a.max(), Duration::from_nanos(100_000));
        assert_eq!(a.total(), Duration::from_nanos(101_015));
    }

    #[test]
    fn cumulative_buckets_monotone_and_complete() {
        let mut h = Histogram::new();
        for ns in [3u64, 3, 70, 5_000] {
            h.record_ns(ns);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(buckets.last().unwrap().1, h.count());
    }
}
