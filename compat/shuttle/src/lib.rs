//! Offline stand-in for a `shuttle`-style deterministic schedule explorer.
//!
//! The real [shuttle](https://github.com/awslabs/shuttle) crate replaces
//! `std::sync` wholesale and intercepts every scheduling decision. This
//! vendored subset keeps the two capabilities the workspace actually uses,
//! with no dependencies and no runtime patching:
//!
//! 1. **Step-model exploration** ([`explore`]): a protocol under test is
//!    modelled as a handful of logical threads, each a short sequence of
//!    atomic steps over shared state. The explorer enumerates interleavings
//!    — exhaustively (DFS) when the space fits under a bound, by seeded
//!    random sampling otherwise — and replays the protocol under each one.
//!    A failing schedule prints a `SHUTTLE_SCHEDULE=…` reproducer string
//!    that replays exactly that interleaving.
//!
//! 2. **Cooperative token scheduling** ([`sched`]): real `std::thread`
//!    threads run one-at-a-time under a token passed by a seeded scheduler.
//!    Lock shims (see `gpivot-serve`'s `sync` module, feature `shuttle`)
//!    yield at every acquisition, turning lock-level interleavings of the
//!    *real* service code into a deterministic, seed-replayable space.
//!    Stalled runs (every live thread spinning on a `try_lock`) are
//!    reported as deadlocks instead of hanging the test suite.
//!
//! Differences from the real crate are documented in `compat/README.md`.

use std::fmt;

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64) — shared by both exploration modes.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform choice in `0..n` (n > 0) without modulo bias worth caring
    /// about at these magnitudes.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Step-model exploration
// ---------------------------------------------------------------------------

/// Bounds for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Exhaustive DFS is used when the exact interleaving count is at most
    /// this bound; above it the explorer falls back to seeded sampling.
    pub max_schedules: usize,
    /// Number of seeded-random schedules sampled when the space exceeds
    /// `max_schedules`.
    pub random_samples: usize,
    /// Seed for the sampling RNG (ignored in exhaustive mode).
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 20_000,
            random_samples: 2_000,
            seed: 0,
        }
    }
}

/// A schedule that violated the model's invariants.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failing interleaving: step i was taken by thread `schedule[i]`.
    pub schedule: Vec<usize>,
    /// The invariant-violation message returned by the model.
    pub message: String,
}

/// Outcome of one [`explore`] call.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Name of the protocol under test (used in reproducer strings).
    pub name: String,
    /// Number of schedules actually replayed.
    pub explored: usize,
    /// Exact size of the interleaving space (multinomial coefficient).
    pub total_space: u128,
    /// True when every schedule in the space was replayed.
    pub exhaustive: bool,
    /// First failing schedule, if any.
    pub failure: Option<Failure>,
}

impl ExploreReport {
    /// Panic with a reproducer string if any schedule failed. Tests call
    /// this after logging `explored`/`total_space`.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "shuttle[{}]: schedule failed after exploring {} of {} interleavings\n  \
                 invariant: {}\n  rerun with SHUTTLE_NAME={} SHUTTLE_SCHEDULE={}",
                self.name,
                self.explored,
                self.total_space,
                f.message,
                self.name,
                format_schedule(&f.schedule),
            );
        }
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shuttle[{}]: explored {}/{} schedules ({})",
            self.name,
            self.explored,
            self.total_space,
            if self.exhaustive {
                "exhaustive"
            } else {
                "seeded sample"
            }
        )
    }
}

/// Exact number of interleavings of threads with the given step counts:
/// the multinomial coefficient `(Σcounts)! / Π counts!`, saturating.
pub fn interleavings(counts: &[usize]) -> u128 {
    let mut total: u128 = 1;
    let mut placed: u128 = 0;
    for &c in counts {
        for i in 1..=c as u128 {
            placed += 1;
            total = match total.checked_mul(placed) {
                Some(t) => t / i, // divides exactly: running binomial product
                None => return u128::MAX,
            };
        }
    }
    total
}

/// Render a schedule as the comma-separated thread-index string used in
/// `SHUTTLE_SCHEDULE` reproducers.
pub fn format_schedule(schedule: &[usize]) -> String {
    let parts: Vec<String> = schedule.iter().map(|t| t.to_string()).collect();
    parts.join(",")
}

/// Parse a `SHUTTLE_SCHEDULE` reproducer string.
pub fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad schedule element {p:?}: {e}"))
        })
        .collect()
}

/// Explore interleavings of `counts.len()` logical threads, where thread
/// `t` performs `counts[t]` atomic steps. `run` receives a complete
/// schedule (a sequence of thread indices; thread `t` appears exactly
/// `counts[t]` times) and must rebuild fresh state, execute the steps in
/// that order, and return `Err(message)` on an invariant violation.
///
/// Exploration stops at the first failure; the report carries the failing
/// schedule and [`ExploreReport::assert_ok`] prints a
/// `SHUTTLE_NAME=… SHUTTLE_SCHEDULE=…` reproducer. When those environment
/// variables are set (and the name matches), only that one schedule runs.
pub fn explore<F>(name: &str, cfg: &ExploreConfig, counts: &[usize], mut run: F) -> ExploreReport
where
    F: FnMut(&[usize]) -> Result<(), String>,
{
    let total_space = interleavings(counts);

    // Reproducer override: replay exactly one pinned schedule.
    if let Ok(sched) = std::env::var("SHUTTLE_SCHEDULE") {
        let applies = match std::env::var("SHUTTLE_NAME") {
            Ok(n) => n == name,
            Err(_) => true,
        };
        if applies {
            let schedule = match parse_schedule(&sched) {
                Ok(s) => s,
                Err(e) => panic!("shuttle[{name}]: invalid SHUTTLE_SCHEDULE: {e}"),
            };
            let failure = run(&schedule).err().map(|message| Failure {
                schedule: schedule.clone(),
                message,
            });
            return ExploreReport {
                name: name.to_string(),
                explored: 1,
                total_space,
                exhaustive: false,
                failure,
            };
        }
    }

    let exhaustive = total_space <= cfg.max_schedules as u128;
    let mut explored = 0usize;
    let mut failure = None;

    if exhaustive {
        // Iterative DFS over prefixes: extend the current prefix with every
        // thread that still has steps left, in thread order.
        let total_steps: usize = counts.iter().sum();
        let mut remaining = counts.to_vec();
        let mut prefix: Vec<usize> = Vec::with_capacity(total_steps);
        // Each stack frame records the next thread index to try at that depth.
        let mut next_choice: Vec<usize> = vec![0];
        while let Some(choice) = next_choice.last_mut() {
            if prefix.len() == total_steps {
                explored += 1;
                if let Err(message) = run(&prefix) {
                    failure = Some(Failure {
                        schedule: prefix.clone(),
                        message,
                    });
                    break;
                }
                // Backtrack one step.
                next_choice.pop();
                if let Some(t) = prefix.pop() {
                    remaining[t] += 1;
                }
                continue;
            }
            let mut advanced = false;
            while *choice < counts.len() {
                let t = *choice;
                *choice += 1;
                if remaining[t] > 0 {
                    remaining[t] -= 1;
                    prefix.push(t);
                    next_choice.push(0);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Exhausted choices at this depth: backtrack.
                next_choice.pop();
                if let Some(t) = prefix.pop() {
                    remaining[t] += 1;
                }
            }
        }
    } else {
        let mut rng = SplitMix64::new(cfg.seed);
        let total_steps: usize = counts.iter().sum();
        for _ in 0..cfg.random_samples {
            let mut remaining = counts.to_vec();
            let mut schedule = Vec::with_capacity(total_steps);
            for _ in 0..total_steps {
                let live: Vec<usize> = (0..counts.len()).filter(|&t| remaining[t] > 0).collect();
                let t = live[rng.below(live.len())];
                remaining[t] -= 1;
                schedule.push(t);
            }
            explored += 1;
            if let Err(message) = run(&schedule) {
                failure = Some(Failure { schedule, message });
                break;
            }
        }
    }

    ExploreReport {
        name: name.to_string(),
        explored,
        total_space,
        exhaustive,
        failure,
    }
}

// ---------------------------------------------------------------------------
// Cooperative token scheduler over real threads
// ---------------------------------------------------------------------------

/// Token-passing scheduler for real threads. See the module docs: worker
/// closures run one at a time; `yield_now`/`blocked_yield` hand the token
/// to a seeded-random choice of live thread. Used by `gpivot-serve`'s
/// `sync` shims under the `shuttle` feature.
pub mod sched {
    use super::SplitMix64;
    use std::cell::RefCell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex};

    /// Options for one [`run`].
    #[derive(Clone, Debug)]
    pub struct RunOptions {
        /// Seed driving every scheduling choice; the reproducer for a
        /// failing run is the seed itself.
        pub seed: u64,
        /// Consecutive failed-acquisition yields (with no lock acquired
        /// anywhere) before the run is declared deadlocked.
        pub stall_limit: u64,
        /// Hard cap on total yields, against livelock in the model itself.
        pub yield_limit: u64,
    }

    impl Default for RunOptions {
        fn default() -> Self {
            RunOptions {
                seed: 0,
                stall_limit: 4_096,
                yield_limit: 10_000_000,
            }
        }
    }

    /// Statistics from a completed (non-deadlocked) run.
    #[derive(Clone, Copy, Debug)]
    pub struct RunReport {
        pub seed: u64,
        pub yields: u64,
    }

    struct State {
        current: usize,
        alive: Vec<bool>,
        rng: SplitMix64,
        yields: u64,
        stall: u64,
        stall_limit: u64,
        yield_limit: u64,
        dead: Option<&'static str>,
    }

    struct Inner {
        state: Mutex<State>,
        cv: Condvar,
    }

    impl Inner {
        fn pick_next(state: &mut State) {
            let live: Vec<usize> = (0..state.alive.len()).filter(|&t| state.alive[t]).collect();
            if !live.is_empty() {
                state.current = live[state.rng.below(live.len())];
            }
        }
    }

    thread_local! {
        static CTX: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
    }

    fn ctx() -> Option<(Arc<Inner>, usize)> {
        CTX.with(|c| c.borrow().clone())
    }

    /// True when the calling thread is a worker of an active [`run`].
    /// `gpivot-serve`'s lock shims consult this to decide between the
    /// normal blocking path and the try-lock/yield path.
    pub fn active() -> bool {
        ctx().is_some()
    }

    fn yield_inner(stalled: bool) {
        let Some((inner, me)) = ctx() else { return };
        let mut st = inner.state.lock().unwrap();
        st.yields += 1;
        if stalled {
            st.stall += 1;
        }
        if st.stall > st.stall_limit {
            st.dead = Some("deadlock: every live thread is spinning on a lock acquisition");
        } else if st.yields > st.yield_limit {
            st.dead = Some("livelock: yield limit exceeded");
        }
        Inner::pick_next(&mut st);
        inner.cv.notify_all();
        while st.current != me && st.dead.is_none() {
            st = inner.cv.wait(st).unwrap();
        }
        if let Some(why) = st.dead {
            let seed = report_seed(&st);
            drop(st);
            panic!("shuttle/sched: {why} — rerun with SHUTTLE_SEED={seed}");
        }
    }

    fn report_seed(_st: &State) -> u64 {
        // The seed is stored per-run; see `run`'s SEED thread-local.
        SEED.with(|s| *s.borrow())
    }

    thread_local! {
        static SEED: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Cooperative yield: hand the token to a seeded-random live thread.
    /// No-op outside a scheduled run.
    pub fn yield_now() {
        yield_inner(false);
    }

    /// Yield after a failed `try_lock`. Counts toward the stall limit so a
    /// cycle of mutually-blocked threads is reported as a deadlock.
    pub fn blocked_yield() {
        yield_inner(true);
    }

    /// Record a successful lock acquisition: resets the stall counter.
    pub fn progress() {
        if let Some((inner, _)) = ctx() {
            inner.state.lock().unwrap().stall = 0;
        }
    }

    fn wait_turn(inner: &Arc<Inner>, me: usize) {
        let mut st = inner.state.lock().unwrap();
        while st.current != me && st.dead.is_none() {
            st = inner.cv.wait(st).unwrap();
        }
        if let Some(why) = st.dead {
            let seed = report_seed(&st);
            drop(st);
            panic!("shuttle/sched: {why} — rerun with SHUTTLE_SEED={seed}");
        }
    }

    fn finish(inner: &Arc<Inner>, me: usize) {
        let mut st = inner.state.lock().unwrap();
        st.alive[me] = false;
        st.stall = 0; // a thread exiting is progress
        Inner::pick_next(&mut st);
        inner.cv.notify_all();
    }

    /// Run `fns` as real threads under the token scheduler. Deterministic
    /// for a given seed (modulo nondeterminism inside the closures
    /// themselves). Panics — with a `SHUTTLE_SEED=…` reproducer — if any
    /// worker panics or the run deadlocks.
    pub fn run<'a>(opts: &RunOptions, fns: Vec<Box<dyn FnOnce() + Send + 'a>>) -> RunReport {
        let n = fns.len();
        if n == 0 {
            return RunReport {
                seed: opts.seed,
                yields: 0,
            };
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                current: 0,
                alive: vec![true; n],
                rng: SplitMix64::new(opts.seed),
                yields: 0,
                stall: 0,
                stall_limit: opts.stall_limit,
                yield_limit: opts.yield_limit,
                dead: None,
            }),
            cv: Condvar::new(),
        });
        // First runner is a seeded choice too.
        {
            let mut st = inner.state.lock().unwrap();
            Inner::pick_next(&mut st);
        }
        let seed = opts.seed;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (i, f) in fns.into_iter().enumerate() {
                let inner = Arc::clone(&inner);
                handles.push(s.spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), i)));
                    SEED.with(|sd| *sd.borrow_mut() = seed);
                    wait_turn(&inner, i);
                    let r = catch_unwind(AssertUnwindSafe(f));
                    finish(&inner, i);
                    CTX.with(|c| *c.borrow_mut() = None);
                    if let Err(p) = r {
                        resume_unwind(p);
                    }
                }));
            }
            let mut first_panic = None;
            for h in handles {
                if let Err(p) = h.join() {
                    first_panic.get_or_insert(p);
                }
            }
            if let Some(p) = first_panic {
                eprintln!("shuttle/sched: failing run — rerun with SHUTTLE_SEED={seed}");
                resume_unwind(p);
            }
        });
        let st = inner.state.lock().unwrap();
        RunReport {
            seed,
            yields: st.yields,
        }
    }

    /// Seeds to drive a seed-sweep test: `SHUTTLE_SEED` pins a single seed
    /// (the reproducer path); otherwise `default` is used.
    pub fn seeds(default: std::ops::Range<u64>) -> Vec<u64> {
        match std::env::var("SHUTTLE_SEED") {
            Ok(v) => match v.parse::<u64>() {
                Ok(s) => vec![s],
                Err(e) => panic!("shuttle/sched: invalid SHUTTLE_SEED {v:?}: {e}"),
            },
            Err(_) => default.collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, TryLockError};

    #[test]
    fn interleaving_counts_are_multinomial() {
        assert_eq!(interleavings(&[1, 1]), 2);
        assert_eq!(interleavings(&[2, 2]), 6);
        assert_eq!(interleavings(&[3, 3]), 20);
        assert_eq!(interleavings(&[2, 2, 2]), 90);
        assert_eq!(interleavings(&[0, 4]), 1);
        assert_eq!(interleavings(&[]), 1);
    }

    #[test]
    fn exhaustive_explore_visits_every_schedule_once() {
        let mut seen = std::collections::BTreeSet::new();
        let report = explore(
            "count",
            &ExploreConfig::default(),
            &[2, 2],
            |schedule: &[usize]| {
                assert!(seen.insert(schedule.to_vec()), "duplicate schedule");
                Ok(())
            },
        );
        assert!(report.exhaustive);
        assert_eq!(report.explored, 6);
        assert_eq!(report.total_space, 6);
        assert_eq!(seen.len(), 6);
        report.assert_ok();
    }

    /// The classic lost-update race: two threads each do load → add →
    /// store on a shared cell. The explorer must find an interleaving
    /// where one increment is lost, and replaying the reported schedule
    /// must reproduce it.
    #[test]
    fn explorer_finds_lost_update_and_replays_it() {
        let run = |schedule: &[usize]| -> Result<(), String> {
            let mut shared = 0i64;
            let mut reg = [0i64; 2];
            let mut pc = [0usize; 2];
            for &t in schedule {
                match pc[t] {
                    0 => reg[t] = shared,     // load
                    1 => shared = reg[t] + 1, // store
                    _ => unreachable!(),
                }
                pc[t] += 1;
            }
            if shared == 2 {
                Ok(())
            } else {
                Err(format!("lost update: shared = {shared}, want 2"))
            }
        };
        let report = explore("lost-update", &ExploreConfig::default(), &[2, 2], run);
        let failure = report.failure.expect("explorer must find the race");
        // Replay: the reported schedule fails deterministically.
        assert!(run(&failure.schedule).is_err());
        // And the reproducer string round-trips.
        let parsed = parse_schedule(&format_schedule(&failure.schedule)).unwrap();
        assert_eq!(parsed, failure.schedule);
    }

    #[test]
    fn sampling_mode_kicks_in_above_the_bound() {
        let cfg = ExploreConfig {
            max_schedules: 10,
            random_samples: 25,
            seed: 7,
        };
        let report = explore("sampled", &cfg, &[3, 3], |_s| Ok(()));
        assert!(!report.exhaustive);
        assert_eq!(report.total_space, 20);
        assert_eq!(report.explored, 25);
    }

    #[test]
    fn token_scheduler_is_seed_deterministic_and_serializes() {
        for seed in 0..8 {
            let order = Arc::new(Mutex::new(Vec::new()));
            let trace: [Vec<usize>; 2] = std::array::from_fn(|_| {
                let order = Arc::clone(&order);
                let fns: Vec<Box<dyn FnOnce() + Send>> = (0..3usize)
                    .map(|t| {
                        let order = Arc::clone(&order);
                        Box::new(move || {
                            for _ in 0..4 {
                                sched::yield_now();
                                order.lock().unwrap().push(t);
                            }
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect();
                let opts = sched::RunOptions {
                    seed,
                    ..Default::default()
                };
                sched::run(&opts, fns);
                let v = order.lock().unwrap().clone();
                order.lock().unwrap().clear();
                v
            });
            assert_eq!(trace[0], trace[1], "seed {seed} not deterministic");
            assert_eq!(trace[0].len(), 12);
        }
    }

    /// AB–BA lock ordering under the token scheduler: some seed must drive
    /// the run into the deadlock, and the scheduler must report it (panic
    /// with a reproducer) rather than hang.
    #[test]
    fn token_scheduler_detects_ab_ba_deadlock() {
        fn shim_lock<'m>(m: &'m Mutex<()>) -> std::sync::MutexGuard<'m, ()> {
            loop {
                sched::yield_now();
                match m.try_lock() {
                    Ok(g) => {
                        sched::progress();
                        return g;
                    }
                    Err(TryLockError::Poisoned(e)) => return e.into_inner(),
                    Err(TryLockError::WouldBlock) => sched::blocked_yield(),
                }
            }
        }
        let a = Mutex::new(());
        let b = Mutex::new(());
        let deadlocks = AtomicU64::new(0);
        for seed in 0..32 {
            let opts = sched::RunOptions {
                seed,
                stall_limit: 64,
                ..Default::default()
            };
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let fns: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                    Box::new(|| {
                        let _ga = shim_lock(&a);
                        let _gb = shim_lock(&b);
                    }),
                    Box::new(|| {
                        let _gb = shim_lock(&b);
                        let _ga = shim_lock(&a);
                    }),
                ];
                sched::run(&opts, fns);
            }));
            if r.is_err() {
                deadlocks.fetch_add(1, Ordering::Relaxed);
            }
        }
        assert!(
            deadlocks.load(Ordering::Relaxed) > 0,
            "no seed in 0..32 exposed the AB-BA deadlock"
        );
    }
}
