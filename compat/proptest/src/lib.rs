//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*!` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, [`strategy::Just`], [`arbitrary::any`], integer-range and
//! tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`sample::Index`], and a tiny [`string::string_regex`] (single
//! character class + `{m,n}` quantifier).
//!
//! **No shrinking**: a failing property panics, and the runner prints the
//! failing case number plus the RNG seed before propagating the panic.
//! Seeds default to 0 (fixed per-case streams), so failures reproduce
//! deterministically; set `PROPTEST_SEED` to explore other streams or to
//! replay a reported failure. Failures are not minimized.

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for API compatibility with the real crate; this stub
        /// does no shrinking, so the value is never consulted.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }

    /// The deterministic SplitMix64 source behind every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed stream per case index, so failures reproduce. Seed 0
        /// (the same streams as [`TestRng::deterministic_seeded`] with
        /// seed 0).
        pub fn deterministic(case: u64) -> TestRng {
            TestRng::deterministic_seeded(0, case)
        }

        /// A fixed stream per (seed, case index) pair. The `proptest!`
        /// macro feeds the `PROPTEST_SEED` environment variable here, so
        /// a reported failure reruns on the exact same values.
        pub fn deterministic_seeded(seed: u64, case: u64) -> TestRng {
            TestRng {
                state: 0xA076_1D64_78BD_642F ^ seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `lo..=hi`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + (self.next_u64() as usize) % (hi - lo + 1)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of random values (no shrink tree in this stand-in).
    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` macro).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_inclusive(0, self.arms.len() - 1);
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A `&str` literal is a regex strategy (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
                .gen_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical random generator (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy form of [`Arbitrary`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A length-agnostic index: resolve against a concrete `len` later.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// The index this represents within a collection of `len` items.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_inclusive(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Small domains may not be able to fill `target` distinct
            // values; bail out after a bounded number of attempts.
            let mut attempts = 8 * target + 16;
            while out.len() < target && attempts > 0 {
                out.insert(self.element.gen_value(rng));
                attempts -= 1;
            }
            out
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    /// Error from [`string_regex`] on unsupported patterns.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One `[class]{m,n}` / literal atom of the supported pattern language.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates strings matching a small regex subset: a sequence of
    /// literal characters and character classes (`[a-z_*\\⊥]`), each with
    /// an optional `{m}` / `{m,n}` / `*` / `+` / `?` quantifier.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.usize_inclusive(atom.min, atom.max);
                for _ in 0..n {
                    let i = rng.usize_inclusive(0, atom.chars.len() - 1);
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }

    /// Build a generator for the given pattern (the supported subset).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern)?,
                '\\' => vec![chars
                    .next()
                    .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?],
                '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error(format!(
                        "unsupported regex construct {c:?} in {pattern:?}"
                    )))
                }
                lit => vec![lit],
            };
            let (min, max) = parse_quantifier(&mut chars, pattern)?;
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error(format!("unterminated class in {pattern:?}")))?;
            match c {
                ']' => break,
                '\\' => set.push(
                    chars
                        .next()
                        .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?,
                ),
                lo => {
                    // Range `lo-hi` (a literal `-` before `]` stays literal).
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // consume '-'
                        match ahead.peek() {
                            Some(&']') | None => set.push(lo),
                            Some(&hi) => {
                                chars.next();
                                chars.next();
                                if hi < lo {
                                    return Err(Error(format!(
                                        "inverted range {lo}-{hi} in {pattern:?}"
                                    )));
                                }
                                set.extend(lo..=hi);
                            }
                        }
                    } else {
                        set.push(lo);
                    }
                }
            }
        }
        if set.is_empty() {
            return Err(Error(format!("empty class in {pattern:?}")));
        }
        Ok(set)
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<(usize, usize), Error> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        let (min, max) = match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse().map_err(|_| bad(pattern))?,
                                n.trim().parse().map_err(|_| bad(pattern))?,
                            ),
                            None => {
                                let n = body.trim().parse().map_err(|_| bad(pattern))?;
                                (n, n)
                            }
                        };
                        if min > max {
                            return Err(bad(pattern));
                        }
                        return Ok((min, max));
                    }
                    body.push(c);
                }
                Err(Error(format!("unterminated quantifier in {pattern:?}")))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            _ => Ok((1, 1)),
        }
    }

    fn bad(pattern: &str) -> Error {
        Error(format!("malformed quantifier in {pattern:?}"))
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module-path alias the real prelude exposes.
    pub mod prop {
        pub use crate::{collection, sample, strategy, string};
    }
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a plain test running `cases` random deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed: u64 = $crate::__read_seed_env();
                for __case in 0..__config.cases {
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut __rng = $crate::test_runner::TestRng::deterministic_seeded(
                                __seed,
                                __case as u64,
                            );
                            $(let $arg =
                                $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                            $body
                        }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest: property `{}` failed at case {}/{} with seed {}; \
                             rerun with PROPTEST_SEED={} to reproduce",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __seed,
                            __seed,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// The RNG seed property tests run with: `PROPTEST_SEED` from the
/// environment (decimal or `0x`-prefixed hex), defaulting to 0 — the
/// streams every run used before seeding existed.
#[doc(hidden)]
pub fn __read_seed_env() -> u64 {
    let Ok(raw) = std::env::var("PROPTEST_SEED") else {
        return 0;
    };
    let s = raw.trim();
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}"))
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// In this stand-in the `prop_assert*` family simply panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0i64..10, prop_oneof![Just(None), (1i64..5).prop_map(Some)]);
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let (a, b) = strat.gen_value(&mut rng);
            assert!((0..10).contains(&a));
            if let Some(v) = b {
                assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    fn string_regex_supports_classes_ranges_and_escapes() {
        let strat = crate::string::string_regex("[a-c*\\\\⊥]{0,6}").unwrap();
        let mut rng = TestRng::deterministic(2);
        let mut seen_star = false;
        for _ in 0..500 {
            let s = strat.gen_value(&mut rng);
            assert!(s.chars().count() <= 6);
            assert!(
                s.chars().all(|c| "abc*\\⊥".contains(c)),
                "bad char in {s:?}"
            );
            seen_star |= s.contains('*');
        }
        assert!(seen_star, "all class members should be reachable");
    }

    #[test]
    fn collections_respect_size_bounds() {
        let v = crate::collection::vec(0u8..=255, 3..7);
        let s = crate::collection::btree_set(0i64..4, 0..10);
        let mut rng = TestRng::deterministic(3);
        for _ in 0..100 {
            let xs = v.gen_value(&mut rng);
            assert!((3..7).contains(&xs.len()));
            // Domain of 4 values: the set can never exceed 4 elements.
            assert!(s.gen_value(&mut rng).len() <= 4);
        }
    }

    #[test]
    fn sample_index_resolves_in_bounds() {
        let strat = crate::collection::vec(any::<crate::sample::Index>(), 0..5);
        let mut rng = TestRng::deterministic(4);
        for _ in 0..100 {
            for ix in strat.gen_value(&mut rng) {
                assert!(ix.index(7) < 7);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0i64..100, s in "[a-z]{1,3}") {
            prop_assert!(x >= 0);
            prop_assert!((1..=3).contains(&s.chars().count()));
            prop_assert_eq!(x, x);
            prop_assert_ne!(s.len(), 0);
        }

        #[test]
        #[should_panic]
        fn failing_property_reports_seed_and_panics(x in 0i64..10) {
            prop_assert!(x < 0, "forced failure to exercise the reporter");
        }
    }

    #[test]
    fn seed_zero_matches_legacy_streams() {
        for case in [0u64, 1, 7, 63] {
            let mut legacy = TestRng::deterministic(case);
            let mut seeded = TestRng::deterministic_seeded(0, case);
            for _ in 0..16 {
                assert_eq!(legacy.next_u64(), seeded.next_u64());
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = TestRng::deterministic_seeded(1, 0);
        let mut b = TestRng::deterministic_seeded(2, 0);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
