//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use — benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with plain wall-clock mean/min reporting and
//! none of the statistical machinery (no outlier analysis, plots, or saved
//! baselines).

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// No-op: CLI filtering/configuration is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let sample_size = self.sample_size;
        run_bench(&id.into_benchmark_id().id, sample_size, f);
    }

    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: sample_size as u64,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    eprintln!(
        "{label:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Function + parameter benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closure_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input("b", &41, |b, &x| {
            b.iter(|| assert_eq!(x + 1, 42));
        });
        group.finish();
        c.final_summary();
    }
}
